//! kd-tree correctness: brute-force agreement, FBF pruning behaviour, and
//! agreement with the R-tree search it inspired.

use nnq_core::{scan_items_knn, MbrRefiner, NnSearch};
use nnq_geom::{Point, Rect};
use nnq_kdtree::KdTree;
use nnq_rtree::{MemRTree, RecordId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<(Point<2>, RecordId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
                RecordId(i as u64),
            )
        })
        .collect()
}

#[test]
fn empty_and_single_point_trees() {
    let tree = KdTree::<2>::build(Vec::new(), 8);
    assert!(tree.is_empty());
    assert!(tree.knn(&Point::new([0.0, 0.0]), 3).0.is_empty());

    let tree = KdTree::build(vec![(Point::new([1.0, 2.0]), RecordId(7))], 8);
    let (nn, _) = tree.knn(&Point::new([0.0, 0.0]), 3);
    assert_eq!(nn.len(), 1);
    assert_eq!(nn[0].record, RecordId(7));
    assert_eq!(nn[0].dist_sq, 5.0);
}

#[test]
fn knn_matches_brute_force_on_random_data() {
    let pts = random_points(5_000, 3);
    let items: Vec<(Rect<2>, RecordId)> = pts
        .iter()
        .map(|(p, id)| (Rect::from_point(*p), *id))
        .collect();
    let tree = KdTree::build(pts, 16);
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..50 {
        let q = Point::new([
            rng.random_range(-10.0..110.0),
            rng.random_range(-10.0..110.0),
        ]);
        for k in [1usize, 5, 20] {
            let (got, _) = tree.knn(&q, k);
            let want = scan_items_knn(&items, &q, k, &MbrRefiner);
            assert_eq!(
                got.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                want.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn identical_points_are_handled() {
    let pts: Vec<(Point<2>, RecordId)> = (0..100u64)
        .map(|i| (Point::new([5.0, 5.0]), RecordId(i)))
        .collect();
    let tree = KdTree::build(pts, 4);
    let (nn, _) = tree.knn(&Point::new([5.0, 5.0]), 10);
    assert_eq!(nn.len(), 10);
    assert!(nn.iter().all(|n| n.dist_sq == 0.0));
}

#[test]
fn pruning_skips_most_of_the_tree() {
    let pts = random_points(50_000, 9);
    let tree = KdTree::build(pts, 16);
    let total = tree.node_count() as u64;
    let (_, stats) = tree.knn(&Point::new([50.0, 50.0]), 5);
    assert!(
        stats.nodes_visited * 20 < total,
        "visited {} of {total} nodes",
        stats.nodes_visited
    );
    assert!(stats.pruned_upward > 0);
}

#[test]
fn agrees_with_rtree_search() {
    // The paper's R-tree algorithm and its kd-tree ancestor must return
    // identical distance sequences.
    let pts = random_points(8_000, 11);
    let kd = KdTree::build(pts.clone(), 16);
    let rtree = MemRTree::<2>::new();
    for (p, id) in &pts {
        rtree.insert(&Rect::from_point(*p), *id).unwrap();
    }
    let search = NnSearch::new(&rtree);
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..30 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let (a, _) = kd.knn(&q, 8);
        let b = search.query(&q, 8).unwrap();
        assert_eq!(
            a.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
            b.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
        );
    }
}

#[test]
fn three_dimensional_tree() {
    let mut rng = StdRng::seed_from_u64(13);
    let pts: Vec<(Point<3>, RecordId)> = (0..2_000)
        .map(|i| {
            (
                Point::new([
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                ]),
                RecordId(i),
            )
        })
        .collect();
    let items: Vec<(Rect<3>, RecordId)> = pts
        .iter()
        .map(|(p, id)| (Rect::from_point(*p), *id))
        .collect();
    let tree = KdTree::build(pts, 8);
    let q = Point::new([5.0, 5.0, 5.0]);
    let (got, _) = tree.knn(&q, 6);
    let want = scan_items_knn(&items, &q, 6, &MbrRefiner);
    assert_eq!(
        got.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
        want.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn prop_knn_equals_brute_force(
        pts in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..400),
        (qx, qy) in (-10.0..60.0f64, -10.0..60.0f64),
        k in 1usize..10,
        bucket in 1usize..20,
    ) {
        let items: Vec<(Point<2>, RecordId)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new([x, y]), RecordId(i as u64)))
            .collect();
        let rect_items: Vec<(Rect<2>, RecordId)> = items
            .iter()
            .map(|(p, id)| (Rect::from_point(*p), *id))
            .collect();
        let tree = KdTree::build(items, bucket);
        let q = Point::new([qx, qy]);
        let (got, _) = tree.knn(&q, k);
        let want = scan_items_knn(&rect_items, &q, k, &MbrRefiner);
        let gd: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
        let wd: Vec<f64> = want.iter().map(|n| n.dist_sq).collect();
        prop_assert_eq!(gd, wd);
    }
}

#[test]
fn range_query_matches_brute_force() {
    let pts = random_points(3_000, 17);
    let tree = KdTree::build(pts.clone(), 12);
    let mut rng = StdRng::seed_from_u64(18);
    for _ in 0..30 {
        let x = rng.random_range(0.0..80.0);
        let y = rng.random_range(0.0..80.0);
        let w = Rect::new(Point::new([x, y]), Point::new([x + 20.0, y + 15.0]));
        let mut got: Vec<u64> = tree.range(&w).iter().map(|(_, id)| id.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .filter(|(p, _)| w.contains_point(p))
            .map(|(_, id)| id.0)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn range_query_on_empty_tree() {
    let tree = KdTree::<2>::build(Vec::new(), 8);
    let w = Rect::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
    assert!(tree.range(&w).is_empty());
}
