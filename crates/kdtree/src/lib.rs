//! A bucketed kd-tree with the Friedman–Bentley–Finkel (FBF)
//! nearest-neighbor search.
//!
//! RKV'95's branch-and-bound R-tree search is explicitly an adaptation of
//! the FBF algorithm for kd-trees (*An Algorithm for Finding Best Matches
//! in Logarithmic Expected Time*, TOMS 1977). This crate implements the
//! original as a comparison baseline for the benchmark suite:
//!
//! * **Build**: recursive median split on the dimension of widest spread,
//!   stopping at buckets of `bucket_size` points (FBF's optimized
//!   kd-tree);
//! * **Search**: depth-first descent into the half containing the query,
//!   then the *bounds-overlap-ball* test to decide whether the other half
//!   can contain a closer point — the exact analogue of R-tree `MINDIST`
//!   pruning (the paper's strategy 3).
//!
//! Unlike the R-tree, a kd-tree indexes **points only** and lives in
//! memory; that asymmetry is the reason the paper needed a disk-oriented
//! generalization in the first place.
//!
//! # Example
//!
//! ```
//! use nnq_kdtree::KdTree;
//! use nnq_geom::Point;
//! use nnq_rtree::RecordId;
//!
//! let pts: Vec<(Point<2>, RecordId)> = (0..100u64)
//!     .map(|i| (Point::new([i as f64, 0.0]), RecordId(i)))
//!     .collect();
//! let tree = KdTree::build(pts, 8);
//! let (nn, _) = tree.knn(&Point::new([41.7, 0.0]), 2);
//! assert_eq!(nn[0].record, RecordId(42));
//! assert_eq!(nn[1].record, RecordId(41));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nnq_core::{KnnHeap, Neighbor, SearchStats};
use nnq_geom::{mindist_sq, Point, Rect};
use nnq_rtree::RecordId;

enum Node<const D: usize> {
    Internal {
        /// Splitting dimension.
        dim: usize,
        /// Points with `coord <= split` go left.
        split: f64,
        left: usize,
        right: usize,
        /// Tight bounds of the subtree (for mindist pruning).
        bounds: Rect<D>,
    },
    Leaf {
        /// Range into the reordered point array.
        start: usize,
        end: usize,
        bounds: Rect<D>,
    },
}

/// A static, bucketed kd-tree over `(point, record)` pairs.
pub struct KdTree<const D: usize> {
    nodes: Vec<Node<D>>,
    points: Vec<(Point<D>, RecordId)>,
    root: Option<usize>,
}

impl<const D: usize> KdTree<D> {
    /// Builds a tree by recursive median split; leaves hold at most
    /// `bucket_size` points.
    ///
    /// # Panics
    /// Panics if `bucket_size` is zero or any coordinate is non-finite.
    pub fn build(mut items: Vec<(Point<D>, RecordId)>, bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be at least 1");
        assert!(
            items.iter().all(|(p, _)| p.is_finite()),
            "kd-tree points must be finite"
        );
        let n = items.len();
        let mut tree = Self {
            nodes: Vec::with_capacity(2 * n / bucket_size.max(1) + 1),
            points: Vec::new(),
            root: None,
        };
        if n > 0 {
            let root = tree.build_rec(&mut items, 0, bucket_size);
            tree.points = items;
            tree.root = Some(root);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of tree nodes (internal + leaf buckets).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Recursively partitions `items` (a subslice starting at `offset` in
    /// the final point array) and returns the subtree's node index.
    ///
    /// Median splitting reorders `items` in place; the recursion consumes
    /// the left half before the right, so the final array is exactly the
    /// in-order concatenation of the leaves and `(offset, offset + len)`
    /// indexes each leaf's points.
    fn build_rec(
        &mut self,
        items: &mut [(Point<D>, RecordId)],
        offset: usize,
        bucket_size: usize,
    ) -> usize {
        let bounds = bounds_of(items);
        if items.len() <= bucket_size {
            let idx = self.nodes.len();
            self.nodes.push(Node::Leaf {
                start: offset,
                end: offset + items.len(),
                bounds,
            });
            return idx;
        }
        // Widest-spread dimension (FBF's spread heuristic).
        let mut dim = 0;
        let mut widest = f64::NEG_INFINITY;
        for d in 0..D {
            let w = bounds.extent(d);
            if w > widest {
                widest = w;
                dim = d;
            }
        }
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| a.0[dim].total_cmp(&b.0[dim]));
        let split = items[mid].0[dim];
        let (left_items, right_items) = items.split_at_mut(mid);
        let left = self.build_rec(left_items, offset, bucket_size);
        let right = self.build_rec(right_items, offset + mid, bucket_size);
        let idx = self.nodes.len();
        self.nodes.push(Node::Internal {
            dim,
            split,
            left,
            right,
            bounds,
        });
        idx
    }

    /// Finds the `k` points nearest to `q`, returning them sorted by
    /// increasing distance along with traversal counters
    /// (`nodes_visited` counts internal nodes and leaf buckets).
    pub fn knn(&self, q: &Point<D>, k: usize) -> (Vec<Neighbor<D>>, SearchStats) {
        assert!(k > 0, "k must be at least 1");
        let mut heap = KnnHeap::new(k);
        let mut stats = SearchStats::default();
        if let Some(root) = self.root {
            self.search(root, q, &mut heap, &mut stats);
        }
        (heap.into_sorted(), stats)
    }

    fn search(&self, node: usize, q: &Point<D>, heap: &mut KnnHeap<D>, stats: &mut SearchStats) {
        stats.nodes_visited += 1;
        match &self.nodes[node] {
            Node::Leaf { start, end, .. } => {
                stats.leaves_visited += 1;
                for (p, rid) in &self.points[*start..*end] {
                    let d = q.dist_sq(p);
                    stats.dist_computations += 1;
                    heap.offer(*rid, Rect::from_point(*p), d);
                }
            }
            Node::Internal {
                dim,
                split,
                left,
                right,
                ..
            } => {
                // Descend into the query's side first (FBF).
                let (near, far) = if q[*dim] <= *split {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search(near, q, heap, stats);
                // Bounds-overlap-ball: visit the far side only if its
                // bounds can contain a closer point.
                let far_bounds = self.node_bounds(far);
                if mindist_sq(q, far_bounds) < heap.bound_sq() {
                    self.search(far, q, heap, stats);
                } else {
                    stats.pruned_upward += 1;
                }
            }
        }
    }

    fn node_bounds(&self, node: usize) -> &Rect<D> {
        match &self.nodes[node] {
            Node::Leaf { bounds, .. } | Node::Internal { bounds, .. } => bounds,
        }
    }

    /// Returns every `(point, record)` whose point lies inside `window`
    /// (boundaries inclusive), visiting only subtrees whose bounds
    /// intersect it.
    pub fn range(&self, window: &Rect<D>) -> Vec<(Point<D>, RecordId)> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, window, &mut out);
        }
        out
    }

    fn range_rec(&self, node: usize, window: &Rect<D>, out: &mut Vec<(Point<D>, RecordId)>) {
        match &self.nodes[node] {
            Node::Leaf { start, end, bounds } => {
                if !bounds.intersects(window) {
                    return;
                }
                for (p, rid) in &self.points[*start..*end] {
                    if window.contains_point(p) {
                        out.push((*p, *rid));
                    }
                }
            }
            Node::Internal {
                left,
                right,
                bounds,
                ..
            } => {
                if !bounds.intersects(window) {
                    return;
                }
                self.range_rec(*left, window, out);
                self.range_rec(*right, window, out);
            }
        }
    }
}

fn bounds_of<const D: usize>(items: &[(Point<D>, RecordId)]) -> Rect<D> {
    let mut r = Rect::empty();
    for (p, _) in items {
        r.union_in_place(&Rect::from_point(*p));
    }
    r
}
