//! Property tests: every configuration of the branch-and-bound search must
//! return exactly the brute-force k nearest neighbors.

use nnq_core::{
    best_first_knn, scan_items_knn, AblOrdering, IncrementalNn, MbrRefiner, NnOptions, NnSearch,
};
use nnq_geom::{Point, Rect};
use nnq_rtree::{BulkMethod, RTree, RTreeConfig, RecordId, SplitStrategy};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use proptest::prelude::*;
use std::sync::Arc;

fn mem_pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192))
}

fn build_tree(
    items: &[(Rect<2>, RecordId)],
    split: SplitStrategy,
    fanout: usize,
    bulk: Option<BulkMethod>,
) -> RTree<2> {
    let mut cfg = RTreeConfig::with_split(split);
    cfg.max_entries_override = Some(fanout);
    match bulk {
        Some(method) => RTree::bulk_load(mem_pool(), cfg, items.to_vec(), method, 1.0).unwrap(),
        None => {
            let tree = RTree::create(mem_pool(), cfg).unwrap();
            for (r, id) in items {
                tree.insert(r, *id).unwrap();
            }
            tree
        }
    }
}

fn items_from_points(pts: &[(f64, f64)]) -> Vec<(Rect<2>, RecordId)> {
    pts.iter()
        .enumerate()
        .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), RecordId(i as u64)))
        .collect()
}

fn items_from_rects(rects: &[(f64, f64, f64, f64)]) -> Vec<(Rect<2>, RecordId)> {
    rects
        .iter()
        .enumerate()
        .map(|(i, &(x, y, w, h))| {
            (
                Rect::new(Point::new([x, y]), Point::new([x + w, y + h])),
                RecordId(i as u64),
            )
        })
        .collect()
}

/// Compares by distance only: ties at equal distance may legitimately
/// resolve to different records.
fn assert_same_distances(
    a: &[nnq_core::Neighbor<2>],
    b: &[nnq_core::Neighbor<2>],
) -> Result<(), TestCaseError> {
    let da: Vec<f64> = a.iter().map(|n| n.dist_sq).collect();
    let db: Vec<f64> = b.iter().map(|n| n.dist_sq).collect();
    prop_assert_eq!(da, db);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn knn_equals_brute_force_for_points(
        pts in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..300),
        (qx, qy) in (-20.0..120.0f64, -20.0..120.0f64),
        k in 1usize..12,
        split in prop_oneof![
            Just(SplitStrategy::Linear),
            Just(SplitStrategy::Quadratic),
            Just(SplitStrategy::RStar)
        ],
        fanout in 4usize..10,
        ordering in prop_oneof![Just(AblOrdering::MinDist), Just(AblOrdering::MinMaxDist)],
        (s1, s2, s3) in (any::<bool>(), any::<bool>(), any::<bool>()),
    ) {
        let items = items_from_points(&pts);
        let tree = build_tree(&items, split, fanout, None);
        let q = Point::new([qx, qy]);
        let truth = scan_items_knn(&items, &q, k, &MbrRefiner);
        let opts = NnOptions { ordering, prune_downward: s1, prune_object: s2, prune_upward: s3, ..NnOptions::default() };
        let got = NnSearch::with_options(&tree, opts).query(&q, k).unwrap();
        assert_same_distances(&got, &truth)?;
    }

    #[test]
    fn knn_equals_brute_force_for_rectangles(
        rects in proptest::collection::vec(
            (0.0..100.0f64, 0.0..100.0f64, 0.0..10.0f64, 0.0..10.0f64), 1..200),
        (qx, qy) in (0.0..100.0f64, 0.0..100.0f64),
        k in 1usize..8,
    ) {
        // Rectangle data exercises the MINDIST=0 (query inside object MBR)
        // paths that point data cannot reach.
        let items = items_from_rects(&rects);
        let tree = build_tree(&items, SplitStrategy::Quadratic, 6, None);
        let q = Point::new([qx, qy]);
        let truth = scan_items_knn(&items, &q, k, &MbrRefiner);
        let got = NnSearch::new(&tree).query(&q, k).unwrap();
        assert_same_distances(&got, &truth)?;
    }

    #[test]
    fn knn_correct_on_bulk_loaded_trees(
        pts in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..300),
        (qx, qy) in (0.0..100.0f64, 0.0..100.0f64),
        k in 1usize..10,
        method in prop_oneof![Just(BulkMethod::Str), Just(BulkMethod::Hilbert)],
    ) {
        let items = items_from_points(&pts);
        let tree = build_tree(&items, SplitStrategy::Quadratic, 8, Some(method));
        let q = Point::new([qx, qy]);
        let truth = scan_items_knn(&items, &q, k, &MbrRefiner);
        let got = NnSearch::new(&tree).query(&q, k).unwrap();
        assert_same_distances(&got, &truth)?;
    }

    #[test]
    fn all_algorithms_agree(
        pts in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..250),
        (qx, qy) in (0.0..100.0f64, 0.0..100.0f64),
        k in 1usize..10,
    ) {
        let items = items_from_points(&pts);
        let tree = build_tree(&items, SplitStrategy::Quadratic, 6, None);
        let q = Point::new([qx, qy]);
        let dfs = NnSearch::new(&tree).query(&q, k).unwrap();
        let (bf, _) = best_first_knn(&tree, &q, k, &MbrRefiner).unwrap();
        let inc: Vec<_> = IncrementalNn::new(&tree, q, MbrRefiner)
            .take(k)
            .collect::<nnq_core::Result<_>>()
            .unwrap();
        assert_same_distances(&dfs, &bf)?;
        assert_same_distances(&dfs, &inc)?;
    }

    #[test]
    fn incremental_distances_never_decrease(
        pts in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..200),
        (qx, qy) in (0.0..50.0f64, 0.0..50.0f64),
    ) {
        let items = items_from_points(&pts);
        let tree = build_tree(&items, SplitStrategy::Quadratic, 5, None);
        let all: Vec<_> = IncrementalNn::new(&tree, Point::new([qx, qy]), MbrRefiner)
            .collect::<nnq_core::Result<_>>()
            .unwrap();
        prop_assert_eq!(all.len(), items.len());
        for w in all.windows(2) {
            prop_assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }
}
