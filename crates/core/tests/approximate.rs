//! The (1+ε)-approximation guarantee: every reported distance is within
//! (1+ε) of the corresponding exact distance, and larger ε visits no more
//! nodes.

use nnq_core::{scan_items_knn, MbrRefiner, NnOptions, NnSearch};
use nnq_geom::{Point, Rect};
use nnq_rtree::{MemRTree, RecordId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(n: usize, seed: u64) -> (MemRTree<2>, Vec<(Rect<2>, RecordId)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = MemRTree::with_config(nnq_rtree::RTreeConfig::default(), 8);
    let mut items = Vec::new();
    for i in 0..n {
        let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let r = Rect::from_point(p);
        tree.insert(&r, RecordId(i as u64)).unwrap();
        items.push((r, RecordId(i as u64)));
    }
    (tree, items)
}

#[test]
fn epsilon_zero_is_exact() {
    let (tree, items) = build(5_000, 1);
    let search = NnSearch::with_options(&tree, NnOptions::approximate(0.0));
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..30 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let got = search.query(&q, 7).unwrap();
        let want = scan_items_knn(&items, &q, 7, &MbrRefiner);
        assert_eq!(
            got.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
            want.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
        );
    }
}

#[test]
fn guarantee_holds_for_various_epsilons() {
    let (tree, items) = build(10_000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    for eps in [0.1, 0.5, 1.0, 4.0] {
        let search = NnSearch::with_options(&tree, NnOptions::approximate(eps));
        for _ in 0..25 {
            let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            let k = 5;
            let got = search.query(&q, k).unwrap();
            let exact = scan_items_knn(&items, &q, k, &MbrRefiner);
            assert_eq!(got.len(), k);
            // Rank-by-rank guarantee: the i-th reported distance is within
            // (1+eps) of the i-th exact distance.
            for (g, e) in got.iter().zip(&exact) {
                let bound = e.dist() * (1.0 + eps) + 1e-9;
                assert!(
                    g.dist() <= bound,
                    "eps {eps}: reported {} > (1+eps) * exact {}",
                    g.dist(),
                    e.dist()
                );
            }
        }
    }
}

#[test]
fn larger_epsilon_visits_no_more_nodes() {
    let (tree, _) = build(30_000, 5);
    let q = Point::new([50.0, 50.0]);
    let mut prev = u64::MAX;
    for eps in [0.0, 0.25, 1.0, 4.0] {
        let search = NnSearch::with_options(&tree, NnOptions::approximate(eps));
        let (_, stats) = search.query_with_stats(&q, 10).unwrap();
        assert!(
            stats.nodes_visited <= prev,
            "eps {eps}: {} nodes > previous {prev}",
            stats.nodes_visited
        );
        prev = stats.nodes_visited;
    }
}

#[test]
#[should_panic(expected = "epsilon must be finite and nonnegative")]
fn negative_epsilon_is_rejected() {
    NnOptions::approximate(-0.5);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn prop_approximation_guarantee(
        pts in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..300),
        (qx, qy) in (0.0..50.0f64, 0.0..50.0f64),
        k in 1usize..8,
        eps in 0.0..3.0f64,
    ) {
        let items: Vec<(Rect<2>, RecordId)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), RecordId(i as u64)))
            .collect();
        let tree = MemRTree::with_config(nnq_rtree::RTreeConfig::default(), 6);
        for (r, id) in &items {
            tree.insert(r, *id).unwrap();
        }
        let q = Point::new([qx, qy]);
        let got = NnSearch::with_options(&tree, NnOptions::approximate(eps))
            .query(&q, k)
            .unwrap();
        let exact = scan_items_knn(&items, &q, k, &MbrRefiner);
        prop_assert_eq!(got.len(), exact.len());
        for (g, e) in got.iter().zip(&exact) {
            prop_assert!(g.dist() <= e.dist() * (1.0 + eps) + 1e-9);
        }
    }
}
