//! The explain trace must agree exactly with the search statistics and
//! with the untraced query's results.

use nnq_core::{Decision, MbrRefiner, NnSearch, TraceEvent};
use nnq_geom::{Point, Rect};
use nnq_rtree::{MemRTree, RecordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tree(n: usize, seed: u64) -> MemRTree<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = MemRTree::with_config(nnq_rtree::RTreeConfig::default(), 8);
    for i in 0..n {
        let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        tree.insert(&Rect::from_point(p), RecordId(i as u64))
            .unwrap();
    }
    tree
}

#[test]
fn trace_counts_match_stats() {
    let t = tree(3_000, 3);
    let search = NnSearch::new(&t);
    let q = Point::new([37.0, 59.0]);
    let (found, stats, trace) = search.query_traced(&q, 6, &MbrRefiner).unwrap();
    assert_eq!(found.len(), 6);

    let nodes = trace.nodes_entered() as u64;
    assert_eq!(nodes, stats.nodes_visited);

    let mut pruned_down = 0;
    let mut pruned_up = 0;
    let mut pruned_obj = 0;
    let mut dist_comps = 0;
    for e in &trace.events {
        match e {
            TraceEvent::Branch { decision, .. } => match decision {
                Decision::PrunedDownward => pruned_down += 1,
                Decision::PrunedUpward => pruned_up += 1,
                _ => {}
            },
            TraceEvent::Object {
                decision, exact_sq, ..
            } => {
                match decision {
                    Decision::PrunedObject => pruned_obj += 1,
                    Decision::PrunedUpward => pruned_up += 1,
                    _ => {}
                }
                if exact_sq.is_some() {
                    dist_comps += 1;
                }
            }
            TraceEvent::EnterNode { .. } => {}
        }
    }
    assert_eq!(pruned_down, stats.pruned_downward);
    assert_eq!(pruned_up, stats.pruned_upward);
    assert_eq!(pruned_obj, stats.pruned_object);
    assert_eq!(dist_comps, stats.dist_computations);
}

#[test]
fn traced_and_untraced_results_agree() {
    let t = tree(2_000, 5);
    let search = NnSearch::new(&t);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..20 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let plain = search.query(&q, 5).unwrap();
        let (traced, _, _) = search.query_traced(&q, 5, &MbrRefiner).unwrap();
        assert_eq!(
            plain.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
            traced.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
        );
    }
}

#[test]
fn trace_bounds_are_monotone_nonincreasing() {
    // The candidate bound recorded at each node entry can only shrink as
    // the search progresses.
    let t = tree(3_000, 7);
    let search = NnSearch::new(&t);
    let (_, _, trace) = search
        .query_traced(&Point::new([50.0, 50.0]), 4, &MbrRefiner)
        .unwrap();
    let bounds: Vec<f64> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::EnterNode { bound_sq, .. } => Some(*bound_sq),
            _ => None,
        })
        .collect();
    assert!(bounds.len() >= 2);
    for w in bounds.windows(2) {
        assert!(w[0] >= w[1], "bound grew: {} -> {}", w[0], w[1]);
    }
}

#[test]
fn visited_branches_respect_mindist_order_per_node() {
    // Within one internal node, visited branches appear in nondecreasing
    // MINDIST order (the ABL was sorted).
    let t = tree(3_000, 9);
    let search = NnSearch::new(&t);
    let (_, _, trace) = search
        .query_traced(&Point::new([20.0, 80.0]), 3, &MbrRefiner)
        .unwrap();
    // Trace events interleave across stack levels once subtrees return, so
    // the cleanly attributable window is the root's ABL prefix: everything
    // between the first EnterNode and the second one belongs to the root.
    let mut seen_nodes = 0;
    let mut root_prefix: Vec<f64> = Vec::new();
    for e in &trace.events {
        match e {
            TraceEvent::EnterNode { .. } => {
                seen_nodes += 1;
                if seen_nodes == 2 {
                    break;
                }
            }
            TraceEvent::Branch { mindist_sq, .. } if seen_nodes == 1 => {
                root_prefix.push(*mindist_sq);
            }
            _ => {}
        }
    }
    assert!(!root_prefix.is_empty());
    for w in root_prefix.windows(2) {
        assert!(
            w[0] <= w[1],
            "root ABL out of MINDIST order: {root_prefix:?}"
        );
    }
}

#[test]
fn render_is_nonempty_and_mentions_the_root() {
    let t = tree(500, 11);
    let search = NnSearch::new(&t);
    let (_, _, trace) = search
        .query_traced(&Point::new([1.0, 1.0]), 2, &MbrRefiner)
        .unwrap();
    let text = trace.render();
    assert!(text.contains("node page#"));
    assert!(text.lines().count() >= trace.events.len());
}
