//! Backend-agnostic behaviour: the NN algorithms must return identical
//! answers over paged and in-memory trees, and the region-constrained
//! query must match its brute-force definition.

use nnq_core::{
    best_first_knn, linear_scan_knn, scan_items_knn, IncrementalNn, MbrRefiner, NnSearch,
};
use nnq_geom::{Point, Rect};
use nnq_rtree::{BulkMethod, MemRTree, RTree, RTreeConfig, RecordId};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_items(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            (Rect::from_point(p), RecordId(i as u64))
        })
        .collect()
}

fn paged_tree(items: &[(Rect<2>, RecordId)]) -> RTree<2> {
    let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192));
    let tree = RTree::create(pool, RTreeConfig::default()).unwrap();
    for (mbr, rid) in items {
        tree.insert(mbr, *rid).unwrap();
    }
    tree
}

fn mem_tree(items: &[(Rect<2>, RecordId)]) -> MemRTree<2> {
    let tree = MemRTree::new();
    for (mbr, rid) in items {
        tree.insert(mbr, *rid).unwrap();
    }
    tree
}

#[test]
fn mem_tree_supports_full_lifecycle() {
    let items = random_items(3_000, 1);
    let tree = mem_tree(&items);
    assert_eq!(tree.len(), 3_000);
    tree.validate_strict().unwrap();
    // Delete a third, still valid, queries still exact.
    for (mbr, rid) in &items[..1_000] {
        tree.delete(mbr, *rid).unwrap();
    }
    tree.validate().unwrap();
    assert_eq!(tree.len(), 2_000);
    let q = Point::new([50.0, 50.0]);
    let got = NnSearch::new(&tree).query(&q, 5).unwrap();
    let want = scan_items_knn(&items[1_000..], &q, 5, &MbrRefiner);
    assert_eq!(
        got.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
        want.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
    );
}

#[test]
fn all_algorithms_agree_across_backends() {
    let items = random_items(5_000, 2);
    let paged = paged_tree(&items);
    let mem = mem_tree(&items);
    let bulk_mem =
        MemRTree::bulk(items.clone(), BulkMethod::Str, RTreeConfig::default(), 32).unwrap();
    bulk_mem.validate().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..25 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let truth: Vec<f64> = scan_items_knn(&items, &q, 7, &MbrRefiner)
            .iter()
            .map(|n| n.dist_sq)
            .collect();
        for dists in [
            NnSearch::new(&paged)
                .query(&q, 7)
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
            NnSearch::new(&mem)
                .query(&q, 7)
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
            NnSearch::new(&bulk_mem)
                .query(&q, 7)
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
            best_first_knn(&mem, &q, 7, &MbrRefiner)
                .unwrap()
                .0
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
            IncrementalNn::new(&mem, q, MbrRefiner)
                .take(7)
                .collect::<nnq_core::Result<Vec<_>>>()
                .unwrap()
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
            linear_scan_knn(&mem, &q, 7, &MbrRefiner)
                .unwrap()
                .0
                .iter()
                .map(|n| n.dist_sq)
                .collect::<Vec<_>>(),
        ] {
            assert_eq!(dists, truth);
        }
    }
}

#[test]
fn region_constrained_knn_matches_brute_force() {
    let items = random_items(4_000, 5);
    let tree = paged_tree(&items);
    let search = NnSearch::new(&tree);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..30 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        let x = rng.random_range(0.0..70.0);
        let y = rng.random_range(0.0..70.0);
        let region = Rect::new(Point::new([x, y]), Point::new([x + 30.0, y + 30.0]));
        let (got, _) = search.query_in_region(&q, 5, &region, &MbrRefiner).unwrap();
        // Brute force: filter to the region, then take the 5 nearest.
        let eligible: Vec<(Rect<2>, RecordId)> = items
            .iter()
            .filter(|(mbr, _)| mbr.intersects(&region))
            .copied()
            .collect();
        let want = scan_items_knn(&eligible, &q, 5, &MbrRefiner);
        assert_eq!(
            got.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
            want.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
        );
        // Every result's MBR intersects the region.
        for n in &got {
            assert!(n.mbr.intersects(&region));
        }
    }
}

#[test]
fn region_constrained_knn_with_empty_region() {
    let items = random_items(500, 9);
    let tree = paged_tree(&items);
    let search = NnSearch::new(&tree);
    // A region outside the data: no results.
    let region = Rect::new(Point::new([500.0, 500.0]), Point::new([600.0, 600.0]));
    let (got, _) = search
        .query_in_region(&Point::new([50.0, 50.0]), 5, &region, &MbrRefiner)
        .unwrap();
    assert!(got.is_empty());
}

#[test]
fn radius_queries_agree_across_backends() {
    let items = random_items(3_000, 11);
    let paged = paged_tree(&items);
    let mem = mem_tree(&items);
    let q = Point::new([33.0, 66.0]);
    for radius in [0.5, 3.0, 10.0] {
        let (a, _) = nnq_core::within_radius(&paged, &q, radius, &MbrRefiner).unwrap();
        let (b, _) = nnq_core::within_radius(&mem, &q, radius, &MbrRefiner).unwrap();
        assert_eq!(
            a.iter().map(|n| (n.record, n.dist_sq)).collect::<Vec<_>>(),
            b.iter().map(|n| (n.record, n.dist_sq)).collect::<Vec<_>>()
        );
    }
}
