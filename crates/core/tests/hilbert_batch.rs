//! The Hilbert batch schedule must be invisible in the output: results come
//! back in submission order, bit-identical to the sequential as-given run,
//! no matter how the batch is shaped or how many workers claim from it.

use nnq_core::{par_knn_batch, par_knn_batch_ordered, JoinOrder, MbrRefiner, Neighbor, NnOptions};
use nnq_geom::{Point, Rect};
use nnq_rtree::{MemRTree, RecordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_tree(n: usize, seed: u64) -> MemRTree<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = MemRTree::new();
    for i in 0..n {
        let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        tree.insert(&Rect::from_point(p), RecordId(i as u64))
            .unwrap();
    }
    tree
}

fn random_queries(nq: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..nq)
        .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
        .collect()
}

/// A batch built to defeat naive schedules: dense clusters interleaved with
/// far-flung singletons, long runs of the exact same point (Hilbert keys
/// tie), and a reversed tail so submission order anti-correlates with
/// spatial order.
fn clustered_queries(seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::new();
    for c in 0..8 {
        let cx = (c % 4) as f64 * 25.0 + 5.0;
        let cy = (c / 4) as f64 * 50.0 + 5.0;
        for _ in 0..24 {
            queries.push(Point::new([
                cx + rng.random_range(-1.0..1.0),
                cy + rng.random_range(-1.0..1.0),
            ]));
        }
        // A far-flung singleton between clusters.
        queries.push(Point::new([
            rng.random_range(0.0..100.0),
            rng.random_range(0.0..100.0),
        ]));
    }
    // A run of identical points: every Hilbert key ties, so the schedule's
    // tie-breaking must still map each result to its own slot.
    for _ in 0..16 {
        queries.push(Point::new([50.0, 50.0]));
    }
    // Reverse the whole batch so submission order fights spatial order.
    queries.reverse();
    queries
}

fn dists(found: &[Vec<Neighbor<2>>]) -> Vec<Vec<f64>> {
    found
        .iter()
        .map(|r| r.iter().map(|n| n.dist_sq).collect())
        .collect()
}

fn records(found: &[Vec<Neighbor<2>>]) -> Vec<Vec<RecordId>> {
    found
        .iter()
        .map(|r| r.iter().map(|n| n.record).collect())
        .collect()
}

fn assert_matches_sequential(tree: &MemRTree<2>, queries: &[Point<2>], k: usize) {
    let seq = par_knn_batch(tree, queries, k, NnOptions::default(), &MbrRefiner, 1).unwrap();
    for threads in [1, 2, 8] {
        let hil = par_knn_batch_ordered(
            tree,
            queries,
            k,
            NnOptions::default(),
            &MbrRefiner,
            threads,
            JoinOrder::Hilbert,
        )
        .unwrap();
        assert_eq!(hil.len(), queries.len(), "threads={threads}");
        assert_eq!(dists(&hil), dists(&seq), "threads={threads}");
        assert_eq!(records(&hil), records(&seq), "threads={threads}");
    }
}

#[test]
fn hilbert_schedule_matches_sequential_on_random_batches() {
    let tree = build_tree(4_000, 21);
    for (nq, seed) in [(1usize, 22), (37, 23), (300, 24)] {
        assert_matches_sequential(&tree, &random_queries(nq, seed), 5);
    }
}

#[test]
fn hilbert_schedule_matches_sequential_on_clustered_batches() {
    let tree = build_tree(4_000, 31);
    assert_matches_sequential(&tree, &clustered_queries(32), 7);
}

#[test]
fn results_come_back_in_submission_order() {
    // Each result slot must hold the answer for *its own* query: check
    // every slot against an independently computed single-query batch.
    let tree = build_tree(2_000, 41);
    let queries = clustered_queries(42);
    let batch = par_knn_batch_ordered(
        &tree,
        &queries,
        3,
        NnOptions::default(),
        &MbrRefiner,
        8,
        JoinOrder::Hilbert,
    )
    .unwrap();
    for (i, q) in queries.iter().enumerate() {
        let single = par_knn_batch(
            &tree,
            std::slice::from_ref(q),
            3,
            NnOptions::default(),
            &MbrRefiner,
            1,
        )
        .unwrap();
        assert_eq!(dists(&batch[i..=i]), dists(&single), "slot {i}");
    }
}

#[test]
fn as_given_order_is_the_default_behavior() {
    let tree = build_tree(1_000, 51);
    let queries = random_queries(64, 52);
    let default = par_knn_batch(&tree, &queries, 4, NnOptions::default(), &MbrRefiner, 4).unwrap();
    let as_given = par_knn_batch_ordered(
        &tree,
        &queries,
        4,
        NnOptions::default(),
        &MbrRefiner,
        4,
        JoinOrder::AsGiven,
    )
    .unwrap();
    assert_eq!(dists(&default), dists(&as_given));
}
