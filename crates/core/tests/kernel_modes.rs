//! Kernel-mode equivalence: every traversal must produce **bit-identical**
//! results and work counters under `KernelMode::Scalar` and
//! `KernelMode::Batch`. Any divergence here means the batch kernels
//! changed traversal order or pruning decisions — a contract violation
//! even if the returned neighbors happen to coincide.

use nnq_core::{
    best_first_knn_with, farthest_knn_with, intersection_join_with, within_radius_with,
    AblOrdering, IncrementalNn, KernelMode, MbrRefiner, Neighbor, NnOptions, NnSearch,
};
use nnq_geom::{Point, Rect};
use nnq_rtree::{MemRTree, RTree, RTreeConfig, RecordId};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A mix of points, degenerate-axis rectangles, and extended rectangles —
/// the shapes where floating-point ties are most likely.
fn random_items(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.random_range(0.0..100.0);
            let y = rng.random_range(0.0..100.0);
            let r = match i % 3 {
                0 => Rect::from_point(Point::new([x, y])),
                1 => Rect::new(
                    Point::new([x, y]),
                    Point::new([x + rng.random_range(0.0..3.0), y]),
                ),
                _ => Rect::new(
                    Point::new([x, y]),
                    Point::new([
                        x + rng.random_range(0.0..3.0),
                        y + rng.random_range(0.0..3.0),
                    ]),
                ),
            };
            (r, RecordId(i as u64))
        })
        .collect()
}

fn mem_tree(items: &[(Rect<2>, RecordId)]) -> MemRTree<2> {
    let tree = MemRTree::new();
    for (mbr, rid) in items {
        tree.insert(mbr, *rid).unwrap();
    }
    tree
}

fn paged_tree(items: &[(Rect<2>, RecordId)]) -> RTree<2> {
    let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192));
    let tree = RTree::create(pool, RTreeConfig::default()).unwrap();
    for (mbr, rid) in items {
        tree.insert(mbr, *rid).unwrap();
    }
    tree
}

/// Exact comparison: same records, same MBRs, same distance **bits**.
fn assert_same_neighbors(a: &[Neighbor<2>], b: &[Neighbor<2>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: result count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.record, y.record, "{what}: record order");
        assert_eq!(x.mbr, y.mbr, "{what}: mbr");
        assert_eq!(
            x.dist_sq.to_bits(),
            y.dist_sq.to_bits(),
            "{what}: distance bits for {:?}",
            x.record
        );
    }
}

#[test]
fn branch_and_bound_identical_across_kernels_all_option_variants() {
    let items = random_items(4_000, 11);
    let tree = mem_tree(&items);
    let variants: Vec<(&str, NnOptions)> = vec![
        ("default", NnOptions::default()),
        (
            "minmax-order",
            NnOptions::with_ordering(AblOrdering::MinMaxDist),
        ),
        ("no-pruning", NnOptions::no_pruning()),
        (
            "s1-off",
            NnOptions {
                prune_downward: false,
                ..NnOptions::default()
            },
        ),
        (
            "s2-off",
            NnOptions {
                prune_object: false,
                ..NnOptions::default()
            },
        ),
        (
            "s3-off",
            NnOptions {
                prune_upward: false,
                ..NnOptions::default()
            },
        ),
        ("approx", NnOptions::approximate(0.5)),
    ];
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..15 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        for (name, opts) in &variants {
            for k in [1usize, 7, 25] {
                let scalar = NnSearch::with_options(
                    &tree,
                    NnOptions {
                        kernel: KernelMode::Scalar,
                        ..*opts
                    },
                );
                let batch = NnSearch::with_options(
                    &tree,
                    NnOptions {
                        kernel: KernelMode::Batch,
                        ..*opts
                    },
                );
                let (ns, ss) = scalar.query_with_stats(&q, k).unwrap();
                let (nb, sb) = batch.query_with_stats(&q, k).unwrap();
                assert_same_neighbors(&ns, &nb, name);
                assert_eq!(ss, sb, "{name} k={k}: SearchStats diverged");
            }
        }
    }
}

#[test]
fn best_first_identical_across_kernels() {
    let items = random_items(3_000, 21);
    let tree = paged_tree(&items);
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..20 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        for k in [1usize, 9] {
            let (ns, ss) =
                best_first_knn_with(&tree, &q, k, &MbrRefiner, KernelMode::Scalar).unwrap();
            let (nb, sb) =
                best_first_knn_with(&tree, &q, k, &MbrRefiner, KernelMode::Batch).unwrap();
            assert_same_neighbors(&ns, &nb, "best-first");
            assert_eq!(ss, sb, "best-first stats");
        }
    }
}

#[test]
fn radius_identical_across_kernels() {
    let items = random_items(3_000, 31);
    let tree = mem_tree(&items);
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..20 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        for radius in [0.0, 1.5, 8.0] {
            let (ns, ss) =
                within_radius_with(&tree, &q, radius, &MbrRefiner, KernelMode::Scalar).unwrap();
            let (nb, sb) =
                within_radius_with(&tree, &q, radius, &MbrRefiner, KernelMode::Batch).unwrap();
            assert_same_neighbors(&ns, &nb, "radius");
            assert_eq!(ss, sb, "radius stats");
        }
    }
}

#[test]
fn farthest_identical_across_kernels() {
    let items = random_items(3_000, 41);
    let tree = mem_tree(&items);
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..20 {
        let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        for k in [1usize, 11] {
            let (ns, ss) =
                farthest_knn_with(&tree, &q, k, &MbrRefiner, KernelMode::Scalar).unwrap();
            let (nb, sb) = farthest_knn_with(&tree, &q, k, &MbrRefiner, KernelMode::Batch).unwrap();
            assert_same_neighbors(&ns, &nb, "farthest");
            assert_eq!(ss, sb, "farthest stats");
        }
    }
}

#[test]
fn incremental_identical_across_kernels() {
    let items = random_items(2_000, 51);
    let tree = mem_tree(&items);
    let q = Point::new([37.0, 59.0]);
    let mut scalar = IncrementalNn::with_kernel(&tree, q, MbrRefiner, KernelMode::Scalar);
    let mut batch = IncrementalNn::with_kernel(&tree, q, MbrRefiner, KernelMode::Batch);
    let ns: Vec<Neighbor<2>> = scalar
        .by_ref()
        .take(500)
        .collect::<nnq_core::Result<_>>()
        .unwrap();
    let nb: Vec<Neighbor<2>> = batch
        .by_ref()
        .take(500)
        .collect::<nnq_core::Result<_>>()
        .unwrap();
    assert_same_neighbors(&ns, &nb, "incremental");
    assert_eq!(scalar.stats(), batch.stats(), "incremental stats");
}

#[test]
fn intersection_join_identical_across_kernels() {
    let a = mem_tree(&random_items(1_500, 61));
    let b = mem_tree(&random_items(1_200, 62));
    let (ps, ss) = intersection_join_with(&a, &b, KernelMode::Scalar).unwrap();
    let (pb, sb) = intersection_join_with(&a, &b, KernelMode::Batch).unwrap();
    // Pair-for-pair, in the same order — not just as sets.
    assert_eq!(ps, pb, "join pairs diverged");
    assert_eq!(ss, sb, "join stats diverged");
    assert!(ss.pairs > 0, "test should produce some pairs");
}
