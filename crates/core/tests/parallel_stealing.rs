//! Load-imbalance behavior of the work-stealing batch scheduler: a batch
//! in which one query is ~100× more expensive than the rest must not
//! serialize behind that query's worker, and must return bit-identical
//! results to the sequential run.

use nnq_core::{par_knn_batch, par_knn_batch_stats, FnRefiner, NnOptions};
use nnq_geom::{Point, Rect};
use nnq_rtree::{MemRTree, RecordId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// The sentinel query point whose refinement is made artificially
/// expensive (outside the data's [0, 100]² world, so it is unambiguous).
const EXPENSIVE: [f64; 2] = [-1000.0, -1000.0];

fn build(n: usize) -> (MemRTree<2>, Vec<Point<2>>) {
    let mut rng = StdRng::seed_from_u64(77);
    let tree = MemRTree::new();
    for i in 0..n {
        let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
        tree.insert(&Rect::from_point(p), RecordId(i as u64))
            .unwrap();
    }
    let mut queries: Vec<Point<2>> = (0..256)
        .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
        .collect();
    // One pathological query leading the batch: the worst position for a
    // static chunker, which would hand its whole chunk to the same worker.
    queries.insert(0, Point::new(EXPENSIVE));
    (tree, queries)
}

/// A refiner that burns ~100× the normal per-object work for the sentinel
/// query point, simulating a query that is two orders of magnitude more
/// expensive than its batch-mates.
fn imbalanced_refiner() -> FnRefiner<impl Fn(RecordId, &Rect<2>, &Point<2>) -> f64> {
    FnRefiner::new(|_rid: RecordId, mbr: &Rect<2>, q: &Point<2>| {
        let base = nnq_geom::mindist_sq(q, mbr);
        if q.coords() == &EXPENSIVE {
            let mut acc = base;
            for i in 0..20_000u64 {
                acc += black_box(i as f64).sqrt().sin();
            }
            // The perturbation is discarded: only the cost differs.
            black_box(acc);
        }
        base
    })
}

#[test]
fn imbalanced_batch_results_are_bit_identical_to_sequential() {
    let (tree, queries) = build(4_000);
    let refiner = imbalanced_refiner();
    let seq = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &refiner, 1).unwrap();
    for threads in [2, 4, 8] {
        let par =
            par_knn_batch(&tree, &queries, 5, NnOptions::default(), &refiner, threads).unwrap();
        assert_eq!(par.len(), seq.len());
        for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
            assert_eq!(
                a.iter().map(|n| (n.record, n.dist_sq)).collect::<Vec<_>>(),
                b.iter().map(|n| (n.record, n.dist_sq)).collect::<Vec<_>>(),
                "query {i} differs at threads={threads}"
            );
        }
    }
}

#[test]
fn stealing_spreads_an_imbalanced_batch() {
    let (tree, queries) = build(4_000);
    let refiner = imbalanced_refiner();
    let threads = 4;
    let (_, stats) =
        par_knn_batch_stats(&tree, &queries, 5, NnOptions::default(), &refiner, threads).unwrap();
    assert_eq!(
        stats.per_worker_queries.iter().sum::<usize>(),
        queries.len()
    );
    // Blocks are small, so even the worker stuck on the expensive query
    // claimed at most one block blind; a static chunker would have pinned
    // len/threads ≈ 64 queries behind it.
    assert!(stats.block <= 32, "block {} too coarse", stats.block);
    // With ≥ 2 real cores the other workers drain the batch while one is
    // stuck, so no worker can end up owning everything. (On a single
    // hardware thread the OS may legitimately let one worker finish the
    // queue before the others are scheduled, so only assert there's no
    // starvation-by-design when parallelism exists.)
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        let max = *stats.per_worker_queries.iter().max().unwrap();
        assert!(
            max < queries.len(),
            "one worker claimed the whole imbalanced batch: {:?}",
            stats.per_worker_queries
        );
    }
}

#[test]
fn imbalanced_batch_finishes_near_optimal_with_stealing() {
    // Wall-clock shape: with stealing the batch takes about
    // max(expensive query, total/threads), not expensive + chunk. Timing
    // assertions need real parallelism to be meaningful, so the ratio
    // check is gated on core count; the scheduling invariants above are
    // asserted unconditionally.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping timing assertion: single hardware thread");
        return;
    }
    let (tree, queries) = build(4_000);
    let refiner = imbalanced_refiner();

    let t0 = Instant::now();
    let seq = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &refiner, 1).unwrap();
    let seq_time = t0.elapsed();

    let threads = cores.min(4);
    let t1 = Instant::now();
    let par = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &refiner, threads).unwrap();
    let par_time = t1.elapsed();

    assert_eq!(seq.len(), par.len());
    // Generous bound (2 workers minimum → ideal ≈ 0.5–0.6 of sequential;
    // allow scheduling noise) — a static chunker that serializes the
    // expensive query behind a full chunk would sit near 1.0.
    assert!(
        par_time.as_secs_f64() <= 0.9 * seq_time.as_secs_f64(),
        "no speedup from stealing: seq {seq_time:?}, par {par_time:?} on {threads} threads"
    );
}
