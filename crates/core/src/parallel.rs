//! Parallel batch queries.
//!
//! The paper's conclusion lists parallel nearest-neighbor search as future
//! work; this module provides the embarrassingly-parallel form: a batch of
//! independent queries fanned out over scoped worker threads. Both tree
//! backends are internally synchronized for reads (`&self` queries), so
//! workers share one tree.
//!
//! Scheduling is work-stealing over a shared atomic cursor rather than
//! static chunking: every worker claims a small block of queries at a
//! time, so one expensive query (huge `k`, far-off point, dense region)
//! stalls only the worker that claimed it while the rest of the batch
//! drains through the other workers. The batch finishes in roughly
//! `max(most expensive single query, total work / threads)` instead of
//! `total work / threads + slowest static chunk`.
//!
//! Determinism: each query is computed independently from the shared tree
//! snapshot, so results are bit-identical to `threads = 1` regardless of
//! which worker claims which block.
//!
//! Scheduling order is orthogonal to result order: [`par_knn_batch_ordered`]
//! can walk the batch along a Hilbert curve (mirroring
//! [`JoinOrder::Hilbert`](crate::join::JoinOrder)) so consecutive claimed
//! queries touch overlapping subtrees — warmer node cache, tighter prefetch
//! reuse — while results still come back in submission order.

use crate::branch_bound::{NnSearch, QueryCursor};
use crate::join::{hilbert_schedule, JoinOrder};
use crate::options::{Neighbor, NnOptions, SearchStats};
use crate::radius::within_radius_with;
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::Point;
use nnq_rtree::TreeAccess;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One request in a mixed query batch — the serving layer's unit of work.
///
/// kNN and radius queries ride the same micro-batch: both are point
/// queries against the same tree snapshot, so they share the Hilbert
/// claim schedule and the per-worker [`QueryCursor`] scratch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchQuery<const D: usize> {
    /// k-nearest-neighbor query at `q`.
    Knn {
        /// The query point.
        q: Point<D>,
        /// Neighbors requested.
        k: usize,
    },
    /// Distance-range query at `q` (linear radius, not squared).
    Radius {
        /// The query point.
        q: Point<D>,
        /// Inclusive distance cutoff; must be nonnegative.
        radius: f64,
    },
}

impl<const D: usize> BatchQuery<D> {
    /// The query point (the coordinate the Hilbert schedule orders by).
    pub fn point(&self) -> &Point<D> {
        match self {
            BatchQuery::Knn { q, .. } | BatchQuery::Radius { q, .. } => q,
        }
    }
}

/// How a [`par_knn_batch_stats`] run distributed its queries.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Workers spawned (1 for the sequential fast path).
    pub threads: usize,
    /// Queries claimed per cursor increment.
    pub block: usize,
    /// Queries each worker ended up executing. Sums to the batch length;
    /// under load imbalance the worker stuck on an expensive query claims
    /// fewer, which is the observable signature of stealing.
    pub per_worker_queries: Vec<usize>,
}

/// Block size for the shared cursor: small enough that an expensive query
/// can be compensated by the other workers (at most one block is claimed
/// blind), large enough that the atomic increment amortizes.
pub(crate) fn block_size(len: usize, threads: usize) -> usize {
    (len / (threads * 8)).clamp(1, 32)
}

/// Runs a kNN query for every point in `queries`, fanning the batch out
/// over `threads` worker threads that claim blocks from a shared cursor.
/// Results are returned in query order and are bit-identical to
/// `threads = 1`.
///
/// `threads = 1` degenerates to a sequential loop (no threads spawned).
///
/// ```
/// use nnq_core::{par_knn_batch, NnOptions, MbrRefiner};
/// use nnq_rtree::{MemRTree, RecordId};
/// use nnq_geom::{Point, Rect};
///
/// let mut tree = MemRTree::<2>::new();
/// for i in 0..1000u64 {
///     let p = Point::new([(i % 50) as f64, (i / 50) as f64]);
///     tree.insert(&Rect::from_point(p), RecordId(i)).unwrap();
/// }
/// let queries: Vec<_> = (0..64).map(|i| Point::new([i as f64, i as f64])).collect();
/// let results = par_knn_batch(&tree, &queries, 3, NnOptions::default(), &MbrRefiner, 4).unwrap();
/// assert_eq!(results.len(), 64);
/// assert!(results.iter().all(|r| r.len() == 3));
/// ```
pub fn par_knn_batch<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<Vec<Vec<Neighbor<D>>>>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    par_knn_batch_stats(tree, queries, k, opts, refiner, threads).map(|(results, _)| results)
}

/// [`par_knn_batch`] with an explicit claim order. `JoinOrder::Hilbert`
/// walks the batch along a Hilbert curve over the query points (reusing the
/// [`knn_join`](crate::join::knn_join) schedule), so queries claimed
/// back-to-back land in overlapping subtrees and share cached / prefetched
/// nodes. Results are still returned in submission order and are
/// bit-identical to the sequential as-given run — the schedule only changes
/// *when* each query executes, never *what* it computes.
pub fn par_knn_batch_ordered<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    order: JoinOrder,
) -> Result<Vec<Vec<Neighbor<D>>>>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    run_batch(tree, queries, k, opts, refiner, threads, order, None).map(|(results, _)| results)
}

/// [`par_knn_batch`] plus the scheduling telemetry: how many queries each
/// worker claimed off the shared cursor.
pub fn par_knn_batch_stats<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<(Vec<Vec<Neighbor<D>>>, BatchStats)>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    run_batch(
        tree,
        queries,
        k,
        opts,
        refiner,
        threads,
        JoinOrder::AsGiven,
        None,
    )
}

/// [`par_knn_batch_stats`] with an explicit claim-block override for the
/// shared cursor (`None` uses the [`block_size`] heuristic). This is the
/// self-tuning controller's batch knob: any block size yields bit-identical
/// results because every query is computed independently and results are
/// reassembled in submission order — only claim granularity (and so steal
/// behavior under imbalance) changes.
#[allow(clippy::too_many_arguments)]
pub fn par_knn_batch_with_block<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    order: JoinOrder,
    block_override: Option<usize>,
) -> Result<(Vec<Vec<Neighbor<D>>>, BatchStats)>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    run_batch(
        tree,
        queries,
        k,
        opts,
        refiner,
        threads,
        order,
        block_override,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_batch<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    order: JoinOrder,
    block_override: Option<usize>,
) -> Result<(Vec<Vec<Neighbor<D>>>, BatchStats)>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if queries.is_empty() {
        return Ok((
            Vec::new(),
            BatchStats {
                threads: 1,
                block: 0,
                per_worker_queries: vec![0],
            },
        ));
    }
    // The claim schedule: a permutation of query indices. Workers walk it
    // front to back, but every result lands at its submission-order slot, so
    // the schedule is invisible in the output.
    let schedule: Vec<usize> = match order {
        JoinOrder::AsGiven => (0..queries.len()).collect(),
        JoinOrder::Hilbert => hilbert_schedule(queries),
    };

    if threads == 1 || queries.len() == 1 {
        let search = NnSearch::with_options(tree, opts);
        let mut cursor = QueryCursor::new();
        let mut results: Vec<Vec<Neighbor<D>>> = vec![Vec::new(); queries.len()];
        for &idx in &schedule {
            let (found, _) = search.query_refined_with(&mut cursor, &queries[idx], k, refiner)?;
            results[idx] = found;
        }
        let stats = BatchStats {
            threads: 1,
            block: queries.len(),
            per_worker_queries: vec![queries.len()],
        };
        return Ok((results, stats));
    }

    let len = queries.len();
    let block = block_override
        .map(|b| b.max(1))
        .unwrap_or_else(|| block_size(len, threads));
    let next = AtomicUsize::new(0);

    // Each worker returns its (index, result) pairs; the batch result is
    // assembled in query order afterwards, so the scheduler's claim order
    // never shows through.
    type WorkerOut<const D: usize> = Result<Vec<(usize, Vec<Neighbor<D>>)>>;
    let worker_outs: Vec<WorkerOut<D>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let schedule = &schedule;
                scope.spawn(move || -> WorkerOut<D> {
                    let search = NnSearch::with_options(tree, opts);
                    // One cursor per worker: all per-query scratch (ABL
                    // buffers, selection scratch, candidate heap) is
                    // reused across every query the worker claims.
                    let mut cursor = QueryCursor::new();
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + block).min(len);
                        for &i in &schedule[start..end] {
                            let (found, _) =
                                search.query_refined_with(&mut cursor, &queries[i], k, refiner)?;
                            out.push((i, found));
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut results: Vec<Vec<Neighbor<D>>> = vec![Vec::new(); len];
    let mut per_worker_queries = Vec::with_capacity(threads);
    for worker_out in worker_outs {
        let pairs = worker_out?;
        per_worker_queries.push(pairs.len());
        for (i, found) in pairs {
            results[i] = found;
        }
    }
    let stats = BatchStats {
        threads,
        block,
        per_worker_queries,
    };
    Ok((results, stats))
}

/// Runs a mixed batch of kNN and radius queries (the `nnq serve` drain
/// path), fanning the batch out over `threads` workers claiming blocks
/// from a shared cursor, optionally in Hilbert claim order. Returns, in
/// submission order, each request's results **and** its per-query
/// [`SearchStats`] — the serving layer reports `nodes_visited` back to
/// the client as the query's logical page reads, the paper's cost unit.
///
/// Every request is computed independently from the shared tree (or
/// snapshot), so results and per-query stats are bit-identical to a
/// sequential loop regardless of thread count, claim-block size, or
/// schedule — the same contract as [`par_knn_batch`].
#[allow(clippy::type_complexity)]
pub fn par_mixed_batch<const D: usize, T, R>(
    tree: &T,
    requests: &[BatchQuery<D>],
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    order: JoinOrder,
    block_override: Option<usize>,
) -> Result<(Vec<(Vec<Neighbor<D>>, SearchStats)>, BatchStats)>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if requests.is_empty() {
        return Ok((
            Vec::new(),
            BatchStats {
                threads: 1,
                block: 0,
                per_worker_queries: vec![0],
            },
        ));
    }
    let schedule: Vec<usize> = match order {
        JoinOrder::AsGiven => (0..requests.len()).collect(),
        JoinOrder::Hilbert => {
            let points: Vec<Point<D>> = requests.iter().map(|r| *r.point()).collect();
            hilbert_schedule(&points)
        }
    };

    // One request, one worker-local execution. Radius queries take the
    // standalone traversal (no cursor state), kNN reuses the worker's
    // cursor scratch; both are deterministic per request.
    let execute = |cursor: &mut QueryCursor<D>,
                   search: &NnSearch<'_, D, T>,
                   req: &BatchQuery<D>|
     -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        match *req {
            BatchQuery::Knn { q, k } => search.query_refined_with(cursor, &q, k, refiner),
            BatchQuery::Radius { q, radius } => {
                within_radius_with(tree, &q, radius, refiner, opts.kernel)
            }
        }
    };

    if threads == 1 || requests.len() == 1 {
        let search = NnSearch::with_options(tree, opts);
        let mut cursor = QueryCursor::new();
        let mut results: Vec<(Vec<Neighbor<D>>, SearchStats)> =
            vec![(Vec::new(), SearchStats::default()); requests.len()];
        for &idx in &schedule {
            results[idx] = execute(&mut cursor, &search, &requests[idx])?;
        }
        let stats = BatchStats {
            threads: 1,
            block: requests.len(),
            per_worker_queries: vec![requests.len()],
        };
        return Ok((results, stats));
    }

    let len = requests.len();
    let block = block_override
        .map(|b| b.max(1))
        .unwrap_or_else(|| block_size(len, threads));
    let next = AtomicUsize::new(0);

    type MixedOut<const D: usize> = Result<Vec<(usize, (Vec<Neighbor<D>>, SearchStats))>>;
    let worker_outs: Vec<MixedOut<D>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let schedule = &schedule;
                let execute = &execute;
                scope.spawn(move || -> MixedOut<D> {
                    let search = NnSearch::with_options(tree, opts);
                    let mut cursor = QueryCursor::new();
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + block).min(len);
                        for &i in &schedule[start..end] {
                            out.push((i, execute(&mut cursor, &search, &requests[i])?));
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut results: Vec<(Vec<Neighbor<D>>, SearchStats)> =
        vec![(Vec::new(), SearchStats::default()); len];
    let mut per_worker_queries = Vec::with_capacity(threads);
    for worker_out in worker_outs {
        let pairs = worker_out?;
        per_worker_queries.push(pairs.len());
        for (i, found) in pairs {
            results[i] = found;
        }
    }
    let stats = BatchStats {
        threads,
        block,
        per_worker_queries,
    };
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use nnq_geom::Rect;
    use nnq_rtree::{MemRTree, RecordId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tree_and_queries(n: usize, nq: usize) -> (MemRTree<2>, Vec<Point<2>>) {
        let mut rng = StdRng::seed_from_u64(12);
        let tree = MemRTree::new();
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            tree.insert(&Rect::from_point(p), RecordId(i as u64))
                .unwrap();
        }
        let queries = (0..nq)
            .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        (tree, queries)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (tree, queries) = tree_and_queries(5_000, 200);
        let seq = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &MbrRefiner, 1).unwrap();
        for threads in [2, 4, 7] {
            let par = par_knn_batch(
                &tree,
                &queries,
                5,
                NnOptions::default(),
                &MbrRefiner,
                threads,
            )
            .unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(
                    a.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    b.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (tree, _) = tree_and_queries(100, 0);
        let out = par_knn_batch(&tree, &[], 3, NnOptions::default(), &MbrRefiner, 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_queries() {
        let (tree, queries) = tree_and_queries(500, 3);
        let out = par_knn_batch(&tree, &queries, 2, NnOptions::default(), &MbrRefiner, 16).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn scheduler_accounts_for_every_query() {
        let (tree, queries) = tree_and_queries(2_000, 300);
        for threads in [1, 2, 4, 8] {
            let (out, stats) = par_knn_batch_stats(
                &tree,
                &queries,
                4,
                NnOptions::default(),
                &MbrRefiner,
                threads,
            )
            .unwrap();
            assert_eq!(out.len(), queries.len());
            assert_eq!(stats.threads, threads.min(stats.per_worker_queries.len()));
            assert_eq!(
                stats.per_worker_queries.iter().sum::<usize>(),
                queries.len(),
                "threads={threads}"
            );
            if threads > 1 {
                assert!(stats.block >= 1 && stats.block <= 32);
            }
        }
    }

    #[test]
    fn block_override_is_bit_identical() {
        let (tree, queries) = tree_and_queries(3_000, 250);
        let seq = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &MbrRefiner, 1).unwrap();
        for block in [1, 3, 17, 64, 1000] {
            let (out, stats) = par_knn_batch_with_block(
                &tree,
                &queries,
                5,
                NnOptions::default(),
                &MbrRefiner,
                4,
                JoinOrder::AsGiven,
                Some(block),
            )
            .unwrap();
            assert_eq!(stats.block, block, "override not applied");
            for (a, b) in out.iter().zip(&seq) {
                assert_eq!(
                    a.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    b.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    "block={block}"
                );
            }
        }
    }

    #[test]
    fn block_size_is_small_and_bounded() {
        assert_eq!(block_size(10, 8), 1);
        assert_eq!(block_size(1_000, 4), 31);
        assert_eq!(block_size(100_000, 8), 32);
        assert_eq!(block_size(2, 8), 1);
    }

    fn mixed_requests(queries: &[Point<2>]) -> Vec<BatchQuery<2>> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i % 3 == 0 {
                    BatchQuery::Radius {
                        q: *q,
                        radius: 2.0 + (i % 7) as f64,
                    }
                } else {
                    BatchQuery::Knn {
                        q: *q,
                        k: 1 + i % 5,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn mixed_batch_bit_identical_across_threads_blocks_and_order() {
        let (tree, queries) = tree_and_queries(4_000, 180);
        let reqs = mixed_requests(&queries);
        let (seq, _) = par_mixed_batch(
            &tree,
            &reqs,
            NnOptions::default(),
            &MbrRefiner,
            1,
            JoinOrder::AsGiven,
            None,
        )
        .unwrap();
        assert_eq!(seq.len(), reqs.len());
        for (threads, order, block) in [
            (2, JoinOrder::AsGiven, None),
            (4, JoinOrder::Hilbert, None),
            (8, JoinOrder::Hilbert, Some(1)),
            (3, JoinOrder::AsGiven, Some(64)),
        ] {
            let (par, bstats) = par_mixed_batch(
                &tree,
                &reqs,
                NnOptions::default(),
                &MbrRefiner,
                threads,
                order,
                block,
            )
            .unwrap();
            assert_eq!(bstats.per_worker_queries.iter().sum::<usize>(), reqs.len());
            for (i, ((a, sa), (b, sb))) in par.iter().zip(&seq).enumerate() {
                assert_eq!(sa, sb, "stats diverge at request {i} (threads={threads})");
                assert_eq!(a.len(), b.len(), "request {i}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.record, y.record, "request {i}");
                    assert_eq!(x.dist_sq.to_bits(), y.dist_sq.to_bits(), "request {i}");
                }
            }
        }
    }

    #[test]
    fn mixed_batch_matches_standalone_queries() {
        let (tree, queries) = tree_and_queries(2_000, 60);
        let reqs = mixed_requests(&queries);
        let (got, _) = par_mixed_batch(
            &tree,
            &reqs,
            NnOptions::default(),
            &MbrRefiner,
            4,
            JoinOrder::Hilbert,
            None,
        )
        .unwrap();
        let search = NnSearch::new(&tree);
        for (req, (hits, stats)) in reqs.iter().zip(&got) {
            let (want, want_stats) = match *req {
                BatchQuery::Knn { q, k } => search.query_refined(&q, k, &MbrRefiner).unwrap(),
                BatchQuery::Radius { q, radius } => {
                    crate::within_radius(&tree, &q, radius, &MbrRefiner).unwrap()
                }
            };
            assert_eq!(stats, &want_stats);
            assert_eq!(hits.len(), want.len());
            for (x, y) in hits.iter().zip(&want) {
                assert_eq!(x.record, y.record);
                assert_eq!(x.dist_sq.to_bits(), y.dist_sq.to_bits());
            }
        }
    }

    #[test]
    fn mixed_batch_empty_is_fine() {
        let (tree, _) = tree_and_queries(100, 0);
        let (out, _) = par_mixed_batch(
            &tree,
            &[],
            NnOptions::default(),
            &MbrRefiner,
            4,
            JoinOrder::Hilbert,
            None,
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
