//! Parallel batch queries.
//!
//! The paper's conclusion lists parallel nearest-neighbor search as future
//! work; this module provides the embarrassingly-parallel form: a batch of
//! independent queries fanned out over scoped worker threads. Both tree
//! backends are internally synchronized for reads (`&self` queries), so
//! workers share one tree.

use crate::branch_bound::{NnSearch, QueryCursor};
use crate::options::{Neighbor, NnOptions};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::Point;
use nnq_rtree::TreeAccess;

/// Runs a kNN query for every point in `queries`, fanning the batch out
/// over `threads` worker threads. Results are returned in query order.
///
/// `threads = 1` degenerates to a sequential loop (no threads spawned).
///
/// ```
/// use nnq_core::{par_knn_batch, NnOptions, MbrRefiner};
/// use nnq_rtree::{MemRTree, RecordId};
/// use nnq_geom::{Point, Rect};
///
/// let mut tree = MemRTree::<2>::new();
/// for i in 0..1000u64 {
///     let p = Point::new([(i % 50) as f64, (i / 50) as f64]);
///     tree.insert(Rect::from_point(p), RecordId(i)).unwrap();
/// }
/// let queries: Vec<_> = (0..64).map(|i| Point::new([i as f64, i as f64])).collect();
/// let results = par_knn_batch(&tree, &queries, 3, NnOptions::default(), &MbrRefiner, 4).unwrap();
/// assert_eq!(results.len(), 64);
/// assert!(results.iter().all(|r| r.len() == 3));
/// ```
pub fn par_knn_batch<const D: usize, T, R>(
    tree: &T,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<Vec<Vec<Neighbor<D>>>>
where
    T: TreeAccess<D> + Sync + ?Sized,
    R: Refiner<D> + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    if threads == 1 || queries.len() == 1 {
        let search = NnSearch::with_options(tree, opts);
        let mut cursor = QueryCursor::new();
        return queries
            .iter()
            .map(|q| {
                search
                    .query_refined_with(&mut cursor, q, k, refiner)
                    .map(|(n, _)| n)
            })
            .collect();
    }

    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<Neighbor<D>>> = vec![Vec::new(); queries.len()];
    let out_chunks: Vec<&mut [Vec<Neighbor<D>>]> = results.chunks_mut(chunk).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (qs, outs) in queries.chunks(chunk).zip(out_chunks) {
            handles.push(scope.spawn(move || -> Result<()> {
                let search = NnSearch::with_options(tree, opts);
                // One cursor per worker: all per-query scratch (ABL
                // buffers, selection scratch, candidate heap) is reused
                // across the worker's whole share of the batch.
                let mut cursor = QueryCursor::new();
                for (q, out) in qs.iter().zip(outs.iter_mut()) {
                    let (found, _) = search.query_refined_with(&mut cursor, q, k, refiner)?;
                    *out = found;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("worker panicked")?;
        }
        Ok::<(), crate::Error>(())
    })?;

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use nnq_geom::Rect;
    use nnq_rtree::{MemRTree, RecordId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tree_and_queries(n: usize, nq: usize) -> (MemRTree<2>, Vec<Point<2>>) {
        let mut rng = StdRng::seed_from_u64(12);
        let mut tree = MemRTree::new();
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            tree.insert(Rect::from_point(p), RecordId(i as u64))
                .unwrap();
        }
        let queries = (0..nq)
            .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        (tree, queries)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (tree, queries) = tree_and_queries(5_000, 200);
        let seq = par_knn_batch(&tree, &queries, 5, NnOptions::default(), &MbrRefiner, 1).unwrap();
        for threads in [2, 4, 7] {
            let par = par_knn_batch(
                &tree,
                &queries,
                5,
                NnOptions::default(),
                &MbrRefiner,
                threads,
            )
            .unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(
                    a.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    b.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (tree, _) = tree_and_queries(100, 0);
        let out = par_knn_batch(&tree, &[], 3, NnOptions::default(), &MbrRefiner, 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_queries() {
        let (tree, queries) = tree_and_queries(500, 3);
        let out = par_knn_batch(&tree, &queries, 2, NnOptions::default(), &MbrRefiner, 16).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.len() == 2));
    }
}
