//! k-farthest-neighbor search.
//!
//! The mirror image of the paper's problem, pruned by the mirror-image
//! bound: `MAXDIST(P, R)` (distance to the farthest corner) upper-bounds
//! the distance to any object inside `R`, so a subtree whose `MAXDIST`
//! does not exceed the current k-th *farthest* candidate can be skipped.
//! A best-first traversal in decreasing `MAXDIST` order visits only the
//! promising fringe of the tree.
//!
//! Exact for point and rectangle objects (the object is its MBR); for
//! refined objects (e.g. segments) the ranking uses the refiner's exact
//! distance while `MAXDIST` stays a valid upper bound because every object
//! lies inside its MBR.

use crate::options::{KernelMode, Neighbor, SearchStats};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{maxdist_sq, maxdist_sq_batch, Point};
use nnq_rtree::{RecordId, TreeAccess};
use nnq_storage::PageId;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bounded *min*-heap over the k farthest candidates: the root is the
/// k-th farthest (weakest) candidate, i.e. the pruning bound.
struct FarHeap<const D: usize> {
    k: usize,
    heap: BinaryHeap<std::cmp::Reverse<(Key, RecordId, usize)>>,
    entries: Vec<Neighbor<D>>,
}

impl<const D: usize> FarHeap<D> {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            entries: Vec::new(),
        }
    }

    /// Squared distance of the k-th farthest candidate (`-∞` until full —
    /// everything is accepted while the heap has room).
    fn bound_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap
                .peek()
                .map_or(f64::NEG_INFINITY, |std::cmp::Reverse((Key(d), _, _))| *d)
        }
    }

    fn offer(&mut self, n: Neighbor<D>) {
        if n.dist_sq <= self.bound_sq() {
            return;
        }
        let slot = self.entries.len();
        self.entries.push(n);
        self.heap
            .push(std::cmp::Reverse((Key(n.dist_sq), n.record, slot)));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    fn into_sorted(self) -> Vec<Neighbor<D>> {
        let mut kept: Vec<Neighbor<D>> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse((_, _, slot))| self.entries[slot])
            .collect();
        kept.sort_by(|a, b| {
            b.dist_sq
                .total_cmp(&a.dist_sq)
                .then_with(|| a.record.cmp(&b.record))
        });
        kept
    }
}

/// Finds the `k` objects **farthest** from `q`, sorted by decreasing
/// distance.
pub fn farthest_knn<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    farthest_knn_with(tree, q, k, refiner, KernelMode::default())
}

/// [`farthest_knn`] with an explicit distance-kernel mode. Both modes
/// produce bit-identical results and statistics.
pub fn farthest_knn_with<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
    kernel: KernelMode,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    assert!(k > 0, "k must be at least 1");
    let batch = kernel == KernelMode::Batch;
    let mut maxdists: Vec<f64> = Vec::new();
    let mut far = FarHeap::new(k);
    let mut stats = SearchStats::default();
    // Max-heap on MAXDIST: most promising (farthest-reaching) node first.
    let mut queue: BinaryHeap<(Key, PageId)> = BinaryHeap::new();
    if let Some(root) = tree.access_root() {
        queue.push((Key(f64::INFINITY), root));
    }
    while let Some((Key(bound), page)) = queue.pop() {
        if bound <= far.bound_sq() {
            break; // no remaining node can reach beyond the k-th farthest
        }
        let node = tree.access_node(page)?;
        stats.nodes_visited += 1;
        if batch {
            maxdist_sq_batch(q, node.soa(), &mut maxdists);
        }
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for (j, e) in node.entries().iter().enumerate() {
                let d = if batch {
                    maxdists[j]
                } else {
                    maxdist_sq(q, &e.mbr)
                };
                if d <= far.bound_sq() {
                    stats.pruned_upward += 1;
                    continue;
                }
                let exact = refiner.dist_sq(e.record(), &e.mbr, q);
                stats.dist_computations += 1;
                far.offer(Neighbor {
                    record: e.record(),
                    mbr: e.mbr,
                    dist_sq: exact,
                });
            }
        } else {
            for (j, e) in node.entries().iter().enumerate() {
                let d = if batch {
                    maxdists[j]
                } else {
                    maxdist_sq(q, &e.mbr)
                };
                if d > far.bound_sq() {
                    queue.push((Key(d), e.child()));
                } else {
                    stats.pruned_upward += 1;
                }
            }
        }
    }
    Ok((far.into_sorted(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use nnq_geom::Rect;
    use nnq_rtree::MemRTree;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_setup(n: usize, seed: u64) -> (MemRTree<2>, Vec<Point<2>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = MemRTree::new();
        let mut pts = Vec::new();
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            tree.insert(&Rect::from_point(p), RecordId(i as u64))
                .unwrap();
            pts.push(p);
        }
        (tree, pts)
    }

    #[test]
    fn matches_brute_force() {
        let (tree, pts) = random_setup(2_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..25 {
            let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            for k in [1usize, 5, 13] {
                let (got, _) = farthest_knn(&tree, &q, k, &MbrRefiner).unwrap();
                let mut want: Vec<f64> = pts.iter().map(|p| q.dist_sq(p)).collect();
                want.sort_by(|a, b| b.total_cmp(a));
                let gd: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
                assert_eq!(gd, want[..k].to_vec());
            }
        }
    }

    #[test]
    fn results_sorted_decreasing() {
        let (tree, _) = random_setup(500, 5);
        let (got, _) = farthest_knn(&tree, &Point::new([50.0, 50.0]), 20, &MbrRefiner).unwrap();
        for w in got.windows(2) {
            assert!(w[0].dist_sq >= w[1].dist_sq);
        }
    }

    #[test]
    fn pruning_avoids_full_traversal() {
        let (tree, _) = random_setup(50_000, 7);
        let total = tree.stats().unwrap().nodes;
        // Query at a corner: the farthest points are in the opposite
        // corner, and most of the tree is prunable.
        let (_, stats) = farthest_knn(&tree, &Point::new([0.0, 0.0]), 3, &MbrRefiner).unwrap();
        assert!(
            stats.nodes_visited * 5 < total,
            "visited {} of {total}",
            stats.nodes_visited
        );
    }

    #[test]
    fn k_exceeding_size_returns_everything() {
        let (tree, pts) = random_setup(50, 9);
        let (got, _) = farthest_knn(&tree, &Point::new([0.0, 0.0]), 100, &MbrRefiner).unwrap();
        assert_eq!(got.len(), pts.len());
    }

    #[test]
    fn empty_tree() {
        let tree = MemRTree::<2>::new();
        let (got, _) = farthest_knn(&tree, &Point::new([0.0, 0.0]), 3, &MbrRefiner).unwrap();
        assert!(got.is_empty());
    }
}
