//! Filter-refine distance computation.
//!
//! The R-tree stores only bounding rectangles; exact object geometry lives
//! with the caller. A [`Refiner`] turns a leaf entry into an exact squared
//! distance. Correctness requirement: the exact distance must never be
//! *smaller* than `MINDIST` to the entry's MBR (true for any object
//! enclosed by its MBR), which is what lets the search use `MINDIST` as a
//! filter bound.

use nnq_geom::{mindist_sq, Point, Rect};
use nnq_rtree::RecordId;

/// Supplies the exact squared distance from a query point to an object.
pub trait Refiner<const D: usize> {
    /// Exact squared distance from `q` to the object `record` whose indexed
    /// MBR is `mbr`.
    fn dist_sq(&self, record: RecordId, mbr: &Rect<D>, q: &Point<D>) -> f64;
}

impl<const D: usize, R: Refiner<D> + ?Sized> Refiner<D> for &R {
    #[inline]
    fn dist_sq(&self, record: RecordId, mbr: &Rect<D>, q: &Point<D>) -> f64 {
        (**self).dist_sq(record, mbr, q)
    }
}

/// The identity refiner: the object *is* its rectangle, so the exact
/// distance is `MINDIST` to the MBR. Exact for point and rectangle data.
#[derive(Clone, Copy, Debug, Default)]
pub struct MbrRefiner;

impl<const D: usize> Refiner<D> for MbrRefiner {
    #[inline]
    fn dist_sq(&self, _record: RecordId, mbr: &Rect<D>, q: &Point<D>) -> f64 {
        mindist_sq(q, mbr)
    }
}

/// Adapts a closure into a [`Refiner`] — the usual way to look exact object
/// geometry up in caller-side storage:
///
/// ```
/// use nnq_core::{FnRefiner, Refiner};
/// use nnq_geom::{Point, Rect, Segment};
/// use nnq_rtree::RecordId;
///
/// let segments = vec![Segment::new(Point::new([0.0, 0.0]), Point::new([10.0, 0.0]))];
/// let refiner = FnRefiner::new(|rid: RecordId, _mbr: &Rect<2>, q: &Point<2>| {
///     segments[rid.0 as usize].dist_sq_to_point(q)
/// });
/// let d = refiner.dist_sq(RecordId(0), &segments[0].mbr(), &Point::new([5.0, 3.0]));
/// assert_eq!(d, 9.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FnRefiner<F>(F);

impl<F> FnRefiner<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<const D: usize, F> Refiner<D> for FnRefiner<F>
where
    F: Fn(RecordId, &Rect<D>, &Point<D>) -> f64,
{
    #[inline]
    fn dist_sq(&self, record: RecordId, mbr: &Rect<D>, q: &Point<D>) -> f64 {
        (self.0)(record, mbr, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_refiner_equals_mindist() {
        let r = Rect::new(Point::new([1.0, 1.0]), Point::new([2.0, 2.0]));
        let q = Point::new([0.0, 1.5]);
        let d = MbrRefiner.dist_sq(RecordId(0), &r, &q);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn fn_refiner_delegates() {
        let refiner = FnRefiner::new(|rid: RecordId, _: &Rect<2>, _: &Point<2>| rid.0 as f64);
        let r = Rect::from_point(Point::new([0.0, 0.0]));
        assert_eq!(
            refiner.dist_sq(RecordId(7), &r, &Point::new([0.0, 0.0])),
            7.0
        );
    }
}
