//! Online self-tuning of backend performance knobs.
//!
//! PRs 1–6 grew a stack of runtime knobs — prefetch depth and worker
//! count, decoded-node cache capacity, work-stealing claim-block size,
//! per-partition cache budgets — that were all hand-set constants. This
//! module closes the feedback loop: a [`TuneController`] samples the
//! counters the system already maintains ([`BackendSignals`]: pool
//! hit/miss rates, prefetch useful/wasted classification, node-cache
//! hit/eviction rates; [`BatchStats`]: work-steal imbalance) at
//! query-batch granularity, smooths them with an EWMA, and retunes the
//! knobs between batches.
//!
//! # Accounting neutrality
//!
//! The controller may only touch knobs that are individually proven not
//! to change results, `logical_reads` (the paper's "pages accessed"), or
//! any [`SearchStats`](crate::SearchStats) counter:
//!
//! * **prefetch depth** — hints are advisory and accounted outside
//!   `PoolStats` (PR 4's contract);
//! * **prefetch workers** — workers only serve hints;
//! * **node-cache capacity** — `PagedStore::read` fetches the page
//!   *before* probing the cache, so page accounting never depends on
//!   cache contents (PR 1's contract, preserved by the in-place CLOCK
//!   ring resize);
//! * **claim-block size** — every query is computed independently and
//!   results are reassembled in submission order (PR 3's contract);
//! * **per-partition cache budget** — a vector of node-cache capacities.
//!
//! Because every knob is individually neutral, any schedule of
//! adjustments — including mid-run — leaves results and accounting
//! bit-identical to a run with tuning off. `tests/tests/tuning.rs` pins
//! exactly this.
//!
//! # Signals → knobs
//!
//! | signal (EWMA over batch deltas)       | knob                     |
//! |---------------------------------------|--------------------------|
//! | pool miss rate                        | prefetch depth (ladder)  |
//! | prefetch wasted rate                  | prefetch depth (back-off)|
//! | prefetch depth                        | worker count             |
//! | node-cache hit rate + evictions       | cache capacity (grow)    |
//! | node-cache hit rate + occupancy       | cache capacity (shrink)  |
//! | work-steal imbalance                  | claim-block size         |
//! | per-partition miss rates              | cache budget shares      |

use crate::options::{PrefetchPolicy, TuneMode};
use crate::parallel::BatchStats;
use nnq_rtree::{BackendSignals, PartitionedTree, TreeAccess};

/// Hard bounds the controller keeps every knob inside.
#[derive(Clone, Copy, Debug)]
pub struct TuneBounds {
    /// Largest prefetch-hint depth (the bench sweeps found diminishing
    /// returns past 8; 16 leaves headroom).
    pub max_depth: usize,
    /// Most prefetch workers to keep active (clamped further by how many
    /// threads the pool actually spawned).
    pub max_workers: usize,
    /// Smallest decoded-node cache capacity (also the per-partition
    /// budget floor); never tune the cache away entirely.
    pub min_cache: usize,
    /// Largest decoded-node cache capacity (per partition, for
    /// partitioned trees).
    pub max_cache: usize,
}

impl Default for TuneBounds {
    fn default() -> Self {
        Self {
            max_depth: 16,
            max_workers: 4,
            min_cache: 64,
            max_cache: 8192,
        }
    }
}

/// The knob settings a [`TuneController`] currently recommends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnobSettings {
    /// Prefetch-hint depth for the next batch (0 = no hints). Callers
    /// apply it via [`TuneController::prefetch_policy`].
    pub prefetch_depth: usize,
    /// Active prefetch workers (applied through
    /// `TreeAccess::set_prefetch_workers`).
    pub prefetch_workers: usize,
    /// Decoded-node cache capacity, per tree (applied through
    /// `TreeAccess::set_cache_capacity`; partitioned trees spread
    /// `capacity × partitions` by miss rate).
    pub cache_capacity: usize,
    /// Claim-block override for the work-stealing executor (`None` =
    /// the static heuristic).
    pub block_override: Option<usize>,
}

/// Online controller retuning backend knobs from their own counters.
///
/// Drive it at batch granularity: run a batch, then call
/// [`TuneController::observe_batch`] with the executor's stats and
/// [`TuneController::observe_tree`] (or
/// [`TuneController::observe_partitioned`]) with the tree — the latter
/// samples counters, updates the EWMAs, picks new knob values, and
/// applies them to the backend. Build the next batch's options with
/// [`TuneController::prefetch_policy`] and
/// [`TuneController::block_override`].
///
/// In [`TuneMode::Off`] every method is a no-op, so callers can keep one
/// unconditional code path.
#[derive(Debug)]
pub struct TuneController {
    mode: TuneMode,
    bounds: TuneBounds,
    /// EWMA smoothing factor for batch-delta rates: the weight of the
    /// newest batch. 0.5 reacts within ~2 batches of a workload shift
    /// while still riding out single-batch noise.
    alpha: f64,
    miss: Option<f64>,
    cache_hit: Option<f64>,
    wasted: Option<f64>,
    imbalance: Option<f64>,
    /// Counter snapshot at the previous observation (deltas are computed
    /// against it).
    last: Option<BackendSignals>,
    knobs: KnobSettings,
    adjustments: u64,
    samples: u64,
}

impl TuneController {
    /// A controller with default bounds. Initial knobs mirror the
    /// hand-set defaults the system ships with: cold-start prefetch
    /// depth, one worker per two depth steps, the `PagedStore` default
    /// cache capacity, heuristic block size.
    pub fn new(mode: TuneMode) -> Self {
        Self::with_bounds(mode, TuneBounds::default())
    }

    /// A controller with explicit knob bounds.
    pub fn with_bounds(mode: TuneMode, bounds: TuneBounds) -> Self {
        Self {
            mode,
            bounds,
            alpha: 0.5,
            miss: None,
            cache_hit: None,
            wasted: None,
            imbalance: None,
            last: None,
            knobs: KnobSettings {
                prefetch_depth: PrefetchPolicy::COLD_START_DEPTH,
                prefetch_workers: 2,
                // `PagedStore::DEFAULT_CACHE_CAPACITY`.
                cache_capacity: 1024,
                block_override: None,
            },
            adjustments: 0,
            samples: 0,
        }
    }

    /// The controller's mode.
    pub fn mode(&self) -> TuneMode {
        self.mode
    }

    /// Whether the controller is actively tuning.
    pub fn is_active(&self) -> bool {
        self.mode == TuneMode::Adaptive
    }

    /// Current knob recommendations.
    pub fn settings(&self) -> KnobSettings {
        self.knobs
    }

    /// How many observations changed at least one knob.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// How many observations the controller has consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The prefetch policy encoding the current depth knob — what callers
    /// put into `NnOptions.prefetch` for the next batch. Off-mode
    /// controllers return `None` (keep whatever the caller configured).
    pub fn prefetch_policy(&self) -> Option<PrefetchPolicy> {
        if !self.is_active() {
            return None;
        }
        Some(match self.knobs.prefetch_depth {
            0 => PrefetchPolicy::Off,
            n => PrefetchPolicy::Depth(n),
        })
    }

    /// The claim-block override for the next batch (`None` in off mode or
    /// when the heuristic is fine).
    pub fn block_override(&self) -> Option<usize> {
        if !self.is_active() {
            return None;
        }
        self.knobs.block_override
    }

    /// One-line report of the final knob state for CLI/bench stats lines.
    pub fn report(&self) -> String {
        let block = match self.knobs.block_override {
            Some(b) => b.to_string(),
            None => "auto".to_string(),
        };
        format!(
            "depth={} workers={} cache={} block={} adjustments={} samples={}",
            self.knobs.prefetch_depth,
            self.knobs.prefetch_workers,
            self.knobs.cache_capacity,
            block,
            self.adjustments,
            self.samples,
        )
    }

    /// Feeds one batch's scheduling telemetry into the imbalance EWMA and
    /// retunes the claim-block knob. No-op in off mode or for sequential
    /// batches (one worker has no imbalance to measure).
    pub fn observe_batch(&mut self, stats: &BatchStats) {
        if !self.is_active() || stats.threads <= 1 || stats.per_worker_queries.is_empty() {
            return;
        }
        let total: usize = stats.per_worker_queries.iter().sum();
        if total == 0 {
            return;
        }
        let mean = total as f64 / stats.per_worker_queries.len() as f64;
        let max = *stats.per_worker_queries.iter().max().expect("non-empty") as f64;
        let imbalance = max / mean.max(1.0);
        self.imbalance = Some(ewma(self.imbalance, imbalance, self.alpha));

        // Heavy imbalance means some worker sat on an expensive claim
        // while others idled: shrink claims to single queries so stealing
        // is as fine-grained as possible. Near-even split: let the static
        // heuristic amortize the cursor.
        let new_block = if self.imbalance.expect("just set") > 1.5 {
            Some(1)
        } else {
            None
        };
        if new_block != self.knobs.block_override {
            self.knobs.block_override = new_block;
            self.adjustments += 1;
        }
    }

    /// Samples the tree's backend counters, updates the EWMAs, picks new
    /// knob values, and applies the cache-capacity and prefetch-worker
    /// knobs through [`TreeAccess`]. Call between batches. No-op in off
    /// mode.
    pub fn observe_tree<const D: usize, T: TreeAccess<D> + ?Sized>(&mut self, tree: &T) {
        if !self.is_active() {
            return;
        }
        let now = tree.backend_signals();
        if self.step(now) {
            tree.set_cache_capacity(self.knobs.cache_capacity);
            tree.set_prefetch_workers(self.knobs.prefetch_workers);
        }
    }

    /// [`TuneController::observe_tree`] for a [`PartitionedTree`]: the
    /// EWMAs run on the partition-summed counters, the worker knob is
    /// applied to every partition's prefetcher, and the cache knob
    /// becomes a dataset-wide budget of `cache_capacity × partitions`
    /// nodes redistributed toward the worst-missing partitions
    /// (`PartitionedTree::rebalance_cache_budget`, floored at
    /// `min_cache` per partition).
    pub fn observe_partitioned<const D: usize>(&mut self, tree: &PartitionedTree<D>) {
        if !self.is_active() {
            return;
        }
        let mut agg = BackendSignals::default();
        for s in tree.partition_signals() {
            agg.accumulate(&s);
        }
        // The gauges summed across partitions; normalize capacity back to
        // a per-partition figure so the ladder thresholds keep meaning.
        let p = tree.partition_count().max(1);
        agg.cache_len /= p;
        agg.cache_capacity /= p;
        if self.step(agg) {
            tree.rebalance_cache_budget(self.knobs.cache_capacity * p, self.bounds.min_cache);
            tree.set_prefetch_workers(self.knobs.prefetch_workers);
        }
    }

    /// Core decision step: consume one counter snapshot, update EWMAs,
    /// recompute knobs. Returns whether the caller should (re-)apply the
    /// backend knobs — true whenever a delta was observed, so a mid-run
    /// external knob change is corrected even if the decision is
    /// unchanged.
    fn step(&mut self, now: BackendSignals) -> bool {
        let Some(last) = self.last.replace(now) else {
            // First sighting: nothing to delta against yet. Still apply
            // the initial knobs so controller and backend agree.
            self.samples += 1;
            return true;
        };
        let reads = now.logical_reads.saturating_sub(last.logical_reads);
        if reads == 0 {
            // No traffic since the last look; leave the EWMAs alone.
            return false;
        }
        self.samples += 1;

        let phys = now.physical_reads.saturating_sub(last.physical_reads);
        self.miss = Some(ewma(self.miss, phys as f64 / reads as f64, self.alpha));

        let probes =
            (now.cache_hits + now.cache_misses).saturating_sub(last.cache_hits + last.cache_misses);
        if probes > 0 {
            let hits = now.cache_hits.saturating_sub(last.cache_hits);
            self.cache_hit = Some(ewma(
                self.cache_hit,
                hits as f64 / probes as f64,
                self.alpha,
            ));
        }

        let classified = (now.prefetch_useful + now.prefetch_wasted)
            .saturating_sub(last.prefetch_useful + last.prefetch_wasted);
        if classified > 0 {
            let wasted = now.prefetch_wasted.saturating_sub(last.prefetch_wasted);
            self.wasted = Some(ewma(
                self.wasted,
                wasted as f64 / classified as f64,
                self.alpha,
            ));
        }

        let old = self.knobs;

        // Prefetch depth: the Adaptive ladder, on the smoothed miss rate
        // instead of one query's instantaneous view...
        let miss = self.miss.expect("set above");
        let mut depth = if miss >= 0.5 {
            8
        } else if miss >= 0.05 {
            2
        } else {
            0
        };
        // ...backed off when classification says the hints mostly die
        // unclaimed (evicted before use: queue too deep for the pool).
        if self.wasted.unwrap_or(0.0) > 0.5 {
            depth /= 2;
        }
        self.knobs.prefetch_depth = depth.min(self.bounds.max_depth);

        // Workers follow depth: deep hinting under heavy misses wants
        // I/O overlap; shallow or no hinting needs one worker at most
        // (the floor set_prefetch_workers enforces anyway).
        self.knobs.prefetch_workers = match self.knobs.prefetch_depth {
            0..=1 => 1,
            2..=4 => 2,
            _ => self.bounds.max_workers,
        };

        // Cache capacity: grow ×2 under decode pressure (low hit rate
        // while evictions prove the ring is too small for the working
        // set); shrink ×2 when the cache is both comfortable and mostly
        // empty. Hysteresis between the thresholds prevents flapping.
        let evictions = now.cache_evictions.saturating_sub(last.cache_evictions);
        if let Some(hit) = self.cache_hit {
            if hit < 0.6 && evictions > 0 {
                self.knobs.cache_capacity =
                    (self.knobs.cache_capacity * 2).min(self.bounds.max_cache);
            } else if hit > 0.95 && now.cache_len < now.cache_capacity / 4 {
                self.knobs.cache_capacity =
                    (self.knobs.cache_capacity / 2).max(self.bounds.min_cache);
            }
        }

        if self.knobs != old {
            self.adjustments += 1;
        }
        true
    }
}

/// One EWMA step: `alpha` weights the new sample; a `None` state adopts
/// the sample outright.
fn ewma(state: Option<f64>, sample: f64, alpha: f64) -> f64 {
    match state {
        None => sample,
        Some(prev) => alpha * sample + (1.0 - alpha) * prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(logical: u64, phys: u64, ch: u64, cm: u64, ev: u64) -> BackendSignals {
        BackendSignals {
            logical_reads: logical,
            pool_hits: logical - phys,
            physical_reads: phys,
            cache_hits: ch,
            cache_misses: cm,
            cache_evictions: ev,
            cache_len: 0,
            cache_capacity: 1024,
            ..BackendSignals::default()
        }
    }

    #[test]
    fn off_mode_never_moves() {
        let mut c = TuneController::new(TuneMode::Off);
        assert!(!c.is_active());
        assert_eq!(c.prefetch_policy(), None);
        assert_eq!(c.block_override(), None);
        c.observe_batch(&BatchStats {
            threads: 8,
            block: 4,
            per_worker_queries: vec![100, 0, 0, 0, 0, 0, 0, 0],
        });
        assert_eq!(c.adjustments(), 0);
        assert_eq!(c.samples(), 0);
    }

    #[test]
    fn miss_ladder_drives_depth_and_workers() {
        let mut c = TuneController::new(TuneMode::Adaptive);
        assert!(c.step(signals(0, 0, 0, 0, 0))); // baseline snapshot
                                                 // All-miss batch: depth jumps to the cold rung, workers follow.
        assert!(c.step(signals(1000, 1000, 0, 1000, 0)));
        assert_eq!(c.settings().prefetch_depth, 8);
        assert_eq!(c.settings().prefetch_workers, 4);
        assert_eq!(c.prefetch_policy(), Some(PrefetchPolicy::Depth(8)));
        // Warm batches: the EWMA decays the miss rate to the bottom rung.
        for i in 1..=8u64 {
            c.step(signals(1000 + i * 1000, 1000, 0, 1000, 0));
        }
        assert_eq!(c.settings().prefetch_depth, 0);
        assert_eq!(c.settings().prefetch_workers, 1);
        assert_eq!(c.prefetch_policy(), Some(PrefetchPolicy::Off));
    }

    #[test]
    fn wasted_prefetch_backs_depth_off() {
        let mut c = TuneController::new(TuneMode::Adaptive);
        c.step(signals(0, 0, 0, 0, 0));
        let mut s = signals(1000, 1000, 0, 1000, 0);
        s.prefetch_useful = 10;
        s.prefetch_wasted = 990;
        c.step(s);
        // Miss rate alone says 8; the wasted rate halves it.
        assert_eq!(c.settings().prefetch_depth, 4);
    }

    #[test]
    fn cache_grows_under_pressure_and_shrinks_when_idle() {
        let mut c = TuneController::new(TuneMode::Adaptive);
        c.step(signals(0, 0, 0, 0, 0));
        let start = c.settings().cache_capacity;
        // Thrashing: low hit rate with evictions → grow.
        c.step(signals(1000, 0, 100, 900, 500));
        assert_eq!(c.settings().cache_capacity, start * 2);
        // Comfortable and empty → shrink (cache_len 0 < capacity/4); the
        // EWMA needs a few near-perfect batches to clear the hysteresis
        // band.
        for i in 1..=6u64 {
            c.step(signals(1000 + i * 100_000, 0, i * 100_000, 900, 500));
        }
        assert!(c.settings().cache_capacity < start * 2);
    }

    #[test]
    fn bounds_are_hard() {
        let mut c = TuneController::with_bounds(
            TuneMode::Adaptive,
            TuneBounds {
                max_depth: 4,
                max_workers: 2,
                min_cache: 256,
                max_cache: 512,
            },
        );
        c.step(signals(0, 0, 0, 0, 0));
        for i in 1..=10u64 {
            // Permanent thrash: everything wants to grow.
            c.step(signals(i * 1000, i * 1000, i * 100, i * 900, i * 500));
        }
        let k = c.settings();
        assert!(k.prefetch_depth <= 4);
        assert!(k.prefetch_workers <= 2);
        assert!((256..=512).contains(&k.cache_capacity));
    }

    #[test]
    fn imbalance_shrinks_block_and_recovers() {
        let mut c = TuneController::new(TuneMode::Adaptive);
        c.observe_batch(&BatchStats {
            threads: 4,
            block: 8,
            per_worker_queries: vec![97, 1, 1, 1],
        });
        assert_eq!(c.block_override(), Some(1));
        let adj = c.adjustments();
        // Balanced batches decay the EWMA back under the threshold.
        for _ in 0..8 {
            c.observe_batch(&BatchStats {
                threads: 4,
                block: 8,
                per_worker_queries: vec![25, 25, 25, 25],
            });
        }
        assert_eq!(c.block_override(), None);
        assert!(c.adjustments() > adj);
    }

    #[test]
    fn quiet_batches_leave_state_alone() {
        let mut c = TuneController::new(TuneMode::Adaptive);
        c.step(signals(1000, 1000, 0, 1000, 0));
        c.step(signals(2000, 2000, 0, 2000, 0));
        let before = c.settings();
        let samples = c.samples();
        // Identical snapshot: zero reads since last look.
        assert!(!c.step(signals(2000, 2000, 0, 2000, 0)));
        assert_eq!(c.settings(), before);
        assert_eq!(c.samples(), samples);
    }
}
