//! Query tracing ("explain") for the branch-and-bound search.
//!
//! A traced query records every decision the algorithm makes — which
//! nodes it visited, each ABL entry's `MINDIST`/`MINMAXDIST`, and why each
//! branch or object was pruned. Useful for teaching the algorithm, for
//! debugging index quality, and for the tests that pin down pruning
//! behaviour precisely.

use nnq_rtree::RecordId;
use nnq_storage::PageId;

/// What happened to one ABL entry or leaf object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The branch was descended into / the object's exact distance was
    /// computed.
    Visited,
    /// Discarded by strategy 1 (downward pruning).
    PrunedDownward,
    /// Discarded by strategy 2 (object pruning).
    PrunedObject,
    /// Discarded by strategy 3 (upward pruning).
    PrunedUpward,
    /// Skipped because it does not intersect the query's region
    /// constraint.
    OutsideRegion,
}

/// One event of a traced query, in traversal order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node was read.
    EnterNode {
        /// Node handle.
        page: PageId,
        /// Node level (0 = leaf).
        level: u16,
        /// The candidate bound (squared) when the node was entered.
        bound_sq: f64,
    },
    /// A routing entry was considered.
    Branch {
        /// The child the entry points to.
        child: PageId,
        /// `MINDIST²` to the entry's MBR.
        mindist_sq: f64,
        /// `MINMAXDIST²` to the entry's MBR.
        minmaxdist_sq: f64,
        /// What the algorithm did with it.
        decision: Decision,
    },
    /// A leaf object was considered.
    Object {
        /// The object's record id.
        record: RecordId,
        /// `MINDIST²` filter bound to the object's MBR.
        filter_sq: f64,
        /// Exact squared distance if it was computed.
        exact_sq: Option<f64>,
        /// What the algorithm did with it.
        decision: Decision,
        /// Whether the object entered the candidate set.
        accepted: bool,
    },
}

/// A complete query trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in traversal order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of `EnterNode` events.
    pub fn nodes_entered(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::EnterNode { .. }))
            .count()
    }

    /// Renders a compact human-readable transcript.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        for e in &self.events {
            match e {
                TraceEvent::EnterNode {
                    page,
                    level,
                    bound_sq,
                } => {
                    depth = *level as usize;
                    out.push_str(&format!(
                        "{:indent$}node {page} (level {level}, bound {:.3})\n",
                        "",
                        bound_sq.sqrt(),
                        indent = 2 * depth
                    ));
                }
                TraceEvent::Branch {
                    child,
                    mindist_sq,
                    minmaxdist_sq,
                    decision,
                } => {
                    out.push_str(&format!(
                        "{:indent$}- branch {child}: mindist {:.3} minmax {:.3} -> {decision:?}\n",
                        "",
                        mindist_sq.sqrt(),
                        minmaxdist_sq.sqrt(),
                        indent = 2 * depth + 2
                    ));
                }
                TraceEvent::Object {
                    record,
                    filter_sq,
                    exact_sq,
                    decision,
                    accepted,
                } => {
                    let exact = exact_sq
                        .map(|d| format!("{:.3}", d.sqrt()))
                        .unwrap_or_else(|| "-".into());
                    out.push_str(&format!(
                        "{:indent$}- object #{}: filter {:.3} exact {exact} -> {decision:?}{}\n",
                        "",
                        record.0,
                        filter_sq.sqrt(),
                        if *accepted { " (kept)" } else { "" },
                        indent = 2 * depth + 2
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_readable_lines() {
        let trace = Trace {
            events: vec![
                TraceEvent::EnterNode {
                    page: PageId(3),
                    level: 1,
                    bound_sq: f64::INFINITY,
                },
                TraceEvent::Branch {
                    child: PageId(4),
                    mindist_sq: 4.0,
                    minmaxdist_sq: 9.0,
                    decision: Decision::Visited,
                },
                TraceEvent::Object {
                    record: RecordId(7),
                    filter_sq: 1.0,
                    exact_sq: Some(1.0),
                    decision: Decision::Visited,
                    accepted: true,
                },
            ],
        };
        let s = trace.render();
        assert!(s.contains("node page#3"));
        assert!(s.contains("branch page#4: mindist 2.000 minmax 3.000"));
        assert!(s.contains("object #7"));
        assert!(s.contains("(kept)"));
        assert_eq!(trace.nodes_entered(), 1);
    }
}
