//! Scatter-gather queries over Hilbert-range partitioned trees.
//!
//! The paper's Theorem 1 justifies discarding a *subtree* whose MINDIST
//! exceeds the current k-th candidate distance; nothing in the argument
//! requires the subtree to hang off the same root. Applied one level up,
//! it discards a whole *partition* whose MINDIST-to-partition-MBR exceeds
//! the bound — the scale-out form of branch-and-bound kNN. This module
//! implements that search over any slice of [`TreeAccess`] backends plus
//! their MBRs ([`scatter_knn`] / [`scatter_radius`]), with convenience
//! wrappers for [`PartitionedTree`].
//!
//! ## The shared-bound round protocol
//!
//! Partitions are scheduled in ascending `(MINDIST(q, partition MBR),
//! partition index)` order and executed in **rounds** of doubling size
//! (1, 1, 2, 4, 8, …). At the start of each round the [`SharedBound`] —
//! an `AtomicU64` holding the best k-th squared distance as `f64` bits —
//! is sampled **once**:
//!
//! * every scheduled partition whose MINDIST is at or beyond the sample
//!   is pruned, along with the entire remaining schedule (the schedule is
//!   sorted by MINDIST and the bound only tightens, so the first pruned
//!   partition proves the rest);
//! * the round's survivors are searched in parallel, each through its own
//!   [`QueryCursor`] pre-pruned by the *same* sampled bound
//!   ([`NnSearch::query_refined_bounded`]);
//! * after a barrier, per-partition results are merged into the global
//!   candidate heap in schedule order, and only then is the shared bound
//!   tightened.
//!
//! Sampling per round — never mid-flight — is a deliberate trade: a live
//! bound would sometimes prune a little more, but *which* pages a
//! partition reads would then depend on thread scheduling. With the round
//! protocol, every per-partition traversal is a pure function of
//! `(partition, query, k, round bound)`, so results, every
//! [`SearchStats`] counter, and the summed per-partition `logical_reads`
//! are bit-identical across thread counts — the same accounting contract
//! the rest of this crate keeps for caches, kernels, and prefetch. The
//! doubling round sizes bound the cost of the serialization: the first
//! two rounds establish a tight bound from the nearest partitions (one
//! partition each), after which wide rounds exploit full parallelism —
//! at most ⌈log₂ P⌉ + 1 barriers for P partitions.
//!
//! The first round starts with an infinite bound, so the nearest
//! partition is searched exactly as a standalone tree would be; with one
//! partition the whole protocol degenerates to a plain single-tree query.

use crate::branch_bound::{NnSearch, QueryCursor};
use crate::heap::KnnHeap;
use crate::options::{Neighbor, NnOptions, SearchStats};
use crate::parallel::block_size;
use crate::radius::within_radius_with;
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{mindist_sq, Point, Rect};
use nnq_rtree::{PartitionedTree, TreeAccess};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The k-th-distance bound shared across partition searches: an
/// `AtomicU64` holding `f64` bits, tightened monotonically.
///
/// Squared distances are nonnegative, and `f64::to_bits` is
/// order-preserving on nonnegative values, so the CAS loop in
/// [`SharedBound::tighten`] can compare bit patterns' float values
/// directly without worrying about the sign-magnitude encoding.
pub struct SharedBound(AtomicU64);

impl SharedBound {
    /// A fresh bound: `+∞` (nothing prunes yet).
    pub fn new() -> Self {
        Self(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The current bound.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lowers the bound to `value` if `value` is tighter; never raises it.
    pub fn tighten(&self, value: f64) {
        let mut current = self.0.load(Ordering::Acquire);
        while value < f64::from_bits(current) {
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

/// Work counters for one scatter-gather query (or a batch of them).
///
/// `search` sums the per-partition traversal counters in schedule order;
/// the partition counters satisfy
/// `partitions_visited + partitions_pruned == P` for every query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Summed per-partition traversal counters.
    pub search: SearchStats,
    /// Partitions actually searched.
    pub partitions_visited: u64,
    /// Partitions skipped because their MINDIST-to-MBR reached the shared
    /// bound (kNN) or exceeded the radius — including empty partitions,
    /// whose empty MBR has infinite MINDIST.
    pub partitions_pruned: u64,
    /// Rounds executed by the kNN protocol (1 for any non-empty radius
    /// scatter).
    pub rounds: u64,
}

impl PartitionedStats {
    /// Adds `other` counter-wise (batch aggregation).
    pub fn accumulate(&mut self, other: &PartitionedStats) {
        self.search.accumulate(&other.search);
        self.partitions_visited += other.partitions_visited;
        self.partitions_pruned += other.partitions_pruned;
        self.rounds += other.rounds;
    }
}

/// One scheduled partition: its MINDIST to the query and its index.
#[derive(Clone, Copy)]
struct Sched {
    mindist_sq: f64,
    part: usize,
}

/// Builds the MINDIST-ascending schedule (ties broken by partition
/// index, so the order is total and deterministic).
fn schedule<const D: usize>(q: &Point<D>, mbrs: &[Rect<D>]) -> Vec<Sched> {
    let mut sched: Vec<Sched> = mbrs
        .iter()
        .enumerate()
        .map(|(part, mbr)| Sched {
            // An empty partition's MBR is `Rect::empty()` with infinite
            // corners: its MINDIST evaluates to +∞ and the schedule tail
            // prunes it without a special case.
            mindist_sq: mindist_sq(q, mbr),
            part,
        })
        .collect();
    sched.sort_by(|a, b| {
        a.mindist_sq
            .total_cmp(&b.mindist_sq)
            .then_with(|| a.part.cmp(&b.part))
    });
    sched
}

/// Branch-and-bound kNN over `parts`, visiting partitions in MINDIST
/// order under the shared-bound round protocol (module docs).
///
/// `mbrs[i]` must bound every object in `parts[i]`
/// ([`Rect::empty`] for an empty partition). Results are the exact k
/// nearest across all partitions, sorted by `(distance, record)` — and,
/// like every counter in the returned [`PartitionedStats`], independent
/// of `threads`.
///
/// # Panics
/// Panics if `parts` and `mbrs` have different lengths, `k == 0`, or
/// `threads == 0`.
pub fn scatter_knn<const D: usize, T, R>(
    parts: &[T],
    mbrs: &[Rect<D>],
    q: &Point<D>,
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<(Vec<Neighbor<D>>, PartitionedStats)>
where
    T: TreeAccess<D> + Sync,
    R: Refiner<D> + Sync,
{
    assert_eq!(parts.len(), mbrs.len(), "one MBR per partition");
    assert!(k > 0, "k must be at least 1");
    assert!(threads > 0, "need at least one worker");
    let sched = schedule(q, mbrs);
    let shared = SharedBound::new();
    let mut heap = KnnHeap::<D>::new(k);
    let mut stats = PartitionedStats::default();
    let mut next = 0usize; // first unprocessed schedule slot
    let mut round_size = 1usize;

    while next < sched.len() {
        let bound = shared.get();
        // The schedule is MINDIST-ascending and the bound is monotone, so
        // the first entry at/above the bound proves the whole tail.
        let take = sched[next..]
            .iter()
            .take(round_size)
            .take_while(|s| s.mindist_sq < bound)
            .count();
        if take == 0 {
            break;
        }
        let round = &sched[next..next + take];
        next += take;
        stats.rounds += 1;
        stats.partitions_visited += round.len() as u64;

        let outs = search_round(parts, round, q, k, opts, refiner, threads, bound)?;
        // Gather: merge in schedule order — deterministic regardless of
        // which worker finished first.
        for (found, part_stats) in outs {
            stats.search.accumulate(&part_stats);
            for n in found {
                heap.offer(n.record, n.mbr, n.dist_sq);
            }
        }
        shared.tighten(heap.bound_sq());
        // 1, 1, 2, 4, 8, …: cheap serial rounds while the bound is loose,
        // wide parallel rounds once it is tight.
        if stats.rounds >= 2 {
            round_size = round_size.saturating_mul(2);
        }
    }
    stats.partitions_pruned = sched.len() as u64 - stats.partitions_visited;
    Ok((heap.drain_sorted(), stats))
}

type PartOut<const D: usize> = (Vec<Neighbor<D>>, SearchStats);

/// Searches one round's partitions, each pre-pruned by `bound`, with up
/// to `threads` workers. Output is in round (schedule) order.
#[allow(clippy::too_many_arguments)]
fn search_round<const D: usize, T, R>(
    parts: &[T],
    round: &[Sched],
    q: &Point<D>,
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    bound: f64,
) -> Result<Vec<PartOut<D>>>
where
    T: TreeAccess<D> + Sync,
    R: Refiner<D> + Sync,
{
    let workers = threads.min(round.len());
    if workers <= 1 {
        let mut cursor = QueryCursor::new();
        let mut outs = Vec::with_capacity(round.len());
        for s in round {
            let search = NnSearch::with_options(&parts[s.part], opts);
            outs.push(search.query_refined_bounded(&mut cursor, q, k, refiner, bound)?);
        }
        return Ok(outs);
    }
    let slots: Vec<Mutex<Option<Result<PartOut<D>>>>> =
        (0..round.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut qc = QueryCursor::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= round.len() {
                        break;
                    }
                    let search = NnSearch::with_options(&parts[round[i].part], opts);
                    *slots[i].lock().expect("slot lock poisoned") =
                        Some(search.query_refined_bounded(&mut qc, q, k, refiner, bound));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Radius query over `parts`: partitions whose MINDIST-to-MBR exceeds
/// the (squared) radius are skipped outright; the rest are searched in
/// parallel in one round and the hits merged and sorted by
/// `(distance, record)` — the same output contract as
/// [`within_radius`](crate::within_radius) on a single tree.
///
/// # Panics
/// Panics if `parts` and `mbrs` have different lengths, `radius` is
/// negative, or `threads == 0`.
pub fn scatter_radius<const D: usize, T, R>(
    parts: &[T],
    mbrs: &[Rect<D>],
    q: &Point<D>,
    radius: f64,
    refiner: &R,
    opts: NnOptions,
    threads: usize,
) -> Result<(Vec<Neighbor<D>>, PartitionedStats)>
where
    T: TreeAccess<D> + Sync,
    R: Refiner<D> + Sync,
{
    assert_eq!(parts.len(), mbrs.len(), "one MBR per partition");
    assert!(radius >= 0.0, "radius must be nonnegative");
    assert!(threads > 0, "need at least one worker");
    let radius_sq = radius * radius;
    let sched = schedule(q, mbrs);
    // Unlike kNN there is no evolving bound: the survivor set is known up
    // front, so a single parallel round covers it.
    let visit: Vec<Sched> = sched
        .iter()
        .copied()
        .take_while(|s| s.mindist_sq <= radius_sq)
        .collect();
    let mut stats = PartitionedStats {
        partitions_visited: visit.len() as u64,
        partitions_pruned: (sched.len() - visit.len()) as u64,
        rounds: u64::from(!visit.is_empty()),
        ..PartitionedStats::default()
    };

    let workers = threads.min(visit.len().max(1));
    let outs: Vec<PartOut<D>> = if workers <= 1 {
        let mut outs = Vec::with_capacity(visit.len());
        for s in &visit {
            outs.push(within_radius_with(
                &parts[s.part],
                q,
                radius,
                refiner,
                opts.kernel,
            )?);
        }
        outs
    } else {
        let slots: Vec<Mutex<Option<Result<PartOut<D>>>>> =
            (0..visit.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= visit.len() {
                        break;
                    }
                    *slots[i].lock().expect("slot lock poisoned") = Some(within_radius_with(
                        &parts[visit[i].part],
                        q,
                        radius,
                        refiner,
                        opts.kernel,
                    ));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("worker filled every slot")
            })
            .collect::<Result<_>>()?
    };

    let mut merged = Vec::new();
    for (found, part_stats) in outs {
        stats.search.accumulate(&part_stats);
        merged.extend(found);
    }
    merged.sort_by(|a, b| {
        a.dist_sq
            .total_cmp(&b.dist_sq)
            .then_with(|| a.record.cmp(&b.record))
    });
    Ok((merged, stats))
}

/// kNN over a [`PartitionedTree`]: [`scatter_knn`] against its partition
/// trees and manifest MBRs.
pub fn partitioned_knn<const D: usize, R: Refiner<D> + Sync>(
    tree: &PartitionedTree<D>,
    q: &Point<D>,
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<(Vec<Neighbor<D>>, PartitionedStats)> {
    let mbrs: Vec<Rect<D>> = tree.manifest().parts.iter().map(|p| p.mbr).collect();
    scatter_knn(tree.partitions(), &mbrs, q, k, opts, refiner, threads)
}

/// Radius query over a [`PartitionedTree`]: [`scatter_radius`] against
/// its partition trees and manifest MBRs.
pub fn partitioned_radius<const D: usize, R: Refiner<D> + Sync>(
    tree: &PartitionedTree<D>,
    q: &Point<D>,
    radius: f64,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<(Vec<Neighbor<D>>, PartitionedStats)> {
    let mbrs: Vec<Rect<D>> = tree.manifest().parts.iter().map(|p| p.mbr).collect();
    scatter_radius(tree.partitions(), &mbrs, q, radius, refiner, opts, threads)
}

/// A batch of kNN queries over a [`PartitionedTree`], fanned out with the
/// same work-stealing scheme as [`par_knn_batch`](crate::par_knn_batch):
/// workers claim query blocks off a shared cursor, and **each query's
/// scatter runs sequentially** (partition parallelism and batch
/// parallelism would fight over the same cores). Results come back in
/// submission order; the aggregate [`PartitionedStats`] sums the
/// per-query stats in submission order, so both are bit-identical to
/// `threads = 1`.
pub fn partitioned_knn_batch<const D: usize, R: Refiner<D> + Sync>(
    tree: &PartitionedTree<D>,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> Result<(Vec<Vec<Neighbor<D>>>, PartitionedStats)> {
    partitioned_knn_batch_with_block(tree, queries, k, opts, refiner, threads, None)
}

/// [`partitioned_knn_batch`] with an explicit claim-block override
/// (`None` uses the shared [`block_size`] heuristic) — the self-tuning
/// controller's batch knob for partitioned trees. Bit-identical for any
/// block size, for the same reason as
/// [`par_knn_batch_with_block`](crate::par_knn_batch_with_block).
pub fn partitioned_knn_batch_with_block<const D: usize, R: Refiner<D> + Sync>(
    tree: &PartitionedTree<D>,
    queries: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    threads: usize,
    block_override: Option<usize>,
) -> Result<(Vec<Vec<Neighbor<D>>>, PartitionedStats)> {
    assert!(threads > 0, "need at least one worker");
    let mbrs: Vec<Rect<D>> = tree.manifest().parts.iter().map(|p| p.mbr).collect();
    let parts = tree.partitions();
    let mut totals = PartitionedStats::default();

    if threads == 1 || queries.len() <= 1 {
        let mut results = Vec::with_capacity(queries.len());
        for q in queries {
            let (found, stats) = scatter_knn(parts, &mbrs, q, k, opts, refiner, 1)?;
            totals.accumulate(&stats);
            results.push(found);
        }
        return Ok((results, totals));
    }

    let len = queries.len();
    let block = block_override
        .map(|b| b.max(1))
        .unwrap_or_else(|| block_size(len, threads));
    let next = AtomicUsize::new(0);
    type WorkerOut<const D: usize> = Result<Vec<(usize, Vec<Neighbor<D>>, PartitionedStats)>>;
    let worker_outs: Vec<WorkerOut<D>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let mbrs = &mbrs;
                scope.spawn(move || -> WorkerOut<D> {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        for (i, q) in queries
                            .iter()
                            .enumerate()
                            .take((start + block).min(len))
                            .skip(start)
                        {
                            let (found, stats) = scatter_knn(parts, mbrs, q, k, opts, refiner, 1)?;
                            out.push((i, found, stats));
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut results: Vec<Vec<Neighbor<D>>> = vec![Vec::new(); len];
    let mut per_query: Vec<Option<PartitionedStats>> = vec![None; len];
    for worker_out in worker_outs {
        for (i, found, stats) in worker_out? {
            results[i] = found;
            per_query[i] = Some(stats);
        }
    }
    // Sum in submission order — integer counters commute, but keeping one
    // canonical order costs nothing and keeps the contract self-evident.
    for stats in per_query.into_iter().flatten() {
        totals.accumulate(&stats);
    }
    Ok((results, totals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use crate::within_radius;
    use nnq_rtree::{BulkMethod, RTreeConfig, RecordId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let p = Point::new([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]);
                (Rect::from_point(p), RecordId(i as u64))
            })
            .collect()
    }

    fn build(items: Vec<(Rect<2>, RecordId)>, p: usize) -> PartitionedTree<2> {
        PartitionedTree::bulk_load_in_memory(
            items,
            p,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            4096,
            1,
        )
        .unwrap()
    }

    #[test]
    fn shared_bound_tightens_monotonically() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(9.0);
        assert_eq!(b.get(), 9.0);
        b.tighten(25.0); // looser: ignored
        assert_eq!(b.get(), 9.0);
        b.tighten(1.5);
        assert_eq!(b.get(), 1.5);
        b.tighten(0.0);
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    fn knn_matches_brute_force_across_partition_counts() {
        let items = points(3000, 17);
        let q = Point::new([321.5, 654.2]);
        let mut dists: Vec<(f64, u64)> = items
            .iter()
            .map(|(r, rid)| {
                let c = r.center();
                let (dx, dy) = (c[0] - q[0], c[1] - q[1]);
                (dx * dx + dy * dy, rid.0)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for p in [1, 3, 8] {
            let tree = build(items.clone(), p);
            let (found, stats) =
                partitioned_knn(&tree, &q, 10, NnOptions::default(), &MbrRefiner, 1).unwrap();
            assert_eq!(found.len(), 10);
            for (n, (want_d, _)) in found.iter().zip(&dists) {
                assert_eq!(n.dist_sq, *want_d, "p={p}");
            }
            assert_eq!(
                stats.partitions_visited + stats.partitions_pruned,
                p as u64,
                "p={p}"
            );
        }
    }

    #[test]
    fn knn_is_thread_invariant() {
        let items = points(4000, 19);
        let tree = build(items, 8);
        let queries: Vec<Point<2>> = (0..20)
            .map(|i| Point::new([i as f64 * 47.0 % 1000.0, i as f64 * 131.0 % 1000.0]))
            .collect();
        for q in &queries {
            let (r1, s1) =
                partitioned_knn(&tree, q, 7, NnOptions::default(), &MbrRefiner, 1).unwrap();
            for threads in [2, 8] {
                let (rt, st) =
                    partitioned_knn(&tree, q, 7, NnOptions::default(), &MbrRefiner, threads)
                        .unwrap();
                assert_eq!(r1, rt, "threads={threads}");
                assert_eq!(s1, st, "threads={threads}");
            }
        }
    }

    #[test]
    fn far_partitions_are_pruned() {
        // Two clusters far apart: querying inside one cluster must prune
        // the partitions that cover the other.
        let mut items = points(1000, 23); // cluster A in [0,1000)^2
        let mut rng = StdRng::seed_from_u64(29);
        for i in 0..1000usize {
            let p = Point::new([
                1_000_000.0 + rng.random_range(0.0..1000.0),
                rng.random_range(0.0..1000.0),
            ]);
            items.push((Rect::from_point(p), RecordId((1000 + i) as u64)));
        }
        let tree = build(items, 8);
        let q = Point::new([500.0, 500.0]);
        let (found, stats) =
            partitioned_knn(&tree, &q, 5, NnOptions::default(), &MbrRefiner, 1).unwrap();
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|n| n.record.0 < 1000));
        assert!(
            stats.partitions_pruned > 0,
            "distant cluster should be pruned: {stats:?}"
        );
        assert_eq!(stats.partitions_visited + stats.partitions_pruned, 8);
    }

    #[test]
    fn empty_partitions_count_as_pruned() {
        let tree = build(points(3, 31), 8); // 5 empty partitions
        let (found, stats) = partitioned_knn(
            &tree,
            &Point::new([1.0, 1.0]),
            3,
            NnOptions::default(),
            &MbrRefiner,
            2,
        )
        .unwrap();
        assert_eq!(found.len(), 3);
        assert_eq!(stats.partitions_visited + stats.partitions_pruned, 8);
        assert!(stats.partitions_pruned >= 5);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let tree = build(points(25, 37), 4);
        let (found, _) = partitioned_knn(
            &tree,
            &Point::new([0.0, 0.0]),
            100,
            NnOptions::default(),
            &MbrRefiner,
            2,
        )
        .unwrap();
        assert_eq!(found.len(), 25);
        for w in found.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn radius_matches_single_tree() {
        let items = points(2500, 41);
        let single = build(items.clone(), 1);
        let q = Point::new([400.0, 400.0]);
        for radius in [0.0, 15.0, 60.0, 2000.0] {
            let (want, _) =
                within_radius(&single.partitions()[0], &q, radius, &MbrRefiner).unwrap();
            for p in [4usize, 16] {
                let tree = build(items.clone(), p);
                for threads in [1usize, 4] {
                    let (got, stats) = partitioned_radius(
                        &tree,
                        &q,
                        radius,
                        NnOptions::default(),
                        &MbrRefiner,
                        threads,
                    )
                    .unwrap();
                    assert_eq!(got, want, "p={p} threads={threads} radius={radius}");
                    assert_eq!(stats.partitions_visited + stats.partitions_pruned, p as u64);
                }
            }
        }
    }

    #[test]
    fn batch_matches_individual_queries_and_is_thread_invariant() {
        let items = points(3000, 43);
        let tree = build(items, 4);
        let queries: Vec<Point<2>> = (0..30)
            .map(|i| Point::new([(i * 97 % 1000) as f64, (i * 389 % 1000) as f64]))
            .collect();
        let (seq, seq_stats) =
            partitioned_knn_batch(&tree, &queries, 5, NnOptions::default(), &MbrRefiner, 1)
                .unwrap();
        // Individual queries agree.
        for (q, want) in queries.iter().zip(&seq) {
            let (got, _) =
                partitioned_knn(&tree, q, 5, NnOptions::default(), &MbrRefiner, 1).unwrap();
            assert_eq!(&got, want);
        }
        for threads in [2, 8] {
            let (par, par_stats) = partitioned_knn_batch(
                &tree,
                &queries,
                5,
                NnOptions::default(),
                &MbrRefiner,
                threads,
            )
            .unwrap();
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_stats, par_stats, "threads={threads}");
        }
    }

    #[test]
    fn rounds_grow_geometrically() {
        // 64 partitions, uniform data, huge k: the bound stays loose, so
        // every partition is visited — in at most 1+1+2+4+8+16+32 → 7
        // rounds.
        let tree = build(points(2000, 47), 64);
        let (_, stats) = partitioned_knn(
            &tree,
            &Point::new([500.0, 500.0]),
            2000,
            NnOptions::default(),
            &MbrRefiner,
            4,
        )
        .unwrap();
        assert_eq!(stats.partitions_visited, 64);
        assert!(stats.rounds <= 7, "rounds = {}", stats.rounds);
    }

    #[test]
    fn empty_partition_list_yields_nothing() {
        let parts: Vec<nnq_rtree::MemRTree<2>> = Vec::new();
        let (found, stats) = scatter_knn(
            &parts,
            &[],
            &Point::new([0.0, 0.0]),
            3,
            NnOptions::default(),
            &MbrRefiner,
            1,
        )
        .unwrap();
        assert!(found.is_empty());
        assert_eq!(stats, PartitionedStats::default());
    }
}
