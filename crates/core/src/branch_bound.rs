//! The RKV'95 branch-and-bound nearest-neighbor search.
//!
//! An ordered depth-first traversal of the R-tree. At each internal node
//! the child entries form the **Active Branch List (ABL)**; the list is
//! sorted by `MINDIST` or `MINMAXDIST`, pruned by the paper's three
//! strategies, and visited in order, re-applying upward pruning whenever
//! control returns from a subtree (the re-check happens naturally because
//! the candidate bound is consulted immediately before each descent).
//!
//! ## Soundness of the pruning bounds for k > 1
//!
//! Strategy 1 and 2 use the k-th smallest `MINMAXDIST` *within one node's
//! entry list* as an upper bound on the k-th nearest-neighbor distance.
//! This is sound because the entries of a single node describe pairwise
//! disjoint subtrees (internal node) or distinct objects (leaf), so k
//! distinct entries guarantee k *distinct* objects within their respective
//! `MINMAXDIST`s. Mixing bounds across different tree levels would not be
//! sound — an ancestor's guaranteed object may be the same object as a
//! descendant's — so bounds are kept node-local, exactly as in the paper.
//!
//! ## Batched queries
//!
//! Each query needs an ABL per tree level, a `MINMAXDIST` scratch vector,
//! and the candidate heap. A [`QueryCursor`] owns all three and is reused
//! across queries ([`NnSearch::query_refined_with`]), so a warm batch over
//! a cached tree performs no per-visit allocations; the convenience
//! methods ([`NnSearch::query`] etc.) create a throwaway cursor.

use crate::explain::{Decision, Trace, TraceEvent};
use crate::heap::KnnHeap;
use crate::options::{AblOrdering, KernelMode, Neighbor, NnOptions, SearchStats};
use crate::refine::{MbrRefiner, Refiner};
use crate::Result;
use nnq_geom::{mindist_sq, mindist_sq_batch, minmaxdist_sq, minmaxdist_sq_batch, Point, Rect};
use nnq_rtree::{NodeView, RTree, TreeAccess};
use nnq_storage::PageId;

/// A nearest-neighbor query engine over an [`RTree`].
///
/// Cheap to construct; borrow one per query batch. See the crate docs for
/// an end-to-end example.
pub struct NnSearch<'t, const D: usize, T: TreeAccess<D> + ?Sized = RTree<D>> {
    tree: &'t T,
    opts: NnOptions,
}

/// Reusable per-query working memory for the branch-and-bound search:
/// one Active Branch List buffer per tree level, a `MINMAXDIST` scratch
/// vector, and the bounded candidate heap.
///
/// Construct once, pass to [`NnSearch::query_refined_with`] for every
/// query of a batch; after the first few queries the search reaches a
/// steady state with no allocations besides the result vector. A cursor
/// is plain data — independent of any particular tree — but must not be
/// shared across threads concurrently (give each worker its own, as
/// [`crate::par_knn_batch`] does).
pub struct QueryCursor<const D: usize> {
    heap: KnnHeap<D>,
    /// One ABL buffer per recursion depth; the DFS at depth `d` may not
    /// reuse the buffer of any ancestor still iterating its own ABL.
    abl_stack: Vec<Vec<AblEntry>>,
    /// Scratch for the k-th-smallest MINMAXDIST selections (S1/S2).
    minmax: Vec<f64>,
    /// Per-entry MINDIST output of the batch kernel for the node being
    /// visited (`KernelMode::Batch` only).
    batch_mindist: Vec<f64>,
    /// Per-entry MINMAXDIST output of the batch kernel for the node being
    /// visited (`KernelMode::Batch` only).
    batch_minmax: Vec<f64>,
}

impl<const D: usize> QueryCursor<D> {
    /// Creates an empty cursor. Buffers grow to fit the first queries and
    /// are retained afterwards.
    pub fn new() -> Self {
        Self {
            heap: KnnHeap::new(1),
            abl_stack: Vec::new(),
            minmax: Vec::new(),
            batch_mindist: Vec::new(),
            batch_minmax: Vec::new(),
        }
    }
}

impl<const D: usize> Default for QueryCursor<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'t, const D: usize, T: TreeAccess<D> + ?Sized> NnSearch<'t, D, T> {
    /// Creates a search engine with the paper's full algorithm
    /// (MINDIST ordering, all pruning strategies on).
    pub fn new(tree: &'t T) -> Self {
        Self {
            tree,
            opts: NnOptions::default(),
        }
    }

    /// Creates a search engine with explicit options.
    pub fn with_options(tree: &'t T, opts: NnOptions) -> Self {
        Self { tree, opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &NnOptions {
        &self.opts
    }

    /// Finds the `k` records nearest to `q`, treating each record's MBR as
    /// the object itself (exact for point and rectangle data).
    pub fn query(&self, q: &Point<D>, k: usize) -> Result<Vec<Neighbor<D>>> {
        self.query_refined(q, k, &MbrRefiner).map(|(n, _)| n)
    }

    /// Like [`NnSearch::query`], also returning per-query work counters.
    pub fn query_with_stats(
        &self,
        q: &Point<D>,
        k: usize,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        self.query_refined(q, k, &MbrRefiner)
    }

    /// Finds the `k` objects nearest to `q`, using `refiner` for exact
    /// object distances (filter-refine; see [`Refiner`]).
    pub fn query_refined<R: Refiner<D>>(
        &self,
        q: &Point<D>,
        k: usize,
        refiner: &R,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        let mut cursor = QueryCursor::new();
        self.run(&mut cursor, q, k, refiner, None, f64::INFINITY)
    }

    /// Like [`NnSearch::query_refined`], reusing `cursor`'s buffers — the
    /// batched entry point: one cursor amortizes all per-query scratch
    /// (ABL, selection scratch, candidate heap) across a whole workload.
    pub fn query_refined_with<R: Refiner<D>>(
        &self,
        cursor: &mut QueryCursor<D>,
        q: &Point<D>,
        k: usize,
        refiner: &R,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        self.run(cursor, q, k, refiner, None, f64::INFINITY)
    }

    /// Like [`NnSearch::query_refined_with`], but the traversal starts
    /// with an externally supplied upper bound on the k-th nearest
    /// squared distance: branches and objects at `init_bound_sq` or
    /// beyond are pruned upward from the first node on, exactly as if a
    /// candidate at that distance were already in the heap.
    ///
    /// This is the scatter-gather entry point — a partition searched
    /// after its siblings starts pre-pruned by the best k-th distance
    /// they established. An unrelated caller can pass `f64::INFINITY`
    /// (equivalent to [`NnSearch::query_refined_with`]).
    ///
    /// The bound must be a *sound* upper bound on the true k-th distance
    /// (e.g. a k-full heap bound from other partitions); results closer
    /// than the bound are exact. Objects at or beyond it may still
    /// appear in the returned list while the local heap is not yet full
    /// — a gather stage that merges across partitions discards them by
    /// distance, so correctness is unaffected.
    pub fn query_refined_bounded<R: Refiner<D>>(
        &self,
        cursor: &mut QueryCursor<D>,
        q: &Point<D>,
        k: usize,
        refiner: &R,
        init_bound_sq: f64,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        self.run(cursor, q, k, refiner, None, init_bound_sq)
    }

    /// Finds the `k` nearest objects whose MBR intersects `region` — the
    /// "nearest POIs inside the visible map area" query. Subtrees disjoint
    /// from the region are skipped before any metric is computed.
    ///
    /// Note: with a region constraint, `MINMAXDIST` no longer guarantees
    /// an *eligible* object in every face-touching position, so strategies
    /// 1 and 2 are suspended for constrained queries; upward pruning (by
    /// candidate distance) remains in force.
    pub fn query_in_region<R: Refiner<D>>(
        &self,
        q: &Point<D>,
        k: usize,
        region: &Rect<D>,
        refiner: &R,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        let mut cursor = QueryCursor::new();
        self.run(&mut cursor, q, k, refiner, Some(*region), f64::INFINITY)
    }

    /// Like [`NnSearch::query_refined`], additionally recording a full
    /// decision [`Trace`] of the traversal (see `explain.rs`).
    pub fn query_traced<R: Refiner<D>>(
        &self,
        q: &Point<D>,
        k: usize,
        refiner: &R,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats, Trace)> {
        assert!(k > 0, "k must be at least 1");
        let mut cursor = QueryCursor::new();
        cursor.heap.reset(k);
        let mut trace = Trace::default();
        let prefetch_depth = self
            .opts
            .prefetch
            .resolve_with_activity(self.tree.io_miss_rate(), self.tree.io_reads());
        let mut ctx = Ctx {
            tree: self.tree,
            opts: self.opts,
            q: *q,
            refiner,
            region: None,
            cursor: &mut cursor,
            stats: SearchStats::default(),
            trace: Some(&mut trace),
            prefetch_depth,
            shared_bound_sq: f64::INFINITY,
        };
        if let Some(root) = self.tree.access_root() {
            ctx.visit(root, 0)?;
        }
        let stats = ctx.stats;
        Ok((cursor.heap.drain_sorted(), stats, trace))
    }

    fn run<R: Refiner<D>>(
        &self,
        cursor: &mut QueryCursor<D>,
        q: &Point<D>,
        k: usize,
        refiner: &R,
        region: Option<Rect<D>>,
        init_bound_sq: f64,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
        assert!(k > 0, "k must be at least 1");
        let mut opts = self.opts;
        if region.is_some() {
            // MINMAXDIST's object guarantee does not survive filtering, so
            // the bounds of strategies 1 and 2 are unsound here.
            opts.prune_downward = false;
            opts.prune_object = false;
        }
        cursor.heap.reset(k);
        let prefetch_depth = opts
            .prefetch
            .resolve_with_activity(self.tree.io_miss_rate(), self.tree.io_reads());
        let mut ctx = Ctx {
            tree: self.tree,
            opts,
            q: *q,
            refiner,
            region,
            cursor,
            stats: SearchStats::default(),
            trace: None,
            prefetch_depth,
            shared_bound_sq: init_bound_sq,
        };
        if let Some(root) = self.tree.access_root() {
            ctx.visit(root, 0)?;
        }
        let stats = ctx.stats;
        Ok((cursor.heap.drain_sorted(), stats))
    }
}

struct Ctx<'t, 'r, const D: usize, T: ?Sized, R> {
    tree: &'t T,
    opts: NnOptions,
    q: Point<D>,
    refiner: &'r R,
    region: Option<Rect<D>>,
    cursor: &'r mut QueryCursor<D>,
    stats: SearchStats,
    trace: Option<&'r mut Trace>,
    /// Prefetch-hint depth, resolved from `opts.prefetch` once per query
    /// (the adaptive policy samples the backend miss rate at query start).
    prefetch_depth: usize,
    /// Externally supplied upper bound on the k-th nearest squared
    /// distance (`+∞` outside scatter-gather): upward pruning compares
    /// against the tighter of this and the local heap's bound. Fixed for
    /// the duration of one traversal — the scatter protocol refreshes it
    /// only between partition rounds, which is what keeps page-access
    /// counts independent of scheduling (see `scatter.rs`).
    shared_bound_sq: f64,
}

/// k-th smallest value of `values` (`+∞` when fewer than k values).
fn kth_smallest(values: &mut [f64], k: usize) -> f64 {
    if values.len() < k {
        return f64::INFINITY;
    }
    let (_, kth, _) = values.select_nth_unstable_by(k - 1, f64::total_cmp);
    *kth
}

impl<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>> Ctx<'_, '_, D, T, R> {
    fn visit(&mut self, page: PageId, depth: usize) -> Result<()> {
        let node = self.tree.access_node(page)?;
        self.stats.nodes_visited += 1;
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.events.push(TraceEvent::EnterNode {
                page,
                level: node.level(),
                bound_sq: self.cursor.heap.bound_sq(),
            });
        }
        if node.is_leaf() {
            self.visit_leaf(&node);
            Ok(())
        } else {
            self.visit_internal(&node, depth)
        }
    }

    fn visit_leaf(&mut self, node: &NodeView<D>) {
        self.stats.leaves_visited += 1;
        let batch = self.opts.kernel == KernelMode::Batch;
        // Batch mode: one kernel pass over the node's SoA view fills the
        // per-entry MINDISTs the object loop below reads. Entries the
        // region filter skips get a (discarded) value too — same bits for
        // every value actually consumed, so the traversal is unchanged.
        if batch {
            let q = self.q;
            let cursor = &mut *self.cursor;
            mindist_sq_batch(&q, node.soa(), &mut cursor.batch_mindist);
        }
        // Strategy 2 bound: the k-th smallest MINMAXDIST among this leaf's
        // entries guarantees k objects within that distance.
        let object_bound = if self.opts.prune_object {
            let q = self.q;
            let k = self.cursor.heap.k();
            let cursor = &mut *self.cursor;
            if batch {
                minmaxdist_sq_batch(&q, node.soa(), &mut cursor.minmax);
            } else {
                cursor.minmax.clear();
                cursor
                    .minmax
                    .extend(node.entries().iter().map(|e| minmaxdist_sq(&q, &e.mbr)));
            }
            kth_smallest(&mut cursor.minmax, k)
        } else {
            f64::INFINITY
        };
        for (j, e) in node.entries().iter().enumerate() {
            if let Some(region) = &self.region {
                if !e.mbr.intersects(region) {
                    self.trace_object(e.record(), f64::NAN, None, Decision::OutsideRegion, false);
                    continue;
                }
            }
            let filter = if batch {
                self.cursor.batch_mindist[j]
            } else {
                mindist_sq(&self.q, &e.mbr)
            };
            if self.opts.prune_object && filter > object_bound {
                self.stats.pruned_object += 1;
                self.trace_object(e.record(), filter, None, Decision::PrunedObject, false);
                continue;
            }
            if self.opts.prune_upward && filter >= self.pruning_bound_sq() {
                self.stats.pruned_upward += 1;
                self.trace_object(e.record(), filter, None, Decision::PrunedUpward, false);
                continue;
            }
            let exact = self.refiner.dist_sq(e.record(), &e.mbr, &self.q);
            debug_assert!(
                exact + 1e-9 >= filter,
                "refiner returned a distance below the MBR filter bound"
            );
            self.stats.dist_computations += 1;
            let accepted = self.cursor.heap.offer(e.record(), e.mbr, exact);
            self.trace_object(e.record(), filter, Some(exact), Decision::Visited, accepted);
        }
    }

    /// The strategy-3 comparison bound: the k-th candidate's squared
    /// distance — or the externally supplied shared bound if tighter —
    /// shrunk by (1+ε)² for approximate queries (a branch whose MINDIST
    /// is within ε of the candidate bound may be skipped).
    fn pruning_bound_sq(&self) -> f64 {
        let bound = self.cursor.heap.bound_sq().min(self.shared_bound_sq);
        if self.opts.epsilon > 0.0 {
            let f = 1.0 + self.opts.epsilon;
            bound / (f * f)
        } else {
            bound
        }
    }

    fn trace_object(
        &mut self,
        record: nnq_rtree::RecordId,
        filter_sq: f64,
        exact_sq: Option<f64>,
        decision: Decision,
        accepted: bool,
    ) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.events.push(TraceEvent::Object {
                record,
                filter_sq,
                exact_sq,
                decision,
                accepted,
            });
        }
    }

    fn trace_branch(&mut self, child: PageId, mindist: f64, minmaxdist: f64, decision: Decision) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.events.push(TraceEvent::Branch {
                child,
                mindist_sq: mindist,
                minmaxdist_sq: minmaxdist,
                decision,
            });
        }
    }

    fn visit_internal(&mut self, node: &NodeView<D>, depth: usize) -> Result<()> {
        // Take this depth's reusable ABL buffer out of the cursor: the
        // recursion below will use the buffers of deeper levels, never
        // this one, so the take-and-restore keeps every level's capacity.
        while self.cursor.abl_stack.len() <= depth {
            self.cursor.abl_stack.push(Vec::new());
        }
        let mut abl = std::mem::take(&mut self.cursor.abl_stack[depth]);
        abl.clear();

        // Generate the Active Branch List. Both kernel modes produce the
        // same bits per entry (see `nnq_geom`'s kernel contract), so the
        // stable sort below and every pruning comparison behave
        // identically; batch mode just computes the two metrics in two
        // vectorized passes over the node's SoA view instead of 2·entries
        // scalar calls.
        let region = self.region;
        let in_region =
            |e: &nnq_rtree::Entry<D>| region.as_ref().is_none_or(|rg| e.mbr.intersects(rg));
        match self.opts.kernel {
            KernelMode::Scalar => {
                abl.extend(
                    node.entries()
                        .iter()
                        .filter(|e| in_region(e))
                        .map(|e| AblEntry {
                            mindist: mindist_sq(&self.q, &e.mbr),
                            minmaxdist: minmaxdist_sq(&self.q, &e.mbr),
                            child: e.child(),
                        }),
                );
            }
            KernelMode::Batch => {
                let q = self.q;
                let cursor = &mut *self.cursor;
                mindist_sq_batch(&q, node.soa(), &mut cursor.batch_mindist);
                minmaxdist_sq_batch(&q, node.soa(), &mut cursor.batch_minmax);
                abl.extend(
                    node.entries()
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| in_region(e))
                        .map(|(j, e)| AblEntry {
                            mindist: cursor.batch_mindist[j],
                            minmaxdist: cursor.batch_minmax[j],
                            child: e.child(),
                        }),
                );
            }
        }
        self.stats.abl_entries += abl.len() as u64;

        // Strategy 1 bound: k-th smallest MINMAXDIST within this ABL.
        let downward_bound = if self.opts.prune_downward {
            let k = self.cursor.heap.k();
            let minmax = &mut self.cursor.minmax;
            minmax.clear();
            minmax.extend(abl.iter().map(|a| a.minmaxdist));
            kth_smallest(minmax, k)
        } else {
            f64::INFINITY
        };

        // Sort by the configured metric (the paper's E2 comparison). The
        // sort stays *stable* so sibling order under tied keys — and with
        // it the traversal's page-access sequence — is unchanged from the
        // pre-cursor implementation.
        match self.opts.ordering {
            AblOrdering::MinDist => {
                abl.sort_by(|a, b| a.mindist.total_cmp(&b.mindist));
            }
            AblOrdering::MinMaxDist => {
                abl.sort_by(|a, b| a.minmaxdist.total_cmp(&b.minmaxdist));
            }
        }

        // ABL-guided prefetch: the sorted list is the paper's own oracle
        // for which pages are visited next, so hint the entries past the
        // head (abl[0] is fetched synchronously by the descent below) to
        // the backend's asynchronous prefetcher. Advisory only — results,
        // traversal order, SearchStats, and logical_reads are untouched.
        if self.prefetch_depth > 0 {
            for a in abl.iter().skip(1).take(self.prefetch_depth) {
                self.tree.prefetch_node(a.child);
            }
        }

        let mut result = Ok(());
        for a in &abl {
            if self.opts.prune_downward && a.mindist > downward_bound {
                self.stats.pruned_downward += 1;
                self.trace_branch(a.child, a.mindist, a.minmaxdist, Decision::PrunedDownward);
                continue;
            }
            // Strategy 3, consulted immediately before each descent — this
            // covers both the initial prune and the re-prune after control
            // returns from earlier siblings (the heap bound only shrinks).
            if self.opts.prune_upward && a.mindist >= self.pruning_bound_sq() {
                self.stats.pruned_upward += 1;
                self.trace_branch(a.child, a.mindist, a.minmaxdist, Decision::PrunedUpward);
                continue;
            }
            self.trace_branch(a.child, a.mindist, a.minmaxdist, Decision::Visited);
            if let Err(e) = self.visit(a.child, depth + 1) {
                result = Err(e);
                break;
            }
        }
        // Restore the buffer (and its capacity) for the next query.
        self.cursor.abl_stack[depth] = abl;
        result
    }
}

struct AblEntry {
    mindist: f64,
    minmaxdist: f64,
    child: PageId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Rect;
    use nnq_rtree::{RTreeConfig, RecordId};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
    use std::sync::Arc;

    fn grid_tree(n_side: u64, fanout: usize) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 4096));
        let tree = RTree::<2>::create(pool, RTreeConfig::for_testing(fanout)).unwrap();
        for x in 0..n_side {
            for y in 0..n_side {
                let p = Point::new([x as f64, y as f64]);
                tree.insert(&Rect::from_point(p), RecordId(x * n_side + y))
                    .unwrap();
            }
        }
        tree
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 16));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        let nn = NnSearch::new(&tree);
        assert!(nn.query(&Point::new([0.0, 0.0]), 5).unwrap().is_empty());
    }

    #[test]
    fn k_larger_than_dataset_returns_everything_sorted() {
        let tree = grid_tree(3, 4); // 9 points
        let nn = NnSearch::new(&tree);
        let out = nn.query(&Point::new([0.0, 0.0]), 100).unwrap();
        assert_eq!(out.len(), 9);
        for w in out.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn exact_nearest_on_grid() {
        let tree = grid_tree(20, 6);
        let nn = NnSearch::new(&tree);
        let out = nn.query(&Point::new([7.3, 11.8]), 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].record, RecordId(7 * 20 + 12));
        let expected = 0.3f64 * 0.3 + 0.2 * 0.2;
        assert!((out[0].dist_sq - expected).abs() < 1e-9);
    }

    #[test]
    fn query_at_a_data_point_returns_it_first() {
        let tree = grid_tree(10, 5);
        let nn = NnSearch::new(&tree);
        let out = nn.query(&Point::new([4.0, 4.0]), 3).unwrap();
        assert_eq!(out[0].record, RecordId(44));
        assert_eq!(out[0].dist_sq, 0.0);
        assert_eq!(out[1].dist_sq, 1.0);
        assert_eq!(out[2].dist_sq, 1.0);
    }

    #[test]
    fn all_option_combinations_agree() {
        let tree = grid_tree(16, 5);
        let q = Point::new([3.7, 12.2]);
        let reference = NnSearch::with_options(&tree, NnOptions::no_pruning())
            .query(&q, 7)
            .unwrap();
        for ordering in [AblOrdering::MinDist, AblOrdering::MinMaxDist] {
            for s1 in [false, true] {
                for s2 in [false, true] {
                    for s3 in [false, true] {
                        let opts = NnOptions {
                            ordering,
                            prune_downward: s1,
                            prune_object: s2,
                            prune_upward: s3,
                            ..NnOptions::default()
                        };
                        let got = NnSearch::with_options(&tree, opts).query(&q, 7).unwrap();
                        let gd: Vec<f64> = got.iter().map(|n| n.dist_sq).collect();
                        let rd: Vec<f64> = reference.iter().map(|n| n.dist_sq).collect();
                        assert_eq!(gd, rd, "options {opts:?} changed the result");
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_nodes_visited() {
        let tree = grid_tree(32, 6); // 1024 points, deep tree
        let q = Point::new([10.1, 20.3]);
        let (_, none) = NnSearch::with_options(&tree, NnOptions::no_pruning())
            .query_with_stats(&q, 4)
            .unwrap();
        let (_, full) = NnSearch::new(&tree).query_with_stats(&q, 4).unwrap();
        assert!(
            full.nodes_visited * 4 < none.nodes_visited,
            "pruned {} vs unpruned {}",
            full.nodes_visited,
            none.nodes_visited
        );
        assert!(full.pruned_total() > 0);
        // Unpruned traversal visits the whole tree.
        let total_nodes = tree.stats().unwrap().nodes;
        assert_eq!(none.nodes_visited, total_nodes);
    }

    #[test]
    fn stats_count_distance_computations() {
        let tree = grid_tree(8, 4);
        let (out, stats) = NnSearch::new(&tree)
            .query_with_stats(&Point::new([4.0, 4.0]), 2)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(stats.dist_computations >= 2);
        assert!(stats.nodes_visited >= stats.leaves_visited);
        assert!(stats.leaves_visited >= 1);
    }

    #[test]
    fn refined_query_ranks_by_exact_distance() {
        // Two horizontal segments; the query is closer to segment 1's MBR
        // but closer to segment 0's geometry.
        use nnq_geom::Segment;
        let segments = [
            Segment::new(Point::new([0.0, 1.0]), Point::new([10.0, 1.0])),
            Segment::new(Point::new([4.0, -10.0]), Point::new([6.0, 10.0])),
        ];
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 64));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        for (i, s) in segments.iter().enumerate() {
            tree.insert(&s.mbr(), RecordId(i as u64)).unwrap();
        }
        let refiner = crate::FnRefiner::new(|rid: RecordId, _: &Rect<2>, q: &Point<2>| {
            segments[rid.0 as usize].dist_sq_to_point(q)
        });
        let q = Point::new([1.0, 0.0]);
        let (out, _) = NnSearch::new(&tree).query_refined(&q, 2, &refiner).unwrap();
        // The query sits inside segment 1's (large) MBR but its exact
        // geometric distance to segment 0 is smaller: refinement must rank
        // by exact distance, not by MBR distance.
        assert_eq!(out[0].record, RecordId(0));
        assert_eq!(out[0].dist_sq, 1.0);
        assert_eq!(out[1].record, RecordId(1));
        assert_eq!(out[1].dist_sq, segments[1].dist_sq_to_point(&q));
        assert!(out[1].dist_sq > out[0].dist_sq);
    }

    #[test]
    fn cursor_reuse_matches_one_shot_queries() {
        let tree = grid_tree(24, 5);
        let nn = NnSearch::new(&tree);
        let mut cursor = QueryCursor::new();
        for (i, k) in [(0u64, 1usize), (7, 4), (13, 9), (200, 2), (555, 4)] {
            let q = Point::new([(i % 24) as f64 + 0.4, (i / 24) as f64 + 0.1]);
            let (with_cursor, cs) = nn
                .query_refined_with(&mut cursor, &q, k, &MbrRefiner)
                .unwrap();
            let (one_shot, os) = nn.query_refined(&q, k, &MbrRefiner).unwrap();
            assert_eq!(
                with_cursor.iter().map(|n| n.record).collect::<Vec<_>>(),
                one_shot.iter().map(|n| n.record).collect::<Vec<_>>()
            );
            assert_eq!(cs, os, "cursor reuse changed the traversal stats");
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let tree = grid_tree(2, 4);
        let _ = NnSearch::new(&tree).query(&Point::new([0.0, 0.0]), 0);
    }

    #[test]
    fn kth_smallest_helper() {
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(kth_smallest(&mut v, 1), 1.0);
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(kth_smallest(&mut v, 2), 3.0);
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(kth_smallest(&mut v, 3), 5.0);
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(kth_smallest(&mut v, 4), f64::INFINITY);
        let mut v: [f64; 0] = [];
        assert_eq!(kth_smallest(&mut v, 1), f64::INFINITY);
    }
}
