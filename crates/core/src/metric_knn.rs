//! k-nearest-neighbor search under generalized Minkowski metrics.
//!
//! RKV'95 points out that its framework only requires a lower-bounding
//! point-to-rectangle distance, so the algorithm generalizes beyond L2.
//! `MINMAXDIST` (and with it strategies 1 and 2) is Euclidean-specific,
//! so the generalized search is a best-first traversal pruned by the
//! metric's `MINDIST` analogue alone — still exact, still reading only the
//! nodes whose bound beats the current k-th candidate.

use crate::heap::KnnHeap;
use crate::options::{Neighbor, SearchStats};
use crate::Result;
use nnq_geom::{Metric, Point};
use nnq_rtree::TreeAccess;
use nnq_storage::PageId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Finds the `k` records nearest to `q` under `metric`, treating each
/// record's MBR as the object. Distances in the result are **linear**
/// (metric units), carried in the `dist_sq` field squared for type
/// uniformity — use [`Neighbor::dist`] for the metric distance.
///
/// ```
/// use nnq_core::metric_knn;
/// use nnq_geom::{Metric, Point, Rect};
/// use nnq_rtree::{MemRTree, RecordId};
///
/// let mut tree = MemRTree::<2>::new();
/// tree.insert(&Rect::from_point(Point::new([3.0, 0.0])), RecordId(0)).unwrap();
/// tree.insert(&Rect::from_point(Point::new([2.0, 2.0])), RecordId(1)).unwrap();
/// // Under L1, (2,2) is at distance 4 and (3,0) at 3; under L∞ they swap.
/// let (l1, _) = metric_knn(&tree, &Point::new([0.0, 0.0]), 1, Metric::Manhattan).unwrap();
/// assert_eq!(l1[0].record, RecordId(0));
/// let (linf, _) = metric_knn(&tree, &Point::new([0.0, 0.0]), 1, Metric::Chebyshev).unwrap();
/// assert_eq!(linf[0].record, RecordId(1));
/// ```
pub fn metric_knn<const D: usize, T: TreeAccess<D> + ?Sized>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    metric: Metric,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    assert!(k > 0, "k must be at least 1");
    let mut heap = KnnHeap::new(k);
    let mut stats = SearchStats::default();
    let mut queue: BinaryHeap<Reverse<(Key, PageId)>> = BinaryHeap::new();
    if let Some(root) = tree.access_root() {
        queue.push(Reverse((Key(0.0), root)));
    }
    while let Some(Reverse((Key(dist), page))) = queue.pop() {
        if dist * dist >= heap.bound_sq() {
            break;
        }
        let node = tree.access_node(page)?;
        stats.nodes_visited += 1;
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for e in node.entries() {
                // The object is its MBR: the metric distance to the
                // nearest point of the box is exact for points/rects.
                let d = metric.rect_mindist(q, &e.mbr);
                stats.dist_computations += 1;
                heap.offer(e.record(), e.mbr, d * d);
            }
        } else {
            for e in node.entries() {
                let d = metric.rect_mindist(q, &e.mbr);
                if d * d < heap.bound_sq() {
                    queue.push(Reverse((Key(d), e.child())));
                }
            }
        }
    }
    Ok((heap.into_sorted(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Rect;
    use nnq_rtree::{MemRTree, RecordId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_setup(n: usize, seed: u64) -> (MemRTree<2>, Vec<Point<2>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = MemRTree::new();
        let mut pts = Vec::new();
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            tree.insert(&Rect::from_point(p), RecordId(i as u64))
                .unwrap();
            pts.push(p);
        }
        (tree, pts)
    }

    #[test]
    fn all_metrics_match_brute_force() {
        let (tree, pts) = random_setup(3_000, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            for _ in 0..20 {
                let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
                let (got, _) = metric_knn(&tree, &q, 8, metric).unwrap();
                let mut want: Vec<f64> = pts.iter().map(|p| metric.point_dist(&q, p)).collect();
                want.sort_by(f64::total_cmp);
                let gd: Vec<f64> = got.iter().map(Neighbor::dist).collect();
                for (g, w) in gd.iter().zip(&want[..8]) {
                    assert!((g - w).abs() < 1e-9, "{metric:?}: {gd:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn euclidean_metric_agrees_with_main_search() {
        let (tree, _) = random_setup(2_000, 7);
        let q = Point::new([40.0, 60.0]);
        let (a, _) = metric_knn(&tree, &q, 10, Metric::Euclidean).unwrap();
        let b = crate::NnSearch::new(&tree).query(&q, 10).unwrap();
        let da: Vec<f64> = a.iter().map(Neighbor::dist).collect();
        let db: Vec<f64> = b.iter().map(Neighbor::dist).collect();
        for (x, y) in da.iter().zip(&db) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_still_skips_most_nodes() {
        let (tree, _) = random_setup(30_000, 8);
        let total = tree.stats().unwrap().nodes;
        for metric in [Metric::Manhattan, Metric::Chebyshev] {
            let (_, stats) = metric_knn(&tree, &Point::new([50.0, 50.0]), 5, metric).unwrap();
            assert!(
                stats.nodes_visited * 10 < total,
                "{metric:?}: visited {} of {total}",
                stats.nodes_visited
            );
        }
    }

    #[test]
    fn empty_tree() {
        let tree = MemRTree::<2>::new();
        let (out, _) = metric_knn(&tree, &Point::new([0.0, 0.0]), 3, Metric::Manhattan).unwrap();
        assert!(out.is_empty());
    }
}
