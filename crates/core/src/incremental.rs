//! Incremental nearest-neighbor iteration ("distance browsing").
//!
//! **Not part of RKV'95** — a later-literature extension (Hjaltason &
//! Samet) included for experiment E8 and for applications that do not know
//! k in advance. A single priority queue mixes tree nodes and objects;
//! popping in globally nondecreasing distance order yields neighbors one
//! at a time, lazily reading only the nodes that are actually needed.

use crate::options::{KernelMode, Neighbor, NnOptions, SearchStats};
use crate::refine::Refiner;
use nnq_geom::{mindist_sq, mindist_sq_batch, Point, Rect};
use nnq_rtree::{RTree, RecordId, TreeAccess};
use nnq_storage::PageId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

enum Item<const D: usize> {
    Node(PageId),
    /// An object known only by its filter (MBR) distance.
    Filtered(RecordId, Rect<D>),
    /// An object with its exact distance computed.
    Exact(RecordId, Rect<D>),
}

struct Keyed<const D: usize> {
    dist: f64,
    /// Tie-break so exact objects pop before nodes/filtered items at the
    /// same distance (guarantees progress on zero-distance ties).
    rank: u8,
    item: Item<D>,
}

impl<const D: usize> PartialEq for Keyed<D> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.rank == other.rank
    }
}
impl<const D: usize> Eq for Keyed<D> {}
impl<const D: usize> PartialOrd for Keyed<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for Keyed<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.rank.cmp(&other.rank))
    }
}

/// An iterator yielding the objects of an R-tree in nondecreasing distance
/// from a query point.
///
/// ```
/// use nnq_core::{IncrementalNn, MbrRefiner};
/// use nnq_rtree::{RTree, RTreeConfig, RecordId};
/// use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
/// use nnq_geom::{Point, Rect};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 64));
/// let mut tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
/// for i in 0..10u64 {
///     tree.insert(&Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i)).unwrap();
/// }
/// let mut iter = IncrementalNn::new(&tree, Point::new([3.2, 0.0]), MbrRefiner);
/// let first = iter.next().unwrap().unwrap();
/// assert_eq!(first.record, RecordId(3));
/// // Keep pulling as long as you like; distances never decrease.
/// let second = iter.next().unwrap().unwrap();
/// assert_eq!(second.record, RecordId(4));
/// ```
pub struct IncrementalNn<'t, const D: usize, R, T: TreeAccess<D> + ?Sized = RTree<D>> {
    tree: &'t T,
    q: Point<D>,
    refiner: R,
    queue: BinaryHeap<Reverse<Keyed<D>>>,
    stats: SearchStats,
    kernel: KernelMode,
    /// Number of non-nearest children hinted to the store per internal-node
    /// expansion (0 = no prefetch). Advisory only; never changes results.
    prefetch_depth: usize,
    /// Scratch for the batched per-node `MINDIST` pass, reused across the
    /// whole iteration.
    mindists: Vec<f64>,
    /// Scratch for ordering prefetch hints by distance, reused across the
    /// whole iteration.
    hint_scratch: Vec<(f64, PageId)>,
}

impl<'t, const D: usize, R: Refiner<D>, T: TreeAccess<D> + ?Sized> IncrementalNn<'t, D, R, T> {
    /// Starts a distance-browsing iteration from `q`.
    pub fn new(tree: &'t T, q: Point<D>, refiner: R) -> Self {
        Self::with_kernel(tree, q, refiner, KernelMode::default())
    }

    /// [`IncrementalNn::new`] with an explicit distance-kernel mode. Both
    /// modes produce bit-identical neighbors and statistics.
    pub fn with_kernel(tree: &'t T, q: Point<D>, refiner: R, kernel: KernelMode) -> Self {
        Self::with_options(tree, q, refiner, NnOptions::with_kernel(kernel))
    }

    /// [`IncrementalNn::new`] honoring the kernel and prefetch fields of
    /// `opts` (the pruning toggles do not apply — distance browsing has no
    /// ABL). Neither knob ever changes the yielded neighbors or statistics;
    /// the prefetch policy is resolved once, at construction.
    pub fn with_options(tree: &'t T, q: Point<D>, refiner: R, opts: NnOptions) -> Self {
        let prefetch_depth = opts
            .prefetch
            .resolve_with_activity(tree.io_miss_rate(), tree.io_reads());
        let mut queue = BinaryHeap::new();
        if let Some(root) = tree.access_root() {
            queue.push(Reverse(Keyed {
                dist: 0.0,
                rank: 2,
                item: Item::Node(root),
            }));
        }
        Self {
            tree,
            q,
            refiner,
            queue,
            stats: SearchStats::default(),
            kernel: opts.kernel,
            prefetch_depth,
            mindists: Vec::new(),
            hint_scratch: Vec::new(),
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

impl<const D: usize, R: Refiner<D>, T: TreeAccess<D> + ?Sized> Iterator
    for IncrementalNn<'_, D, R, T>
{
    type Item = crate::Result<Neighbor<D>>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Reverse(Keyed { dist, item, .. })) = self.queue.pop() {
            match item {
                Item::Exact(record, mbr) => {
                    return Some(Ok(Neighbor {
                        record,
                        mbr,
                        dist_sq: dist,
                    }));
                }
                Item::Filtered(record, mbr) => {
                    let exact = self.refiner.dist_sq(record, &mbr, &self.q);
                    self.stats.dist_computations += 1;
                    self.queue.push(Reverse(Keyed {
                        dist: exact,
                        rank: 0,
                        item: Item::Exact(record, mbr),
                    }));
                }
                Item::Node(page) => {
                    let node = match self.tree.access_node(page) {
                        Ok(n) => n,
                        Err(e) => return Some(Err(e)),
                    };
                    self.stats.nodes_visited += 1;
                    let batch = self.kernel == KernelMode::Batch;
                    if batch {
                        mindist_sq_batch(&self.q, node.soa(), &mut self.mindists);
                    }
                    if node.is_leaf() {
                        self.stats.leaves_visited += 1;
                        for (j, e) in node.entries().iter().enumerate() {
                            self.queue.push(Reverse(Keyed {
                                dist: if batch {
                                    self.mindists[j]
                                } else {
                                    mindist_sq(&self.q, &e.mbr)
                                },
                                rank: 1,
                                item: Item::Filtered(e.record(), e.mbr),
                            }));
                        }
                    } else {
                        for (j, e) in node.entries().iter().enumerate() {
                            self.queue.push(Reverse(Keyed {
                                dist: if batch {
                                    self.mindists[j]
                                } else {
                                    mindist_sq(&self.q, &e.mbr)
                                },
                                rank: 2,
                                item: Item::Node(e.child()),
                            }));
                        }
                        // Queue-guided prefetch: hint this node's nearest
                        // children past the nearest one (the closest child is
                        // typically the very next node pop, fetched
                        // synchronously before a hint could help). Advisory
                        // only — never affects what `next` yields.
                        if self.prefetch_depth > 0 {
                            self.hint_scratch.clear();
                            self.hint_scratch
                                .extend(node.entries().iter().enumerate().map(|(j, e)| {
                                    let d = if batch {
                                        self.mindists[j]
                                    } else {
                                        mindist_sq(&self.q, &e.mbr)
                                    };
                                    (d, e.child())
                                }));
                            self.hint_scratch
                                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                            for &(_, child) in
                                self.hint_scratch.iter().skip(1).take(self.prefetch_depth)
                            {
                                self.tree.prefetch_node(child);
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use crate::NnSearch;
    use nnq_rtree::RTreeConfig;
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_tree(n: usize, seed: u64) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192));
        let tree = RTree::<2>::create(pool, RTreeConfig::for_testing(8)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..50.0), rng.random_range(0.0..50.0)]);
            tree.insert(&Rect::from_point(p), RecordId(i as u64))
                .unwrap();
        }
        tree
    }

    #[test]
    fn yields_all_objects_in_nondecreasing_order() {
        let tree = random_tree(500, 6);
        let q = Point::new([25.0, 25.0]);
        let all: Vec<Neighbor<2>> = IncrementalNn::new(&tree, q, MbrRefiner)
            .collect::<crate::Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 500);
        for w in all.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn prefix_equals_knn_query() {
        let tree = random_tree(800, 7);
        let nn = NnSearch::new(&tree);
        let q = Point::new([10.0, 40.0]);
        let knn = nn.query(&q, 12).unwrap();
        let inc: Vec<Neighbor<2>> = IncrementalNn::new(&tree, q, MbrRefiner)
            .take(12)
            .collect::<crate::Result<_>>()
            .unwrap();
        let a: Vec<f64> = knn.iter().map(|n| n.dist_sq).collect();
        let b: Vec<f64> = inc.iter().map(|n| n.dist_sq).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_iteration_reads_few_nodes() {
        let tree = random_tree(5000, 8);
        let total_nodes = tree.stats().unwrap().nodes;
        let mut iter = IncrementalNn::new(&tree, Point::new([25.0, 25.0]), MbrRefiner);
        let _first = iter.next().unwrap().unwrap();
        assert!(
            iter.stats().nodes_visited * 10 < total_nodes,
            "read {} of {} nodes for one neighbor",
            iter.stats().nodes_visited,
            total_nodes
        );
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 16));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        let mut iter = IncrementalNn::new(&tree, Point::new([0.0, 0.0]), MbrRefiner);
        assert!(iter.next().is_none());
    }
}
