//! Sequential-scan baselines.
//!
//! The motivating comparison of the paper (experiment E6): finding nearest
//! neighbors without an index means touching every object. Two variants
//! are provided — one that scans the tree's leaf level (paying the same
//! page accesses a real system would), and one over a caller-side slice
//! (the pure-CPU baseline).

use crate::heap::KnnHeap;
use crate::options::{Neighbor, SearchStats};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{Point, Rect};
use nnq_rtree::{RecordId, TreeAccess};

/// k nearest neighbors by scanning every data entry of the tree (reads
/// every node, like a full-table scan would).
pub fn linear_scan_knn<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    assert!(k > 0, "k must be at least 1");
    let mut heap = KnnHeap::new(k);
    let mut stats = SearchStats::default();
    let Some(root) = tree.access_root() else {
        return Ok((Vec::new(), stats));
    };
    let mut stack = vec![root];
    while let Some(page) = stack.pop() {
        let node = tree.access_node(page)?;
        stats.nodes_visited += 1;
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for e in node.entries() {
                let exact = refiner.dist_sq(e.record(), &e.mbr, q);
                stats.dist_computations += 1;
                heap.offer(e.record(), e.mbr, exact);
            }
        } else {
            for e in node.entries() {
                stack.push(e.child());
            }
        }
    }
    Ok((heap.into_sorted(), stats))
}

/// k nearest neighbors over an in-memory slice of `(mbr, record)` items —
/// the index-free ground truth used by tests.
pub fn scan_items_knn<const D: usize, R: Refiner<D>>(
    items: &[(Rect<D>, RecordId)],
    q: &Point<D>,
    k: usize,
    refiner: &R,
) -> Vec<Neighbor<D>> {
    assert!(k > 0, "k must be at least 1");
    let mut heap = KnnHeap::new(k);
    for (mbr, rid) in items {
        heap.offer(*rid, *mbr, refiner.dist_sq(*rid, mbr, q));
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use nnq_rtree::{RTree, RTreeConfig};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
    use std::sync::Arc;

    #[test]
    fn scan_matches_slice_ground_truth() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1024));
        let tree = RTree::<2>::create(pool, RTreeConfig::for_testing(8)).unwrap();
        let items: Vec<(Rect<2>, RecordId)> = (0..300u64)
            .map(|i| {
                let p = Point::new([(i % 17) as f64, (i % 23) as f64]);
                (Rect::from_point(p), RecordId(i))
            })
            .collect();
        for (r, id) in &items {
            tree.insert(r, *id).unwrap();
        }
        let q = Point::new([8.5, 11.5]);
        let (a, stats) = linear_scan_knn(&tree, &q, 5, &MbrRefiner).unwrap();
        let b = scan_items_knn(&items, &q, 5, &MbrRefiner);
        // Ties at the k-th distance may resolve to different records
        // depending on visit order; the distance multiset is what must
        // agree.
        let da: Vec<f64> = a.iter().map(|n| n.dist_sq).collect();
        let db: Vec<f64> = b.iter().map(|n| n.dist_sq).collect();
        assert_eq!(da, db);
        assert_eq!(stats.dist_computations, 300);
        // The scan reads the whole tree.
        assert_eq!(stats.nodes_visited, tree.stats().unwrap().nodes);
    }

    #[test]
    fn scan_of_empty_tree() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 16));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        let (out, _) = linear_scan_knn(&tree, &Point::new([0.0, 0.0]), 4, &MbrRefiner).unwrap();
        assert!(out.is_empty());
        assert!(scan_items_knn::<2, _>(&[], &Point::new([0.0, 0.0]), 4, &MbrRefiner).is_empty());
    }
}
