//! The bounded candidate buffer: the paper's "sorted buffer of k current
//! nearest neighbors", realized as a max-heap keyed by distance.

use crate::options::Neighbor;
use nnq_geom::Rect;
use nnq_rtree::RecordId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A max-heap entry ordered by squared distance (largest on top).
struct HeapItem<const D: usize>(Neighbor<D>);

impl<const D: usize> PartialEq for HeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.0.dist_sq == other.0.dist_sq
    }
}
impl<const D: usize> Eq for HeapItem<D> {}
impl<const D: usize> PartialOrd for HeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapItem<D> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.dist_sq.total_cmp(&other.0.dist_sq)
    }
}

/// A bounded max-heap holding the k nearest candidates seen so far.
///
/// [`KnnHeap::bound_sq`] — the squared distance of the k-th (worst)
/// candidate, or `+∞` until the heap is full — is the pruning distance the
/// branch-and-bound search compares `MINDIST` values against.
pub struct KnnHeap<const D: usize> {
    k: usize,
    heap: BinaryHeap<HeapItem<D>>,
}

impl<const D: usize> KnnHeap<D> {
    /// Creates a buffer for `k` candidates.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Clears the heap and re-arms it for a new query with the given `k`,
    /// keeping the existing storage allocation (the reusable-cursor path).
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be at least 1");
        self.k = k;
        self.heap.clear();
        if self.heap.capacity() < k + 1 {
            self.heap.reserve(k + 1 - self.heap.len());
        }
    }

    /// Number of candidates currently held (at most k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current pruning bound: squared distance of the k-th candidate,
    /// or `+∞` while fewer than k candidates are known.
    #[inline]
    pub fn bound_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |i| i.0.dist_sq)
        }
    }

    /// Offers a candidate; it is kept only if it improves the result set.
    /// Returns `true` if the candidate was accepted.
    pub fn offer(&mut self, record: RecordId, mbr: Rect<D>, dist_sq: f64) -> bool {
        if dist_sq >= self.bound_sq() {
            return false;
        }
        self.heap.push(HeapItem(Neighbor {
            record,
            mbr,
            dist_sq,
        }));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
        true
    }

    /// Consumes the heap, returning neighbors sorted by increasing
    /// distance (ties broken by record id for determinism).
    pub fn into_sorted(self) -> Vec<Neighbor<D>> {
        let mut v: Vec<Neighbor<D>> = self.heap.into_iter().map(|i| i.0).collect();
        sort_neighbors(&mut v);
        v
    }

    /// Drains the heap into a sorted result vector (same order as
    /// [`KnnHeap::into_sorted`]) while keeping the heap's storage for the
    /// next [`KnnHeap::reset`].
    pub fn drain_sorted(&mut self) -> Vec<Neighbor<D>> {
        let mut v: Vec<Neighbor<D>> = self.heap.drain().map(|i| i.0).collect();
        sort_neighbors(&mut v);
        v
    }
}

fn sort_neighbors<const D: usize>(v: &mut [Neighbor<D>]) {
    v.sort_by(|a, b| {
        a.dist_sq
            .total_cmp(&b.dist_sq)
            .then_with(|| a.record.cmp(&b.record))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Point;

    fn r(x: f64) -> Rect<2> {
        Rect::from_point(Point::new([x, 0.0]))
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut h = KnnHeap::<2>::new(3);
        assert_eq!(h.bound_sq(), f64::INFINITY);
        h.offer(RecordId(0), r(0.0), 5.0);
        h.offer(RecordId(1), r(1.0), 2.0);
        assert_eq!(h.bound_sq(), f64::INFINITY);
        h.offer(RecordId(2), r(2.0), 9.0);
        assert_eq!(h.bound_sq(), 9.0);
    }

    #[test]
    fn keeps_only_the_k_nearest() {
        let mut h = KnnHeap::<2>::new(2);
        for (i, d) in [7.0, 3.0, 5.0, 1.0, 9.0].into_iter().enumerate() {
            h.offer(RecordId(i as u64), r(d), d);
        }
        let out = h.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dist_sq, 1.0);
        assert_eq!(out[1].dist_sq, 3.0);
    }

    #[test]
    fn rejects_candidates_no_better_than_bound() {
        let mut h = KnnHeap::<2>::new(1);
        assert!(h.offer(RecordId(0), r(0.0), 4.0));
        assert!(!h.offer(RecordId(1), r(1.0), 4.0)); // ties do not replace
        assert!(!h.offer(RecordId(2), r(2.0), 6.0));
        assert!(h.offer(RecordId(3), r(3.0), 1.0));
        let out = h.into_sorted();
        assert_eq!(out[0].record, RecordId(3));
    }

    #[test]
    fn bound_shrinks_monotonically_once_full() {
        let mut h = KnnHeap::<2>::new(2);
        h.offer(RecordId(0), r(0.0), 10.0);
        h.offer(RecordId(1), r(1.0), 8.0);
        let mut prev = h.bound_sq();
        for (i, d) in [6.0, 7.0, 2.0, 3.0].into_iter().enumerate() {
            h.offer(RecordId(2 + i as u64), r(d), d);
            let now = h.bound_sq();
            assert!(now <= prev, "bound grew from {prev} to {now}");
            prev = now;
        }
        assert_eq!(prev, 3.0);
    }

    #[test]
    fn sorted_output_breaks_ties_by_record() {
        let mut h = KnnHeap::<2>::new(3);
        h.offer(RecordId(5), r(0.0), 1.0);
        h.offer(RecordId(2), r(0.0), 1.0);
        h.offer(RecordId(9), r(0.0), 0.5);
        let out = h.into_sorted();
        assert_eq!(
            out.iter().map(|n| n.record).collect::<Vec<_>>(),
            vec![RecordId(9), RecordId(2), RecordId(5)]
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        KnnHeap::<2>::new(0);
    }

    #[test]
    fn reset_and_drain_reuse_the_buffer_across_queries() {
        let mut h = KnnHeap::<2>::new(2);
        h.offer(RecordId(0), r(1.0), 1.0);
        h.offer(RecordId(1), r(2.0), 2.0);
        let first = h.drain_sorted();
        assert_eq!(first.len(), 2);
        assert!(h.is_empty());
        h.reset(1);
        assert_eq!(h.k(), 1);
        assert_eq!(h.bound_sq(), f64::INFINITY);
        h.offer(RecordId(7), r(3.0), 3.0);
        h.offer(RecordId(8), r(4.0), 4.0); // rejected: worse than the k=1 bound
        let second = h.drain_sorted();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].record, RecordId(7));
    }
}
