//! Best-first k-nearest-neighbor search (Hjaltason & Samet).
//!
//! **Not part of RKV'95** — included as the I/O-optimal comparator for
//! experiment E8. A single global priority queue holds tree nodes keyed by
//! `MINDIST`; nodes are expanded in globally nondecreasing distance order,
//! so no node whose `MINDIST` exceeds the final k-th neighbor distance is
//! ever read.

use crate::heap::KnnHeap;
use crate::options::{KernelMode, Neighbor, NnOptions, SearchStats};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{mindist_sq, mindist_sq_batch, Point};
use nnq_rtree::TreeAccess;
use nnq_storage::PageId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct QueueKey(f64);
impl Eq for QueueKey {}
impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Finds the `k` objects nearest to `q` with a global best-first traversal.
///
/// Returns the neighbors (sorted by increasing distance) and the usual work
/// counters; `abl_entries` and the pruning counters remain zero because the
/// algorithm has no ABL.
pub fn best_first_knn<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    best_first_knn_with(tree, q, k, refiner, KernelMode::default())
}

/// [`best_first_knn`] with an explicit distance-kernel mode. Both modes
/// produce bit-identical results and statistics.
pub fn best_first_knn_with<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
    kernel: KernelMode,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    best_first_knn_opts(tree, q, k, refiner, NnOptions::with_kernel(kernel))
}

/// [`best_first_knn`] honoring the kernel and prefetch fields of `opts`
/// (the pruning toggles do not apply — best-first has no ABL). The kernel
/// and prefetch knobs never change results or statistics.
pub fn best_first_knn_opts<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    k: usize,
    refiner: &R,
    opts: NnOptions,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    assert!(k > 0, "k must be at least 1");
    let batch = opts.kernel == KernelMode::Batch;
    let prefetch_depth = opts
        .prefetch
        .resolve_with_activity(tree.io_miss_rate(), tree.io_reads());
    let mut hint_scratch: Vec<(f64, PageId)> = Vec::new();
    let mut mindists: Vec<f64> = Vec::new();
    let mut heap = KnnHeap::new(k);
    let mut stats = SearchStats::default();
    let mut queue: BinaryHeap<Reverse<(QueueKey, PageId)>> = BinaryHeap::new();
    if let Some(root) = tree.access_root() {
        queue.push(Reverse((QueueKey(0.0), root)));
    }
    while let Some(Reverse((QueueKey(dist), page))) = queue.pop() {
        if dist >= heap.bound_sq() {
            break; // every remaining node is at least this far
        }
        let node = tree.access_node(page)?;
        stats.nodes_visited += 1;
        if batch {
            mindist_sq_batch(q, node.soa(), &mut mindists);
        }
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for (j, e) in node.entries().iter().enumerate() {
                let filter = if batch {
                    mindists[j]
                } else {
                    mindist_sq(q, &e.mbr)
                };
                if filter >= heap.bound_sq() {
                    continue;
                }
                let exact = refiner.dist_sq(e.record(), &e.mbr, q);
                stats.dist_computations += 1;
                heap.offer(e.record(), e.mbr, exact);
            }
        } else {
            for (j, e) in node.entries().iter().enumerate() {
                let d = if batch {
                    mindists[j]
                } else {
                    mindist_sq(q, &e.mbr)
                };
                if d < heap.bound_sq() {
                    queue.push(Reverse((QueueKey(d), e.child())));
                }
            }
            // Heap-guided prefetch: hint this node's nearest surviving
            // children past the nearest one (matching the ABL rule — the
            // single closest child is usually the very next pop, fetched
            // synchronously before a hint could help). Advisory only.
            if prefetch_depth > 0 {
                hint_scratch.clear();
                hint_scratch.extend(node.entries().iter().enumerate().filter_map(|(j, e)| {
                    let d = if batch {
                        mindists[j]
                    } else {
                        mindist_sq(q, &e.mbr)
                    };
                    (d < heap.bound_sq()).then_some((d, e.child()))
                }));
                hint_scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, child) in hint_scratch.iter().skip(1).take(prefetch_depth) {
                    tree.prefetch_node(child);
                }
            }
        }
    }
    Ok((heap.into_sorted(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use crate::NnSearch;
    use nnq_geom::Rect;
    use nnq_rtree::{RTree, RTreeConfig, RecordId};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_tree(n: usize, seed: u64) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192));
        let tree = RTree::<2>::create(pool, RTreeConfig::for_testing(8)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            tree.insert(&Rect::from_point(p), RecordId(i as u64))
                .unwrap();
        }
        tree
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        let tree = random_tree(2000, 3);
        let nn = NnSearch::new(&tree);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            for k in [1usize, 5, 17] {
                let a = nn.query(&q, k).unwrap();
                let (b, _) = best_first_knn(&tree, &q, k, &MbrRefiner).unwrap();
                let da: Vec<f64> = a.iter().map(|n| n.dist_sq).collect();
                let db: Vec<f64> = b.iter().map(|n| n.dist_sq).collect();
                assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn best_first_never_visits_more_nodes_than_dfs() {
        // I/O-optimality relative to the depth-first search (E8's claim).
        let tree = random_tree(4000, 9);
        let nn = NnSearch::new(&tree);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let q = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            let (_, dfs) = nn.query_with_stats(&q, 10).unwrap();
            let (_, bf) = best_first_knn(&tree, &q, 10, &MbrRefiner).unwrap();
            assert!(
                bf.nodes_visited <= dfs.nodes_visited,
                "best-first {} > DFS {}",
                bf.nodes_visited,
                dfs.nodes_visited
            );
        }
    }

    #[test]
    fn empty_tree() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 16));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        let (out, stats) = best_first_knn(&tree, &Point::new([0.0, 0.0]), 3, &MbrRefiner).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }
}
