//! kNN joins: for every point of an outer set, find its k nearest
//! neighbors in the indexed inner set.
//!
//! The paper's conclusion names spatial joins among the operations its
//! framework extends to. The join here is the per-outer-point form, with
//! one important systems twist reproduced from the buffered setting: when
//! the outer points are processed in **Hilbert order**, consecutive
//! queries land in the same region of the tree, so a small buffer pool
//! serves most node reads from cache (experiment E12 measures this).

use crate::branch_bound::{NnSearch, QueryCursor};
use crate::options::{Neighbor, NnOptions};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{hilbert_index, Point, Rect, HILBERT_ORDER};
use nnq_rtree::TreeAccess;

/// Processing order of the outer set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinOrder {
    /// Process outer points as given.
    #[default]
    AsGiven,
    /// Process outer points along a Hilbert curve (cache locality; result
    /// order is still the input order).
    Hilbert,
}

/// For each point in `outer`, finds its `k` nearest neighbors in `tree`.
/// Results are returned in `outer` order regardless of `order`.
pub fn knn_join<const D: usize, T, R>(
    tree: &T,
    outer: &[Point<D>],
    k: usize,
    opts: NnOptions,
    refiner: &R,
    order: JoinOrder,
) -> Result<Vec<Vec<Neighbor<D>>>>
where
    T: TreeAccess<D> + ?Sized,
    R: Refiner<D>,
{
    assert!(k > 0, "k must be at least 1");
    let search = NnSearch::with_options(tree, opts);
    let mut cursor = QueryCursor::new();
    let mut results: Vec<Vec<Neighbor<D>>> = vec![Vec::new(); outer.len()];
    let schedule: Vec<usize> = match order {
        JoinOrder::AsGiven => (0..outer.len()).collect(),
        JoinOrder::Hilbert => hilbert_schedule(outer),
    };
    for idx in schedule {
        let (found, _) = search.query_refined_with(&mut cursor, &outer[idx], k, refiner)?;
        results[idx] = found;
    }
    Ok(results)
}

/// Indices of `outer` sorted along a Hilbert curve over the points'
/// bounding box (first two dimensions).
pub fn hilbert_schedule<const D: usize>(outer: &[Point<D>]) -> Vec<usize> {
    let mut bounds = Rect::<D>::empty();
    for p in outer {
        bounds.union_in_place(&Rect::from_point(*p));
    }
    let side = f64::from(1u32 << HILBERT_ORDER) - 1.0;
    let scale = |v: f64, lo: f64, hi: f64| -> u32 {
        if hi <= lo {
            0
        } else {
            (((v - lo) / (hi - lo)) * side).round() as u32
        }
    };
    let mut keyed: Vec<(u64, usize)> = outer
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let x = scale(p[0], bounds.lo()[0], bounds.hi()[0]);
            let y = scale(
                p[1.min(D - 1)],
                bounds.lo()[1.min(D - 1)],
                bounds.hi()[1.min(D - 1)],
            );
            (hilbert_index(x, y, HILBERT_ORDER), i)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use crate::scan_items_knn;
    use nnq_rtree::{MemRTree, RecordId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, seed: u64) -> (MemRTree<2>, Vec<(Rect<2>, RecordId)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = MemRTree::new();
        let mut items = Vec::new();
        for i in 0..n {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            let r = Rect::from_point(p);
            tree.insert(&r, RecordId(i as u64)).unwrap();
            items.push((r, RecordId(i as u64)));
        }
        (tree, items)
    }

    #[test]
    fn join_matches_per_query_brute_force() {
        let (tree, items) = setup(2_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let outer: Vec<Point<2>> = (0..100)
            .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        for order in [JoinOrder::AsGiven, JoinOrder::Hilbert] {
            let joined =
                knn_join(&tree, &outer, 4, NnOptions::default(), &MbrRefiner, order).unwrap();
            assert_eq!(joined.len(), outer.len());
            for (q, found) in outer.iter().zip(&joined) {
                let want = scan_items_knn(&items, q, 4, &MbrRefiner);
                assert_eq!(
                    found.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    want.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                    "{order:?}"
                );
            }
        }
    }

    #[test]
    fn hilbert_schedule_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point<2>> = (0..500)
            .map(|_| Point::new([rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)]))
            .collect();
        let mut schedule = hilbert_schedule(&pts);
        schedule.sort_unstable();
        assert_eq!(schedule, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn hilbert_schedule_improves_locality() {
        // Consecutive scheduled points should be much closer on average
        // than consecutive random-order points.
        let mut rng = StdRng::seed_from_u64(6);
        let pts: Vec<Point<2>> = (0..2_000)
            .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        let avg_step = |order: &[usize]| -> f64 {
            order
                .windows(2)
                .map(|w| pts[w[0]].dist(&pts[w[1]]))
                .sum::<f64>()
                / (order.len() - 1) as f64
        };
        let given: Vec<usize> = (0..pts.len()).collect();
        let hilbert = hilbert_schedule(&pts);
        assert!(
            avg_step(&hilbert) * 5.0 < avg_step(&given),
            "hilbert {:.2} vs given {:.2}",
            avg_step(&hilbert),
            avg_step(&given)
        );
    }

    #[test]
    fn empty_outer_set() {
        let (tree, _) = setup(100, 7);
        let joined = knn_join(
            &tree,
            &[],
            3,
            NnOptions::default(),
            &MbrRefiner,
            JoinOrder::Hilbert,
        )
        .unwrap();
        assert!(joined.is_empty());
    }

    #[test]
    fn degenerate_outer_all_same_point() {
        let (tree, _) = setup(100, 8);
        let outer = vec![Point::new([5.0, 5.0]); 10];
        let joined = knn_join(
            &tree,
            &outer,
            2,
            NnOptions::default(),
            &MbrRefiner,
            JoinOrder::Hilbert,
        )
        .unwrap();
        assert!(joined.iter().all(|r| r.len() == 2));
        let first = &joined[0];
        for r in &joined {
            assert_eq!(
                r.iter().map(|n| n.dist_sq).collect::<Vec<_>>(),
                first.iter().map(|n| n.dist_sq).collect::<Vec<_>>()
            );
        }
    }
}
