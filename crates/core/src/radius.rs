//! Distance-range ("within radius") queries.
//!
//! A natural companion of kNN search on the same metric machinery: report
//! every object within a given distance of the query point. The traversal
//! descends only into subtrees whose `MINDIST` is within the radius — the
//! same optimistic bound the kNN search prunes with, used here as an
//! absolute cutoff.

use crate::options::{KernelMode, Neighbor, SearchStats};
use crate::refine::Refiner;
use crate::Result;
use nnq_geom::{mindist_sq, mindist_sq_batch, Point};
use nnq_rtree::TreeAccess;

/// Returns every object whose exact distance from `q` is at most `radius`
/// (linear units, not squared), sorted by increasing distance, along with
/// the traversal counters.
pub fn within_radius<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    radius: f64,
    refiner: &R,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    within_radius_with(tree, q, radius, refiner, KernelMode::default())
}

/// [`within_radius`] with an explicit distance-kernel mode. Both modes
/// produce bit-identical results and statistics.
pub fn within_radius_with<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    radius: f64,
    refiner: &R,
    kernel: KernelMode,
) -> Result<(Vec<Neighbor<D>>, SearchStats)> {
    assert!(radius >= 0.0, "radius must be nonnegative");
    let radius_sq = radius * radius;
    let batch = kernel == KernelMode::Batch;
    let mut mindists: Vec<f64> = Vec::new();
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    let Some(root) = tree.access_root() else {
        return Ok((out, stats));
    };
    let mut stack = vec![root];
    while let Some(page) = stack.pop() {
        let node = tree.access_node(page)?;
        stats.nodes_visited += 1;
        if batch {
            mindist_sq_batch(q, node.soa(), &mut mindists);
        }
        if node.is_leaf() {
            stats.leaves_visited += 1;
            for (j, e) in node.entries().iter().enumerate() {
                let filter = if batch {
                    mindists[j]
                } else {
                    mindist_sq(q, &e.mbr)
                };
                if filter > radius_sq {
                    stats.pruned_upward += 1;
                    continue;
                }
                let exact = refiner.dist_sq(e.record(), &e.mbr, q);
                stats.dist_computations += 1;
                if exact <= radius_sq {
                    out.push(Neighbor {
                        record: e.record(),
                        mbr: e.mbr,
                        dist_sq: exact,
                    });
                }
            }
        } else {
            for (j, e) in node.entries().iter().enumerate() {
                let d = if batch {
                    mindists[j]
                } else {
                    mindist_sq(q, &e.mbr)
                };
                if d <= radius_sq {
                    stack.push(e.child());
                } else {
                    stats.pruned_upward += 1;
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.dist_sq
            .total_cmp(&b.dist_sq)
            .then_with(|| a.record.cmp(&b.record))
    });
    Ok((out, stats))
}

/// Counts the objects within `radius` of `q` without materializing them.
pub fn count_within_radius<const D: usize, T: TreeAccess<D> + ?Sized, R: Refiner<D>>(
    tree: &T,
    q: &Point<D>,
    radius: f64,
    refiner: &R,
) -> Result<u64> {
    let (hits, _) = within_radius(tree, q, radius, refiner)?;
    Ok(hits.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::MbrRefiner;
    use nnq_geom::Rect;
    use nnq_rtree::{RTree, RTreeConfig, RecordId};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
    use std::sync::Arc;

    fn grid_tree(n_side: u64) -> RTree<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 4096));
        let tree = RTree::<2>::create(pool, RTreeConfig::for_testing(6)).unwrap();
        for x in 0..n_side {
            for y in 0..n_side {
                let p = Point::new([x as f64, y as f64]);
                tree.insert(&Rect::from_point(p), RecordId(x * n_side + y))
                    .unwrap();
            }
        }
        tree
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let tree = grid_tree(20);
        let q = Point::new([7.3, 11.8]);
        for radius in [0.0, 0.5, 1.7, 3.0, 50.0] {
            let (got, _) = within_radius(&tree, &q, radius, &MbrRefiner).unwrap();
            let want: usize = (0..20)
                .flat_map(|x| (0..20).map(move |y| (x, y)))
                .filter(|&(x, y)| {
                    let dx = x as f64 - q[0];
                    let dy = y as f64 - q[1];
                    (dx * dx + dy * dy).sqrt() <= radius
                })
                .count();
            assert_eq!(got.len(), want, "radius {radius}");
            // Sorted, and every hit within the radius.
            for w in got.windows(2) {
                assert!(w[0].dist_sq <= w[1].dist_sq);
            }
            for n in &got {
                assert!(n.dist_sq.sqrt() <= radius + 1e-12);
            }
        }
    }

    #[test]
    fn radius_pruning_skips_far_subtrees() {
        let tree = grid_tree(30);
        let total = tree.stats().unwrap().nodes;
        let (_, stats) = within_radius(&tree, &Point::new([2.0, 2.0]), 2.0, &MbrRefiner).unwrap();
        assert!(
            stats.nodes_visited * 3 < total,
            "visited {} of {total}",
            stats.nodes_visited
        );
    }

    #[test]
    fn zero_radius_finds_exact_matches_only() {
        let tree = grid_tree(5);
        let (got, _) = within_radius(&tree, &Point::new([2.0, 3.0]), 0.0, &MbrRefiner).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dist_sq, 0.0);
        let (got, _) = within_radius(&tree, &Point::new([2.5, 3.0]), 0.0, &MbrRefiner).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn count_matches_materialized_query() {
        let tree = grid_tree(15);
        let q = Point::new([7.0, 7.0]);
        let (hits, _) = within_radius(&tree, &q, 4.0, &MbrRefiner).unwrap();
        assert_eq!(
            count_within_radius(&tree, &q, 4.0, &MbrRefiner).unwrap(),
            hits.len() as u64
        );
    }

    #[test]
    fn empty_tree_yields_empty() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 16));
        let tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
        let (got, stats) =
            within_radius(&tree, &Point::new([0.0, 0.0]), 100.0, &MbrRefiner).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_radius_panics() {
        let tree = grid_tree(2);
        let _ = within_radius(&tree, &Point::new([0.0, 0.0]), -1.0, &MbrRefiner);
    }
}
