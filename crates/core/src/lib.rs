//! Nearest-neighbor queries over R-trees — the primary contribution of
//! Roussopoulos, Kelley, and Vincent, *Nearest Neighbor Queries*,
//! SIGMOD 1995.
//!
//! The paper introduces a **branch-and-bound, ordered depth-first**
//! traversal of an R-tree that finds the k objects nearest to a query
//! point while visiting only a small fraction of the index:
//!
//! 1. At each visited internal node, the child entries form an **Active
//!    Branch List (ABL)**, sorted by either `MINDIST` (optimistic) or
//!    `MINMAXDIST` (pessimistic) — the paper's central experimental
//!    comparison, reproduced by experiment E2.
//! 2. Three **pruning strategies** discard branches that cannot contain a
//!    better neighbor (all three individually togglable here, for the E3
//!    ablation):
//!    * *downward pruning* (S1): an entry whose `MINDIST` exceeds the k-th
//!      smallest `MINMAXDIST` bound seen so far cannot contribute;
//!    * *object pruning* (S2): an object farther than some `MINMAXDIST`
//!      bound cannot be among the k nearest;
//!    * *upward pruning* (S3): an entry whose `MINDIST` is no less than the
//!      distance to the current k-th candidate cannot improve the result.
//! 3. The k candidates live in a bounded max-heap ([`KnnHeap`]), exactly
//!    the paper's "sorted buffer of k current nearest neighbors".
//!
//! The crate also implements the comparison algorithms used by the
//! benchmark suite — these are *not* part of RKV'95 and are labeled as
//! such:
//!
//! * [`linear_scan_knn`] — the sequential-scan baseline;
//! * [`best_first_knn`] — the global-priority-queue algorithm of
//!   Hjaltason & Samet, which is I/O-optimal and serves as the lower
//!   bound in experiment E8;
//! * [`IncrementalNn`] — distance browsing: an iterator yielding neighbors
//!   in nondecreasing distance order.
//!
//! Objects may be points, rectangles, or anything with a rectangular
//! filter bound: exact distances are supplied by a [`Refiner`]
//! (filter-refine, as the paper does for map segments).
//!
//! # Example
//!
//! ```
//! use nnq_core::NnSearch;
//! use nnq_rtree::{RTree, RTreeConfig, RecordId};
//! use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
//! use nnq_geom::{Point, Rect};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 256));
//! let mut tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
//! for i in 0..100u64 {
//!     tree.insert(&Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i)).unwrap();
//! }
//! let nn = NnSearch::new(&tree);
//! let found = nn.query(&Point::new([42.3, 0.0]), 3).unwrap();
//! assert_eq!(found[0].record, RecordId(42));
//! assert_eq!(found[1].record, RecordId(43));
//! assert_eq!(found[2].record, RecordId(41));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod best_first;
mod branch_bound;
mod explain;
mod farthest;
mod heap;
mod incremental;
mod join;
mod metric_knn;
mod options;
mod parallel;
mod radius;
mod refine;
mod scan;
mod scatter;
mod spatial_join;
mod tune;

pub use best_first::{best_first_knn, best_first_knn_opts, best_first_knn_with};
pub use branch_bound::{NnSearch, QueryCursor};
pub use explain::{Decision, Trace, TraceEvent};
pub use farthest::{farthest_knn, farthest_knn_with};
pub use heap::KnnHeap;
pub use incremental::IncrementalNn;
pub use join::{hilbert_schedule, knn_join, JoinOrder};
pub use metric_knn::metric_knn;
pub use options::{
    AblOrdering, KernelMode, Neighbor, NnOptions, PrefetchPolicy, SearchStats, TuneMode,
};
pub use parallel::{
    par_knn_batch, par_knn_batch_ordered, par_knn_batch_stats, par_knn_batch_with_block,
    par_mixed_batch, BatchQuery, BatchStats,
};
pub use radius::{count_within_radius, within_radius, within_radius_with};
pub use refine::{FnRefiner, MbrRefiner, Refiner};
pub use scan::{linear_scan_knn, scan_items_knn};
pub use scatter::{
    partitioned_knn, partitioned_knn_batch, partitioned_knn_batch_with_block, partitioned_radius,
    scatter_knn, scatter_radius, PartitionedStats, SharedBound,
};
pub use spatial_join::{intersection_join, intersection_join_with, JoinStats};
pub use tune::{KnobSettings, TuneBounds, TuneController};

/// Result alias shared with the index layer.
pub type Result<T> = nnq_rtree::Result<T>;

/// Error alias shared with the index layer.
pub type Error = nnq_rtree::RTreeError;
