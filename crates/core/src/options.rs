//! Query options, results, and per-query statistics.

use nnq_geom::Rect;
use nnq_rtree::RecordId;

/// How the Active Branch List is ordered before descending — the paper's
/// central experimental knob (experiment E2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AblOrdering {
    /// Sort child entries by `MINDIST` (optimistic). The paper found this
    /// ordering superior on average, and it is the default.
    #[default]
    MinDist,
    /// Sort child entries by `MINMAXDIST` (pessimistic).
    MinMaxDist,
}

/// Which distance-kernel implementation the traversals use for the
/// per-entry `MINDIST`/`MINMAXDIST`/`MAXDIST` evaluations.
///
/// The two modes are **bit-identical** per entry (the batch kernels run
/// the same operation sequence over a struct-of-arrays node view — see
/// `nnq_geom::SoaRects`), so traversal order, tie-breaks, results, and
/// every [`SearchStats`] / page-access counter match exactly; only the
/// CPU time differs. The escape hatch exists for A/B measurement and as a
/// reference oracle in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Per-entry scalar metric calls over the entry array — the reference
    /// implementation.
    Scalar,
    /// One batched, auto-vectorizable kernel pass per node over the
    /// decoded node's cached SoA view. The default.
    #[default]
    Batch,
}

impl KernelMode {
    /// Lower-case label for CLI/bench output.
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Batch => "batch",
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelMode::Scalar),
            "batch" => Ok(KernelMode::Batch),
            other => Err(format!(
                "unknown kernel mode `{other}` (want scalar or batch)"
            )),
        }
    }
}

/// How aggressively the traversals hint upcoming node reads to the
/// storage backend's asynchronous prefetcher.
///
/// The Active Branch List is a ready-made prefetch oracle: after sorting,
/// its MINDIST-ordered entries are — by the paper's own Theorem-2 argument
/// — the pages most likely visited next. Under `Depth(n)`, each traversal
/// issues hints for the `n` entries *past the head* of its local ordering
/// (the head itself is fetched synchronously right after, so hinting it
/// buys nothing).
///
/// Hints are advisory: a policy **never** changes results, traversal
/// order, [`SearchStats`], or the pool's `logical_reads` — only wall-clock
/// time under real or injected I/O latency. Prefetch activity is accounted
/// separately (`nnq_storage::PrefetchStats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrefetchPolicy {
    /// Issue no hints. The default.
    #[default]
    Off,
    /// Hint the next `n` entries past the head of the ABL / child ordering
    /// at every internal node (`Depth(0)` behaves like `Off`).
    Depth(usize),
    /// Pick a depth per query from the backend's observed cache miss rate:
    /// off while the cache is absorbing nearly everything, depth 2 under
    /// moderate miss rates, depth 8 when mostly cold.
    Adaptive,
}

impl PrefetchPolicy {
    /// Hint depth `Adaptive` uses while the backend is still untouched.
    ///
    /// The miss-rate signal has a blind spot at cold start: by the
    /// zero-reads convention (`nnq_storage::PoolStats::miss_rate`), an
    /// untouched pool reports a miss rate of `0.0` — the same value a
    /// perfectly warm pool reports — so a naive `resolve` picks depth 0
    /// for the very first queries, exactly when every access is a device
    /// read and prefetch helps most. [`PrefetchPolicy::resolve_with_activity`]
    /// floors the depth at this value until the first logical read lands.
    pub const COLD_START_DEPTH: usize = 2;

    /// Resolves the policy to a concrete hint depth for one query, given
    /// the backend's current miss rate (`TreeAccess::io_miss_rate`).
    ///
    /// `Adaptive` cannot distinguish a cold backend from a warm one here
    /// (both report miss rate `0.0`); traversals use
    /// [`PrefetchPolicy::resolve_with_activity`], which also sees the
    /// read counter.
    pub fn resolve(self, miss_rate: f64) -> usize {
        match self {
            PrefetchPolicy::Off => 0,
            PrefetchPolicy::Depth(n) => n,
            PrefetchPolicy::Adaptive => {
                if miss_rate >= 0.5 {
                    8
                } else if miss_rate >= 0.05 {
                    2
                } else {
                    0
                }
            }
        }
    }

    /// Like [`PrefetchPolicy::resolve`], but with the backend's lifetime
    /// logical-read counter (`TreeAccess::io_reads`) to disambiguate the
    /// zero-reads convention: an `Adaptive` policy over an untouched
    /// backend (`logical_reads == 0`) floors the depth at
    /// [`PrefetchPolicy::COLD_START_DEPTH`] instead of resolving to 0.
    /// `Off` and `Depth` are unaffected.
    pub fn resolve_with_activity(self, miss_rate: f64, logical_reads: u64) -> usize {
        if matches!(self, PrefetchPolicy::Adaptive) && logical_reads == 0 {
            return Self::COLD_START_DEPTH;
        }
        self.resolve(miss_rate)
    }

    /// Lower-case label for CLI/bench output (`off`, `adaptive`, or the
    /// depth as a number).
    pub fn label(self) -> String {
        match self {
            PrefetchPolicy::Off => "off".to_string(),
            PrefetchPolicy::Depth(n) => n.to_string(),
            PrefetchPolicy::Adaptive => "adaptive".to_string(),
        }
    }
}

impl std::fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for PrefetchPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(PrefetchPolicy::Off),
            "adaptive" => Ok(PrefetchPolicy::Adaptive),
            other => match other.parse::<usize>() {
                Ok(0) => Ok(PrefetchPolicy::Off),
                Ok(n) => Ok(PrefetchPolicy::Depth(n)),
                Err(_) => Err(format!(
                    "unknown prefetch policy `{other}` (want off, adaptive, or a depth)"
                )),
            },
        }
    }
}

/// Whether the online self-tuning controller ([`crate::tune`]) retunes the
/// backend's runtime knobs between query batches.
///
/// Like every other knob in [`NnOptions`], tuning is strictly
/// accounting-neutral: the controller only touches knobs proven not to
/// affect `logical_reads` or [`SearchStats`] (prefetch depth/workers,
/// decoded-node cache capacity, batch block size, per-partition cache
/// budget), so results and the paper's page-access figures are
/// bit-identical with tuning on, off, or mid-adjustment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TuneMode {
    /// Knobs stay wherever they were set by hand. The default.
    #[default]
    Off,
    /// The controller samples backend counters at batch granularity and
    /// retunes the knobs.
    Adaptive,
}

impl TuneMode {
    /// Lower-case label for CLI/bench output.
    pub fn label(self) -> &'static str {
        match self {
            TuneMode::Off => "off",
            TuneMode::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for TuneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for TuneMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TuneMode::Off),
            "adaptive" => Ok(TuneMode::Adaptive),
            other => Err(format!(
                "unknown tune mode `{other}` (want off or adaptive)"
            )),
        }
    }
}

/// Options controlling the branch-and-bound search.
///
/// The defaults enable everything, matching the paper's full algorithm;
/// individual pruning strategies can be disabled for ablation studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NnOptions {
    /// Active-branch-list ordering.
    pub ordering: AblOrdering,
    /// Strategy 1 — downward pruning: discard ABL entries whose `MINDIST`
    /// exceeds the k-th smallest `MINMAXDIST` bound discovered so far.
    pub prune_downward: bool,
    /// Strategy 2 — object pruning: skip exact distance computations (and
    /// candidate insertion) for objects whose filter distance exceeds the
    /// `MINMAXDIST` bound.
    pub prune_object: bool,
    /// Strategy 3 — upward pruning: discard ABL entries whose `MINDIST` is
    /// at least the distance to the current k-th nearest candidate.
    pub prune_upward: bool,
    /// Approximation slack ε ≥ 0 (extension; libspatialindex-style
    /// (1+ε)-approximate kNN). Branches are pruned as if they were a
    /// factor (1+ε) closer, so every reported distance is at most (1+ε)
    /// times the true k-th nearest distance. `0.0` (the default) is the
    /// exact algorithm.
    pub epsilon: f64,
    /// Distance-kernel implementation (scalar reference vs batched SoA);
    /// never changes results, only speed.
    pub kernel: KernelMode,
    /// Prefetch-hint policy (see [`PrefetchPolicy`]); never changes
    /// results or page-access accounting, only wall-clock under latency.
    pub prefetch: PrefetchPolicy,
    /// Online self-tuning of backend knobs between batches (see
    /// [`TuneMode`]); never changes results or page-access accounting.
    pub tune: TuneMode,
}

impl Default for NnOptions {
    fn default() -> Self {
        Self {
            ordering: AblOrdering::MinDist,
            prune_downward: true,
            prune_object: true,
            prune_upward: true,
            epsilon: 0.0,
            kernel: KernelMode::default(),
            prefetch: PrefetchPolicy::default(),
            tune: TuneMode::default(),
        }
    }
}

impl NnOptions {
    /// The paper's full algorithm with the given ordering.
    pub fn with_ordering(ordering: AblOrdering) -> Self {
        Self {
            ordering,
            ..Self::default()
        }
    }

    /// All pruning disabled — exhaustive traversal, the ablation baseline.
    pub fn no_pruning() -> Self {
        Self {
            prune_downward: false,
            prune_object: false,
            prune_upward: false,
            ..Self::default()
        }
    }

    /// The paper's full algorithm with an explicit kernel mode.
    pub fn with_kernel(kernel: KernelMode) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// The paper's full algorithm with an explicit prefetch policy.
    pub fn with_prefetch(prefetch: PrefetchPolicy) -> Self {
        Self {
            prefetch,
            ..Self::default()
        }
    }

    /// The paper's full algorithm with an explicit tune mode.
    pub fn with_tune(tune: TuneMode) -> Self {
        Self {
            tune,
            ..Self::default()
        }
    }

    /// The exact algorithm relaxed to (1+ε)-approximate answers.
    ///
    /// # Panics
    /// Panics if `epsilon` is negative or not finite.
    pub fn approximate(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and nonnegative"
        );
        Self {
            epsilon,
            ..Self::default()
        }
    }
}

/// One result of a nearest-neighbor query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<const D: usize> {
    /// The record found.
    pub record: RecordId,
    /// Its indexed bounding rectangle.
    pub mbr: Rect<D>,
    /// Its exact squared distance from the query point.
    pub dist_sq: f64,
}

impl<const D: usize> Neighbor<D> {
    /// The linear (square-rooted) distance.
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Work counters for a single query.
///
/// `nodes_visited` (and the page counters kept by the buffer pool) are the
/// paper's cost unit; the pruning counters feed the E3 ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes read (internal + leaf).
    pub nodes_visited: u64,
    /// Leaf nodes read.
    pub leaves_visited: u64,
    /// ABL entries generated across all visited internal nodes.
    pub abl_entries: u64,
    /// Entries discarded by downward pruning (strategy 1).
    pub pruned_downward: u64,
    /// Objects skipped by object pruning (strategy 2).
    pub pruned_object: u64,
    /// Entries discarded by upward pruning (strategy 3), whether before
    /// the first descent or when control returned.
    pub pruned_upward: u64,
    /// Exact object distance computations performed.
    pub dist_computations: u64,
}

impl SearchStats {
    /// Total entries discarded by any strategy.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_downward + self.pruned_object + self.pruned_upward
    }

    /// Adds `other` counter-wise — how per-partition traversal stats sum
    /// to one dataset-wide figure in the scatter-gather search.
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.abl_entries += other.abl_entries;
        self.pruned_downward += other.pruned_downward;
        self.pruned_object += other.pruned_object;
        self.pruned_upward += other.pruned_upward;
        self.dist_computations += other.dist_computations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Point;

    #[test]
    fn defaults_enable_full_algorithm() {
        let o = NnOptions::default();
        assert_eq!(o.ordering, AblOrdering::MinDist);
        assert!(o.prune_downward && o.prune_object && o.prune_upward);
    }

    #[test]
    fn no_pruning_disables_all() {
        let o = NnOptions::no_pruning();
        assert!(!o.prune_downward && !o.prune_object && !o.prune_upward);
    }

    #[test]
    fn kernel_mode_parses_and_prints() {
        assert_eq!("scalar".parse::<KernelMode>().unwrap(), KernelMode::Scalar);
        assert_eq!("batch".parse::<KernelMode>().unwrap(), KernelMode::Batch);
        assert!("simd".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::Batch.to_string(), "batch");
        assert_eq!(NnOptions::default().kernel, KernelMode::Batch);
        assert_eq!(
            NnOptions::with_kernel(KernelMode::Scalar).kernel,
            KernelMode::Scalar
        );
    }

    #[test]
    fn prefetch_policy_parses_and_prints() {
        assert_eq!(
            "off".parse::<PrefetchPolicy>().unwrap(),
            PrefetchPolicy::Off
        );
        assert_eq!(
            "adaptive".parse::<PrefetchPolicy>().unwrap(),
            PrefetchPolicy::Adaptive
        );
        assert_eq!(
            "8".parse::<PrefetchPolicy>().unwrap(),
            PrefetchPolicy::Depth(8)
        );
        // Depth 0 normalizes to Off.
        assert_eq!("0".parse::<PrefetchPolicy>().unwrap(), PrefetchPolicy::Off);
        assert!("-2".parse::<PrefetchPolicy>().is_err());
        assert!("always".parse::<PrefetchPolicy>().is_err());
        assert_eq!(PrefetchPolicy::Off.to_string(), "off");
        assert_eq!(PrefetchPolicy::Depth(4).to_string(), "4");
        assert_eq!(PrefetchPolicy::Adaptive.to_string(), "adaptive");
        assert_eq!(NnOptions::default().prefetch, PrefetchPolicy::Off);
        assert_eq!(
            NnOptions::with_prefetch(PrefetchPolicy::Adaptive).prefetch,
            PrefetchPolicy::Adaptive
        );
    }

    #[test]
    fn prefetch_policy_resolution() {
        assert_eq!(PrefetchPolicy::Off.resolve(1.0), 0);
        assert_eq!(PrefetchPolicy::Depth(5).resolve(0.0), 5);
        assert_eq!(PrefetchPolicy::Adaptive.resolve(0.0), 0);
        assert_eq!(PrefetchPolicy::Adaptive.resolve(0.2), 2);
        assert_eq!(PrefetchPolicy::Adaptive.resolve(0.9), 8);
    }

    #[test]
    fn adaptive_prefetch_cold_start_floor() {
        // Regression: an untouched pool reports miss rate 0.0 (zero-reads
        // convention), which used to resolve Adaptive to depth 0 on the
        // very first — coldest — queries. With the activity counter the
        // policy floors at COLD_START_DEPTH until the first read lands.
        assert_eq!(
            PrefetchPolicy::Adaptive.resolve_with_activity(0.0, 0),
            PrefetchPolicy::COLD_START_DEPTH
        );
        // After any activity the miss-rate ladder is authoritative again:
        // a genuinely warm backend drops to 0...
        assert_eq!(
            PrefetchPolicy::Adaptive.resolve_with_activity(0.0, 10_000),
            0
        );
        // ...and a missing one keeps its ladder depths.
        assert_eq!(PrefetchPolicy::Adaptive.resolve_with_activity(0.2, 1), 2);
        assert_eq!(PrefetchPolicy::Adaptive.resolve_with_activity(0.9, 1), 8);
        // Off and explicit depths are never floored.
        assert_eq!(PrefetchPolicy::Off.resolve_with_activity(0.0, 0), 0);
        assert_eq!(PrefetchPolicy::Depth(5).resolve_with_activity(0.0, 0), 5);
    }

    #[test]
    fn tune_mode_parses_and_prints() {
        assert_eq!("off".parse::<TuneMode>().unwrap(), TuneMode::Off);
        assert_eq!("adaptive".parse::<TuneMode>().unwrap(), TuneMode::Adaptive);
        assert!("auto".parse::<TuneMode>().is_err());
        assert_eq!(TuneMode::Adaptive.to_string(), "adaptive");
        assert_eq!(NnOptions::default().tune, TuneMode::Off);
        assert_eq!(
            NnOptions::with_tune(TuneMode::Adaptive).tune,
            TuneMode::Adaptive
        );
    }

    #[test]
    fn neighbor_distance_is_sqrt() {
        let n = Neighbor::<2> {
            record: RecordId(1),
            mbr: Rect::from_point(Point::new([0.0, 0.0])),
            dist_sq: 9.0,
        };
        assert_eq!(n.dist(), 3.0);
    }

    #[test]
    fn pruned_total_sums_strategies() {
        let s = SearchStats {
            pruned_downward: 2,
            pruned_object: 3,
            pruned_upward: 5,
            ..SearchStats::default()
        };
        assert_eq!(s.pruned_total(), 10);
    }
}
