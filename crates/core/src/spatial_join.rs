//! Tree-to-tree spatial intersection join.
//!
//! The paper's conclusion points at spatial joins as a companion
//! operation; this is the classical synchronized-traversal R-tree join
//! (Brinkhoff, Kriegel & Seeger, SIGMOD 1993): descend both trees in
//! lockstep, visiting only node pairs whose MBRs intersect. Trees of
//! different heights are handled by descending the taller side until the
//! levels meet.

use crate::options::KernelMode;
use crate::Result;
use nnq_geom::{intersects_batch, Rect};
use nnq_rtree::{NodeView, RecordId, TreeAccess};

/// Work counters for one join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Node reads from the left tree.
    pub nodes_left: u64,
    /// Node reads from the right tree.
    pub nodes_right: u64,
    /// Result pairs produced.
    pub pairs: u64,
}

/// Computes all pairs `(a, b)` of records whose MBRs intersect, where `a`
/// comes from `left` and `b` from `right`.
///
/// Works across backends (both trees only need [`TreeAccess`]); a
/// self-join (`left` and `right` the same tree) reports each symmetric
/// pair twice plus every record paired with itself, as the raw
/// definition implies — filter `a < b` on the output for the distinct
/// unordered pairs.
pub fn intersection_join<const D: usize, L, R>(
    left: &L,
    right: &R,
) -> Result<(Vec<(RecordId, RecordId)>, JoinStats)>
where
    L: TreeAccess<D> + ?Sized,
    R: TreeAccess<D> + ?Sized,
{
    intersection_join_with(left, right, KernelMode::default())
}

/// [`intersection_join`] with an explicit distance-kernel mode. Both modes
/// produce identical pairs, in the same order, with identical node-read
/// counts; in batch mode the per-node intersection tests run as one
/// [`intersects_batch`] pass over the node's SoA view.
pub fn intersection_join_with<const D: usize, L, R>(
    left: &L,
    right: &R,
    kernel: KernelMode,
) -> Result<(Vec<(RecordId, RecordId)>, JoinStats)>
where
    L: TreeAccess<D> + ?Sized,
    R: TreeAccess<D> + ?Sized,
{
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    let (Some(lroot), Some(rroot)) = (left.access_root(), right.access_root()) else {
        return Ok((out, stats));
    };
    // Intersection-flag scratch shared by every node-level batch pass.
    let mut hits: Vec<bool> = Vec::new();
    let lnode = read_left(left, lroot, &mut stats)?;
    let rnode = read_right(right, rroot, &mut stats)?;
    // The roots' MBRs must themselves intersect for any result to exist.
    if lnode.mbr().intersects(&rnode.mbr()) {
        join(
            left, right, &lnode, &rnode, kernel, &mut hits, &mut out, &mut stats,
        )?;
    }
    stats.pairs = out.len() as u64;
    Ok((out, stats))
}

fn read_left<const D: usize, L: TreeAccess<D> + ?Sized>(
    tree: &L,
    page: nnq_storage::PageId,
    stats: &mut JoinStats,
) -> Result<NodeView<D>> {
    stats.nodes_left += 1;
    tree.access_node(page)
}

fn read_right<const D: usize, R: TreeAccess<D> + ?Sized>(
    tree: &R,
    page: nnq_storage::PageId,
    stats: &mut JoinStats,
) -> Result<NodeView<D>> {
    stats.nodes_right += 1;
    tree.access_node(page)
}

#[allow(clippy::too_many_arguments)]
fn join<const D: usize, L, R>(
    left: &L,
    right: &R,
    a: &NodeView<D>,
    b: &NodeView<D>,
    kernel: KernelMode,
    hits: &mut Vec<bool>,
    out: &mut Vec<(RecordId, RecordId)>,
    stats: &mut JoinStats,
) -> Result<()>
where
    L: TreeAccess<D> + ?Sized,
    R: TreeAccess<D> + ?Sized,
{
    let batch = kernel == KernelMode::Batch;
    match (a.is_leaf(), b.is_leaf()) {
        (true, true) => {
            // Emit intersecting record pairs: one batch pass over `b`'s SoA
            // view per `a` entry, or the scalar pairwise tests.
            for ea in a.entries() {
                if batch {
                    intersects_batch(&ea.mbr, b.soa(), hits);
                    for (eb, &hit) in b.entries().iter().zip(hits.iter()) {
                        if hit {
                            out.push((ea.record(), eb.record()));
                        }
                    }
                } else {
                    for eb in b.entries() {
                        if ea.mbr.intersects(&eb.mbr) {
                            out.push((ea.record(), eb.record()));
                        }
                    }
                }
            }
        }
        (true, false) => {
            let a_mbr = a.mbr();
            for eb in entries_intersecting(b, &a_mbr, kernel, hits) {
                let child = read_right(right, eb, stats)?;
                join(left, right, a, &child, kernel, hits, out, stats)?;
            }
        }
        (false, true) => {
            let b_mbr = b.mbr();
            for ea in entries_intersecting(a, &b_mbr, kernel, hits) {
                let child = read_left(left, ea, stats)?;
                join(left, right, &child, b, kernel, hits, out, stats)?;
            }
        }
        (false, false) => {
            if a.level() > b.level() {
                let b_mbr = b.mbr();
                for ea in entries_intersecting(a, &b_mbr, kernel, hits) {
                    let child = read_left(left, ea, stats)?;
                    join(left, right, &child, b, kernel, hits, out, stats)?;
                }
            } else if b.level() > a.level() {
                let a_mbr = a.mbr();
                for eb in entries_intersecting(b, &a_mbr, kernel, hits) {
                    let child = read_right(right, eb, stats)?;
                    join(left, right, a, &child, kernel, hits, out, stats)?;
                }
            } else {
                // Same level: pairwise descent into intersecting children.
                // The intersecting `b` children are collected before
                // recursing because the recursion reuses the scratch; the
                // node-read sequence (and thus the counters) matches the
                // scalar mode exactly.
                for ea in a.entries() {
                    let matching: Vec<nnq_storage::PageId> = if batch {
                        intersects_batch(&ea.mbr, b.soa(), hits);
                        b.entries()
                            .iter()
                            .zip(hits.iter())
                            .filter(|(_, &hit)| hit)
                            .map(|(eb, _)| eb.child())
                            .collect()
                    } else {
                        b.entries()
                            .iter()
                            .filter(|eb| ea.mbr.intersects(&eb.mbr))
                            .map(|eb| eb.child())
                            .collect()
                    };
                    for cb_page in matching {
                        let ca = read_left(left, ea.child(), stats)?;
                        let cb = read_right(right, cb_page, stats)?;
                        join(left, right, &ca, &cb, kernel, hits, out, stats)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn entries_intersecting<const D: usize>(
    node: &NodeView<D>,
    window: &Rect<D>,
    kernel: KernelMode,
    hits: &mut Vec<bool>,
) -> Vec<nnq_storage::PageId> {
    match kernel {
        KernelMode::Scalar => node
            .entries()
            .iter()
            .filter(|e| e.mbr.intersects(window))
            .map(|e| e.child())
            .collect(),
        KernelMode::Batch => {
            intersects_batch(window, node.soa(), hits);
            node.entries()
                .iter()
                .zip(hits.iter())
                .filter(|(_, &hit)| hit)
                .map(|(e, _)| e.child())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Point;
    use nnq_rtree::{MemRTree, RTreeConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn random_rects(n: usize, seed: u64, size: f64) -> Vec<(Rect<2>, RecordId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..100.0);
                let y = rng.random_range(0.0..100.0);
                let w = rng.random_range(0.0..size);
                let h = rng.random_range(0.0..size);
                (
                    Rect::new(Point::new([x, y]), Point::new([x + w, y + h])),
                    RecordId(i as u64),
                )
            })
            .collect()
    }

    fn build(items: &[(Rect<2>, RecordId)], fanout: usize) -> MemRTree<2> {
        let tree = MemRTree::with_config(RTreeConfig::default(), fanout);
        for (r, id) in items {
            tree.insert(r, *id).unwrap();
        }
        tree
    }

    fn brute(a: &[(Rect<2>, RecordId)], b: &[(Rect<2>, RecordId)]) -> BTreeSet<(u64, u64)> {
        let mut out = BTreeSet::new();
        for (ra, ia) in a {
            for (rb, ib) in b {
                if ra.intersects(rb) {
                    out.insert((ia.0, ib.0));
                }
            }
        }
        out
    }

    #[test]
    fn join_matches_brute_force() {
        let a_items = random_rects(800, 1, 3.0);
        let b_items = random_rects(600, 2, 3.0);
        let a = build(&a_items, 8);
        let b = build(&b_items, 12); // different fanout → different heights
        let (pairs, stats) = intersection_join(&a, &b).unwrap();
        let got: BTreeSet<(u64, u64)> = pairs.iter().map(|(x, y)| (x.0, y.0)).collect();
        assert_eq!(got, brute(&a_items, &b_items));
        assert_eq!(stats.pairs as usize, pairs.len());
        assert!(stats.nodes_left > 0 && stats.nodes_right > 0);
    }

    #[test]
    fn join_is_symmetric() {
        let a_items = random_rects(400, 3, 4.0);
        let b_items = random_rects(400, 4, 4.0);
        let a = build(&a_items, 6);
        let b = build(&b_items, 6);
        let (ab, _) = intersection_join(&a, &b).unwrap();
        let (ba, _) = intersection_join(&b, &a).unwrap();
        let ab: BTreeSet<(u64, u64)> = ab.iter().map(|(x, y)| (x.0, y.0)).collect();
        let ba: BTreeSet<(u64, u64)> = ba.iter().map(|(x, y)| (y.0, x.0)).collect();
        assert_eq!(ab, ba);
    }

    #[test]
    fn disjoint_datasets_join_empty_cheaply() {
        let mut a_items = random_rects(500, 5, 2.0);
        let b_items = random_rects(500, 6, 2.0);
        // Shift A far away.
        for (r, _) in &mut a_items {
            *r = Rect::new(
                Point::new([r.lo()[0] + 10_000.0, r.lo()[1] + 10_000.0]),
                Point::new([r.hi()[0] + 10_000.0, r.hi()[1] + 10_000.0]),
            );
        }
        let a = build(&a_items, 8);
        let b = build(&b_items, 8);
        let (pairs, stats) = intersection_join(&a, &b).unwrap();
        assert!(pairs.is_empty());
        // Only the roots were read.
        assert_eq!(stats.nodes_left, 1);
        assert_eq!(stats.nodes_right, 1);
    }

    #[test]
    fn self_join_includes_the_diagonal() {
        let items = random_rects(300, 7, 3.0);
        let tree = build(&items, 8);
        let (pairs, _) = intersection_join(&tree, &tree).unwrap();
        let got: BTreeSet<(u64, u64)> = pairs.iter().map(|(x, y)| (x.0, y.0)).collect();
        // Every record intersects itself.
        for (_, id) in &items {
            assert!(got.contains(&(id.0, id.0)));
        }
        assert_eq!(got, brute(&items, &items));
    }

    #[test]
    fn empty_trees_join_empty() {
        let empty = MemRTree::<2>::new();
        let full = build(&random_rects(50, 8, 2.0), 8);
        assert!(intersection_join(&empty, &full).unwrap().0.is_empty());
        assert!(intersection_join(&full, &empty).unwrap().0.is_empty());
        assert!(intersection_join(&empty, &empty).unwrap().0.is_empty());
    }

    #[test]
    fn join_beats_nested_loop_on_node_reads() {
        // Selective data: tiny rectangles, so few pairs intersect and the
        // synchronized traversal skips most node pairs.
        let a_items = random_rects(5_000, 9, 0.1);
        let b_items = random_rects(5_000, 10, 0.1);
        let a = build(&a_items, 16);
        let b = build(&b_items, 16);
        let (pairs, stats) = intersection_join(&a, &b).unwrap();
        let a_nodes = a.stats().unwrap().nodes;
        let b_leaves = b.stats().unwrap().leaves;
        // A nested-loop join would read every A node once per B leaf.
        let nested_loop_reads = a_nodes * b_leaves;
        assert!(
            stats.nodes_left + stats.nodes_right < nested_loop_reads / 10,
            "join read {} nodes, nested loop would read {nested_loop_reads}",
            stats.nodes_left + stats.nodes_right
        );
        // Sanity: result matches brute force.
        let got: BTreeSet<(u64, u64)> = pairs.iter().map(|(x, y)| (x.0, y.0)).collect();
        assert_eq!(got, brute(&a_items, &b_items));
    }
}
