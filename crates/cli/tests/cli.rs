//! End-to-end tests of the `nnq` tool, driving [`nnq_cli::run`] directly.

use nnq_cli::{run, CliError};

fn argv(s: &[&str]) -> Vec<String> {
    s.iter().map(|s| s.to_string()).collect()
}

fn run_ok(s: &[&str]) -> String {
    let mut out = Vec::new();
    run(&argv(s), &mut out).unwrap_or_else(|e| panic!("command {s:?} failed: {e}"));
    String::from_utf8(out).unwrap()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("nnq-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn full_workflow_gen_build_stats_query_bench() {
    let data = tmp("roads.csv");
    let index = tmp("roads.rtree");

    let out = run_ok(&[
        "gen", "--kind", "tiger", "--n", "5000", "--seed", "3", "--out", &data,
    ]);
    assert!(out.contains("5000 tiger segments"), "{out}");

    let out = run_ok(&[
        "build", "--input", &data, "--index", &index, "--method", "str",
    ]);
    assert!(out.contains("5000 entries"), "{out}");

    let out = run_ok(&["stats", "--index", &index]);
    assert!(out.contains("entries:      5000"), "{out}");
    assert!(out.contains("height:"), "{out}");

    let out = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "3",
    ]);
    assert!(out.contains("3 results"), "{out}");
    assert!(out.contains("segment #"), "{out}");

    // Radius query.
    let out = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "--radius",
        "5000",
    ]);
    assert!(out.contains("results"), "{out}");

    let out = run_ok(&[
        "bench",
        "--index",
        &index,
        "--data",
        &data,
        "--queries",
        "50",
        "-k",
        "5",
    ]);
    assert!(out.contains("µs/query"), "{out}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn dynamic_builds_work_too() {
    let data = tmp("pts.csv");
    let index = tmp("pts.rtree");
    run_ok(&["gen", "--kind", "uniform", "--n", "2000", "--out", &data]);
    for method in ["linear", "quadratic", "rstar", "hilbert"] {
        let out = run_ok(&[
            "build", "--input", &data, "--index", &index, "--method", method,
        ]);
        assert!(out.contains("2000 entries"), "{method}: {out}");
    }
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn knn_results_are_sorted_and_k_limited() {
    let data = tmp("clustered.csv");
    let index = tmp("clustered.rtree");
    run_ok(&["gen", "--kind", "clustered", "--n", "3000", "--out", &data]);
    run_ok(&["build", "--input", &data, "--index", &index]);
    let out = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "1000,1000",
        "-k",
        "7",
    ]);
    let dists: Vec<f64> = out
        .lines()
        .filter_map(|l| l.split("dist ").nth(1))
        .map(|d| d.trim().parse().unwrap())
        .collect();
    assert_eq!(dists.len(), 7, "{out}");
    assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{out}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown command.
    let mut out = Vec::new();
    assert!(matches!(
        run(&argv(&["frobnicate"]), &mut out),
        Err(CliError::Usage(_))
    ));
    // Missing flags.
    assert!(matches!(
        run(&argv(&["gen", "--kind", "tiger"]), &mut out),
        Err(CliError::Usage(_))
    ));
    // Bad kind.
    assert!(matches!(
        run(
            &argv(&["gen", "--kind", "volcanic", "--out", "/tmp/x"]),
            &mut out
        ),
        Err(CliError::Usage(_))
    ));
    // Nonexistent index file.
    assert!(matches!(
        run(&argv(&["stats", "--index", "/nonexistent/idx"]), &mut out),
        Err(CliError::Run(_))
    ));
    // Help prints usage.
    let mut out = Vec::new();
    run(&argv(&["help"]), &mut out).unwrap();
    assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    // No command at all.
    assert!(matches!(run(&[], &mut Vec::new()), Err(CliError::Usage(_))));
}

#[test]
fn kernel_flag_selects_mode_and_modes_agree() {
    let data = tmp("kern.csv");
    let index = tmp("kern.rtree");
    run_ok(&["gen", "--kind", "tiger", "--n", "4000", "--out", &data]);
    run_ok(&["build", "--input", &data, "--index", &index]);

    // The two kernel modes must report identical results and node reads;
    // only the timing line may differ.
    let result_lines = |kernel: &str| -> (Vec<String>, String) {
        let out = run_ok(&[
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "50000,50000",
            "-k",
            "5",
            "--kernel",
            kernel,
        ]);
        let ranked = out
            .lines()
            .filter(|l| l.contains("segment #"))
            .map(str::to_string)
            .collect();
        let summary = out
            .lines()
            .find(|l| l.contains("results"))
            .unwrap()
            .to_string();
        (ranked, summary)
    };
    let (scalar_hits, scalar_summary) = result_lines("scalar");
    let (batch_hits, batch_summary) = result_lines("batch");
    assert_eq!(scalar_hits, batch_hits);
    assert!(scalar_summary.contains("kernel scalar"), "{scalar_summary}");
    assert!(batch_summary.contains("kernel batch"), "{batch_summary}");

    // Bench reports the kernel alongside the node-cache stats.
    let out = run_ok(&[
        "bench",
        "--index",
        &index,
        "--data",
        &data,
        "--queries",
        "20",
        "--kernel",
        "scalar",
    ]);
    assert!(out.contains("kernel scalar"), "{out}");

    // A bad kernel name is a usage error.
    let mut sink = Vec::new();
    assert!(matches!(
        run(
            &argv(&[
                "query", "--index", &index, "--data", &data, "--at", "0,0", "--kernel", "simd"
            ]),
            &mut sink
        ),
        Err(CliError::Usage(_))
    ));

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn query_rejects_mismatched_data_file() {
    let data = tmp("a.csv");
    let other = tmp("b.csv");
    let index = tmp("a.rtree");
    run_ok(&["gen", "--kind", "uniform", "--n", "500", "--out", &data]);
    run_ok(&["gen", "--kind", "uniform", "--n", "400", "--out", &other]);
    run_ok(&["build", "--input", &data, "--index", &index]);
    let mut out = Vec::new();
    let err = run(
        &argv(&["query", "--index", &index, "--data", &other, "--at", "0,0"]),
        &mut out,
    )
    .unwrap_err();
    assert!(err.to_string().contains("wrong pairing"), "{err}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&other).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn explain_join_and_metric_queries() {
    let data = tmp("ext.csv");
    let outer = tmp("ext-outer.csv");
    let index = tmp("ext.rtree");
    run_ok(&["gen", "--kind", "tiger", "--n", "3000", "--out", &data]);
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "200", "--seed", "9", "--out", &outer,
    ]);
    run_ok(&["build", "--input", &data, "--index", &index]);

    // Explain shows the decision trace.
    let out = run_ok(&[
        "explain",
        "--index",
        &index,
        "--at",
        "50000,50000",
        "-k",
        "2",
    ]);
    assert!(out.contains("node page#"), "{out}");
    assert!(out.contains("pruned"), "{out}");

    // Metric queries rank by the chosen metric.
    for metric in ["l1", "l2", "linf"] {
        let out = run_ok(&[
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "50000,50000",
            "-k",
            "3",
            "--metric",
            metric,
        ]);
        assert!(out.contains("3 results"), "{metric}: {out}");
    }
    // Unknown metric is a usage error.
    let mut sink = Vec::new();
    assert!(matches!(
        run(
            &argv(&[
                "query", "--index", &index, "--data", &data, "--at", "0,0", "--metric", "cosine"
            ]),
            &mut sink
        ),
        Err(CliError::Usage(_))
    ));

    // Join runs both orderings and reports pairs.
    let out = run_ok(&[
        "join", "--index", &index, "--data", &data, "--outer", &outer, "-k", "2",
    ]);
    assert!(out.contains("as-given"), "{out}");
    assert!(out.contains("hilbert"), "{out}");
    assert!(out.contains("400 pairs"), "{out}"); // 200 outer * k=2

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&outer).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn threads_and_pool_shards_flags() {
    let data = tmp("par.csv");
    let index = tmp("par.rtree");
    run_ok(&["gen", "--kind", "uniform", "--n", "4000", "--out", &data]);
    run_ok(&["build", "--input", &data, "--index", &index]);

    // Extracts the "<x> pages/query" figure from the bench stats line —
    // the paper's metric, which must not move with threads or shards.
    let bench_pages = |threads: &str, shards: &str| -> (String, String) {
        let out = run_ok(&[
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--queries",
            "50",
            "--threads",
            threads,
            "--pool-shards",
            shards,
        ]);
        let pages = out
            .lines()
            .next()
            .unwrap()
            .split(", ")
            .find(|f| f.ends_with("pages/query"))
            .unwrap()
            .to_string();
        (pages, out)
    };
    let (pages_base, out) = bench_pages("1", "1");
    assert!(out.contains("1 thread(s), 1 pool shard(s)"), "{out}");
    for (threads, shards) in [("4", "1"), ("1", "8"), ("4", "8")] {
        let (pages, out) = bench_pages(threads, shards);
        assert_eq!(
            pages, pages_base,
            "threads={threads} shards={shards}: {out}"
        );
        assert!(
            out.contains(&format!("{threads} thread(s), {shards} pool shard(s)")),
            "{out}"
        );
    }

    // Query accepts both flags and reports them with the pool hit rate.
    let out = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "3",
        "--threads",
        "2",
        "--pool-shards",
        "4",
    ]);
    assert!(
        out.contains("2 thread(s), 4 pool shard(s), pool hit rate"),
        "{out}"
    );

    // Bad values are usage errors on both commands.
    let mut sink = Vec::new();
    for bad in [
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--threads",
            "0",
        ],
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--pool-shards",
            "0",
        ],
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--pool-shards",
            "3",
        ],
        vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "0,0",
            "--threads",
            "0",
        ],
        vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "0,0",
            "--pool-shards",
            "6",
        ],
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--threads",
            "two",
        ],
    ] {
        assert!(
            matches!(run(&argv(&bad), &mut sink), Err(CliError::Usage(_))),
            "expected usage error for {bad:?}"
        );
    }

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn prefetch_and_io_latency_flags() {
    let data = tmp("pf.csv");
    let index = tmp("pf.rtree");
    run_ok(&["gen", "--kind", "uniform", "--n", "4000", "--out", &data]);
    run_ok(&["build", "--input", &data, "--index", &index]);

    // Query with the pipeline on reports the prefetch stats line, and the
    // result set is byte-identical to the prefetch-off run.
    let query_out = |extra: &[&str]| -> String {
        let mut args = vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "50000,50000",
            "-k",
            "5",
        ];
        args.extend_from_slice(extra);
        run_ok(&args)
    };
    let hits = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.contains("segment #"))
            .map(str::to_string)
            .collect()
    };
    let off = query_out(&[]);
    assert!(!off.contains("prefetch"), "{off}");
    for policy in ["2", "8", "adaptive"] {
        let on = query_out(&["--prefetch", policy, "--io-lat-us", "50"]);
        assert_eq!(hits(&on), hits(&off), "policy {policy}: {on}");
        assert!(on.contains(&format!("prefetch {policy}:")), "{on}");
        assert!(on.contains("issued"), "{on}");
        assert!(on.contains("useful rate"), "{on}");
    }
    // `--prefetch off` is accepted and stays silent (no workers started).
    let off_explicit = query_out(&["--prefetch", "off"]);
    assert!(!off_explicit.contains("prefetch"), "{off_explicit}");

    // Bench: the paper's pages/query metric must not move with prefetch,
    // and the stats line reports useful/wasted counts and the useful rate.
    let bench_out = |extra: &[&str]| -> String {
        let mut args = vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--queries",
            "40",
        ];
        args.extend_from_slice(extra);
        run_ok(&args)
    };
    let pages = |out: &str| -> String {
        out.lines()
            .next()
            .unwrap()
            .split(", ")
            .find(|f| f.ends_with("pages/query"))
            .unwrap()
            .to_string()
    };
    let base = bench_out(&[]);
    let pf = bench_out(&["--prefetch", "4", "--io-lat-us", "20"]);
    assert_eq!(pages(&pf), pages(&base), "{pf}");
    assert!(pf.contains("prefetch 4:"), "{pf}");
    assert!(pf.contains("useful"), "{pf}");
    assert!(pf.contains("wasted"), "{pf}");

    // Bad values are usage errors on both commands.
    let mut sink = Vec::new();
    for bad in [
        vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "0,0",
            "--prefetch",
            "sometimes",
        ],
        vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "0,0",
            "--prefetch",
            "-3",
        ],
        vec![
            "query",
            "--index",
            &index,
            "--data",
            &data,
            "--at",
            "0,0",
            "--io-lat-us",
            "fast",
        ],
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--prefetch",
            "deep",
        ],
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--io-lat-us",
            "-1",
        ],
    ] {
        assert!(
            matches!(run(&argv(&bad), &mut sink), Err(CliError::Usage(_))),
            "expected usage error for {bad:?}"
        );
    }

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn tune_flag_is_accounting_neutral_and_reports_knobs() {
    let data = tmp("tune.csv");
    let index = tmp("tune.rtree");
    run_ok(&[
        "gen",
        "--kind",
        "clustered",
        "--n",
        "4000",
        "--seed",
        "13",
        "--out",
        &data,
    ]);
    run_ok(&[
        "build", "--input", &data, "--index", &index, "--method", "str",
    ]);

    // Bench: the controller may move any knob mid-run, but pages/query —
    // the paper's metric — must match the untuned run exactly.
    let bench_out = |extra: &[&str]| -> String {
        let mut args = vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--queries",
            "80",
            "-k",
            "5",
        ];
        args.extend_from_slice(extra);
        run_ok(&args)
    };
    let pages = |out: &str| -> String {
        out.lines()
            .next()
            .unwrap()
            .split(", ")
            .find(|f| f.ends_with("pages/query"))
            .unwrap()
            .to_string()
    };
    let off = bench_out(&["--tune", "off"]);
    assert!(!off.contains("tune adaptive"), "{off}");
    for extra in [
        vec!["--tune", "adaptive"],
        vec!["--tune", "adaptive", "--threads", "4"],
        vec!["--tune", "adaptive", "--prefetch", "4", "--io-lat-us", "20"],
    ] {
        let on = bench_out(&extra);
        assert_eq!(pages(&on), pages(&off), "{extra:?}: {on}");
        assert!(on.contains("tune adaptive: depth="), "{on}");
        assert!(on.contains("adjustments="), "{on}");
        assert!(on.contains("samples="), "{on}");
    }

    // Query accepts the flag too and reports the final knob state.
    let q = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "3",
        "--tune",
        "adaptive",
    ]);
    assert!(q.contains("3 results"), "{q}");
    assert!(q.contains("tune adaptive: depth="), "{q}");

    // Bad values are usage errors on both commands.
    let mut sink = Vec::new();
    for bad in [
        vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--tune",
            "sometimes",
        ],
        vec![
            "query", "--index", &index, "--data", &data, "--at", "0,0", "--tune", "on",
        ],
    ] {
        assert!(
            matches!(run(&argv(&bad), &mut sink), Err(CliError::Usage(_))),
            "expected usage error for {bad:?}"
        );
    }

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn tune_flag_partitioned_matches_untuned() {
    let data = tmp("tunep.csv");
    let index = tmp("tunep.rtree");
    run_ok(&[
        "gen", "--kind", "tiger", "--n", "4000", "--seed", "17", "--out", &data,
    ]);
    run_ok(&[
        "build",
        "--input",
        &data,
        "--index",
        &index,
        "--method",
        "hilbert",
        "--partitions",
        "4",
    ]);
    let bench_out = |extra: &[&str]| -> String {
        let mut args = vec![
            "bench",
            "--index",
            &index,
            "--data",
            &data,
            "--queries",
            "60",
            "-k",
            "5",
            "--partitions",
            "4",
        ];
        args.extend_from_slice(extra);
        run_ok(&args)
    };
    let pages = |out: &str| -> String {
        out.lines()
            .next()
            .unwrap()
            .split(", ")
            .find(|f| f.ends_with("pages/query"))
            .unwrap()
            .to_string()
    };
    let off = bench_out(&[]);
    for threads in ["1", "4"] {
        let on = bench_out(&["--tune", "adaptive", "--threads", threads]);
        assert_eq!(pages(&on), pages(&off), "threads={threads}: {on}");
        assert!(on.contains("tune adaptive: depth="), "{on}");
    }
    std::fs::remove_file(&data).ok();
    for i in 0..4 {
        std::fs::remove_file(format!("{index}.p{i}")).ok();
    }
    std::fs::remove_file(format!("{index}.manifest")).ok();
}

#[test]
fn ingest_and_delete_roundtrip_with_wal() {
    let base = tmp("ing-base.csv");
    let extra = tmp("ing-extra.csv");
    let index = tmp("ing.rtree");
    let wal = tmp("ing.wal");

    run_ok(&[
        "gen", "--kind", "uniform", "--n", "1500", "--seed", "5", "--out", &base,
    ]);
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "400", "--seed", "6", "--out", &extra,
    ]);
    run_ok(&[
        "build",
        "--input",
        &base,
        "--index",
        &index,
        "--method",
        "quadratic",
    ]);

    // Journaled ingest of a second dataset under a disjoint id range.
    let out = run_ok(&[
        "ingest",
        "--input",
        &extra,
        "--index",
        &index,
        "--wal",
        &wal,
        "--group-commit-us",
        "0",
        "--id-base",
        "1000000",
    ]);
    assert!(out.contains("ingested 400 entries"), "{out}");
    assert!(out.contains("1900 total"), "{out}");
    assert!(out.contains("wal syncs"), "{out}");

    let out = run_ok(&["stats", "--index", &index]);
    assert!(out.contains("entries:      1900"), "{out}");

    // Journaled delete of exactly what was ingested restores the count;
    // a second delete finds nothing (idempotent from the caller's view).
    let out = run_ok(&[
        "delete",
        "--input",
        &extra,
        "--index",
        &index,
        "--wal",
        &wal,
        "--id-base",
        "1000000",
    ]);
    assert!(out.contains("deleted 400 entries"), "{out}");
    assert!(out.contains("1500 total"), "{out}");
    let out = run_ok(&[
        "delete",
        "--input",
        &extra,
        "--index",
        &index,
        "--wal",
        &wal,
        "--id-base",
        "1000000",
    ]);
    assert!(out.contains("deleted 0 entries"), "{out}");
    assert!(out.contains("400 not found"), "{out}");

    // The mutated index still answers queries.
    let out = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &base,
        "--at",
        "50000,50000",
        "-k",
        "3",
    ]);
    assert!(out.contains("3 results"), "{out}");

    for f in [&base, &extra, &index, &wal] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn partitioned_build_query_bench_match_single_tree() {
    let data = tmp("part.csv");
    let single = tmp("part-single.rtree");
    let parted = tmp("part-multi.rtree");
    run_ok(&[
        "gen", "--kind", "tiger", "--n", "4000", "--seed", "11", "--out", &data,
    ]);
    run_ok(&[
        "build", "--input", &data, "--index", &single, "--method", "hilbert",
    ]);
    let out = run_ok(&[
        "build",
        "--input",
        &data,
        "--index",
        &parted,
        "--method",
        "hilbert",
        "--partitions",
        "4",
    ]);
    assert!(out.contains("4 partition(s)"), "{out}");
    assert!(out.contains("manifest"), "{out}");
    for i in 0..4 {
        assert!(
            std::path::Path::new(&format!("{parted}.p{i}")).exists(),
            "missing partition file {i}"
        );
    }
    assert!(std::path::Path::new(&format!("{parted}.manifest")).exists());

    // kNN and radius hits are identical to the single tree, for both
    // sequential and parallel scatter.
    let hits = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.contains("segment #"))
            .map(str::to_string)
            .collect()
    };
    let single_knn = run_ok(&[
        "query",
        "--index",
        &single,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "5",
    ]);
    for threads in ["1", "4"] {
        let out = run_ok(&[
            "query",
            "--index",
            &parted,
            "--data",
            &data,
            "--at",
            "50000,50000",
            "-k",
            "5",
            "--partitions",
            "4",
            "--threads",
            threads,
        ]);
        assert_eq!(hits(&out), hits(&single_knn), "threads={threads}: {out}");
        assert!(out.contains("partition(s) visited"), "{out}");
    }
    let single_radius = run_ok(&[
        "query",
        "--index",
        &single,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "--radius",
        "4000",
    ]);
    let parted_radius = run_ok(&[
        "query",
        "--index",
        &parted,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "--radius",
        "4000",
        "--partitions",
        "4",
    ]);
    assert_eq!(
        hits(&parted_radius),
        hits(&single_radius),
        "{parted_radius}"
    );

    // Bench runs the scatter-gather batch path and reports the partition
    // accounting; pages/query must be thread-invariant.
    let bench = |threads: &str| -> String {
        run_ok(&[
            "bench",
            "--index",
            &parted,
            "--data",
            &data,
            "--queries",
            "40",
            "-k",
            "5",
            "--partitions",
            "4",
            "--threads",
            threads,
        ])
    };
    let pages = |out: &str| -> String {
        out.lines()
            .next()
            .unwrap()
            .split(", ")
            .find(|f| f.ends_with("pages/query"))
            .unwrap()
            .to_string()
    };
    let b1 = bench("1");
    assert!(b1.contains("4 partition(s)"), "{b1}");
    assert!(b1.contains("visited/query"), "{b1}");
    let b4 = bench("4");
    assert_eq!(pages(&b1), pages(&b4), "{b1}\n{b4}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&single).ok();
    for i in 0..4 {
        std::fs::remove_file(format!("{parted}.p{i}")).ok();
    }
    std::fs::remove_file(format!("{parted}.manifest")).ok();
}

#[test]
fn partitioned_flag_validation() {
    let data = tmp("partv.csv");
    let index = tmp("partv.rtree");
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "600", "--seed", "2", "--out", &data,
    ]);
    let mut sink = Vec::new();
    // Zero / non-numeric partition counts are usage errors.
    for bad in ["0", "four", "-2"] {
        assert!(
            matches!(
                run(
                    &argv(&[
                        "build",
                        "--input",
                        &data,
                        "--index",
                        &index,
                        "--method",
                        "hilbert",
                        "--partitions",
                        bad,
                    ]),
                    &mut sink
                ),
                Err(CliError::Usage(_))
            ),
            "expected usage error for --partitions {bad}"
        );
    }
    // Dynamic-insertion methods cannot partition.
    assert!(matches!(
        run(
            &argv(&[
                "build",
                "--input",
                &data,
                "--index",
                &index,
                "--method",
                "quadratic",
                "--partitions",
                "4",
            ]),
            &mut sink
        ),
        Err(CliError::Usage(_))
    ));
    // A partition-count mismatch against the manifest is caught at open.
    run_ok(&[
        "build",
        "--input",
        &data,
        "--index",
        &index,
        "--method",
        "str",
        "--partitions",
        "4",
    ]);
    assert!(matches!(
        run(
            &argv(&[
                "query",
                "--index",
                &index,
                "--data",
                &data,
                "--at",
                "0,0",
                "--partitions",
                "2",
            ]),
            &mut sink
        ),
        Err(CliError::Usage(_))
    ));
    // Generalized metrics are single-tree only.
    assert!(matches!(
        run(
            &argv(&[
                "query",
                "--index",
                &index,
                "--data",
                &data,
                "--at",
                "0,0",
                "--partitions",
                "4",
                "--metric",
                "l1",
            ]),
            &mut sink
        ),
        Err(CliError::Usage(_))
    ));
    std::fs::remove_file(&data).ok();
    for i in 0..4 {
        std::fs::remove_file(format!("{index}.p{i}")).ok();
    }
    std::fs::remove_file(format!("{index}.manifest")).ok();
}

#[test]
fn ingest_groups_records_into_batched_txns() {
    let data = tmp("gc.csv");
    let index = tmp("gc.rtree");
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "600", "--seed", "4", "--out", &data,
    ]);
    run_ok(&["build", "--input", &data, "--index", &index]);

    // A zero window degenerates to one COW transaction per record.
    let out = run_ok(&[
        "ingest",
        "--input",
        &data,
        "--index",
        &index,
        "--group-commit-us",
        "0",
        "--id-base",
        "10000",
    ]);
    assert!(out.contains("ingested 600 entries"), "{out}");
    assert!(out.contains("600 txns"), "{out}");

    // A wide window batches every record arriving inside it into one
    // transaction — far fewer commits than records.
    let out = run_ok(&[
        "ingest",
        "--input",
        &data,
        "--index",
        &index,
        "--group-commit-us",
        "1000000",
        "--id-base",
        "20000",
    ]);
    assert!(out.contains("ingested 600 entries"), "{out}");
    let txns: u64 = out
        .split(", ")
        .find_map(|f| f.strip_suffix(" txns"))
        .unwrap_or_else(|| panic!("no txn count in {out}"))
        .parse()
        .unwrap();
    assert!(txns < 600, "expected batching, got {txns} txns: {out}");
    assert!(out.contains("1800 total"), "{out}");

    // The batched path leaves a queryable tree behind.
    let out = run_ok(&["stats", "--index", &index]);
    assert!(out.contains("entries:      1800"), "{out}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

/// Polls a `--port-file` until the serving thread writes the bound port.
fn wait_port(path: &str) -> u16 {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            if let Ok(p) = s.trim().parse() {
                return p;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never reported its port in {path}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn serve_flag_validation() {
    // Every flag is validated before the listener binds or the index
    // opens, so bad values fail fast as usage errors with no index file
    // present at all.
    let mut sink = Vec::new();
    for bad in [
        vec!["serve", "--threads", "0"],
        vec!["serve", "--threads", "two"],
        vec!["serve", "--batch-max", "0"],
        vec!["serve", "--batch-max", "lots"],
        vec!["serve", "--inbox-cap", "0"],
        vec!["serve", "--batch-deadline-us", "soon"],
        vec!["serve", "--port", "notaport"],
        vec!["serve", "--port", "70000"], // > u16::MAX
        vec!["serve", "--pool-shards", "3"],
        vec!["serve", "--prefetch", "sometimes"],
        vec!["serve", "--tune", "maybe"],
        vec!["serve", "--partitions", "0"],
        vec!["serve"], // missing --index
    ] {
        assert!(
            matches!(run(&argv(&bad), &mut sink), Err(CliError::Usage(_))),
            "expected usage error for {bad:?}"
        );
    }
}

#[test]
fn serve_answers_like_query_and_reports_stats_on_shutdown() {
    use nnq_serve::{Client, Request, Response};

    let data = tmp("srv.csv");
    let index = tmp("srv.rtree");
    let port_file = tmp("srv.port");
    std::fs::remove_file(&port_file).ok();
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "3000", "--seed", "21", "--out", &data,
    ]);
    run_ok(&[
        "build", "--input", &data, "--index", &index, "--method", "str",
    ]);

    // Sequential baseline for the same query point.
    let seq = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "5",
    ]);
    let seq_ids: Vec<u64> = seq
        .lines()
        .filter_map(|l| l.split("segment #").nth(1))
        .map(|rest| rest.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(seq_ids.len(), 5, "{seq}");
    let seq_reads: u64 = seq
        .lines()
        .find(|l| l.contains("nodes read"))
        .and_then(|l| l.split(" results, ").nth(1))
        .and_then(|r| r.split(" nodes read").next())
        .unwrap()
        .parse()
        .unwrap();

    let server = {
        let args = argv(&[
            "serve",
            "--index",
            &index,
            "--data",
            &data,
            "--port",
            "0",
            "--port-file",
            &port_file,
            "--threads",
            "2",
            "--batch-max",
            "8",
            "--batch-deadline-us",
            "100",
        ]);
        std::thread::spawn(move || -> Result<String, CliError> {
            let mut out = Vec::new();
            run(&args, &mut out)?;
            Ok(String::from_utf8(out).unwrap())
        })
    };
    let port = wait_port(&port_file);
    let mut client = Client::connect(("127.0.0.1", port)).unwrap();

    // Liveness check.
    match client.call(&Request::Ping { id: 7 }).unwrap() {
        Response::Pong { id } => assert_eq!(id, 7),
        other => panic!("expected pong, got {other:?}"),
    }

    // kNN over the wire returns the same neighbors — and the same
    // logical reads (the paper's pages-accessed metric) — as `nnq query`.
    let resp = client
        .call(&Request::Knn {
            id: 1,
            x: 50000.0,
            y: 50000.0,
            k: 5,
        })
        .unwrap();
    let Response::Ok {
        id,
        logical_reads,
        hits,
    } = resp
    else {
        panic!("expected ok, got {resp:?}");
    };
    assert_eq!(id, 1);
    let got_ids: Vec<u64> = hits.iter().map(|h| h.record).collect();
    assert_eq!(got_ids, seq_ids);
    assert_eq!(logical_reads, seq_reads);
    assert!(
        hits.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq),
        "{hits:?}"
    );

    // Radius query works over the same connection.
    let resp = client
        .call(&Request::Radius {
            id: 2,
            x: 50000.0,
            y: 50000.0,
            radius: 3000.0,
        })
        .unwrap();
    let Response::Ok { id, .. } = resp else {
        panic!("expected ok, got {resp:?}");
    };
    assert_eq!(id, 2);

    // A negative radius is answered with an error response (not a hang,
    // not a dropped connection) and the connection stays usable.
    let resp = client
        .call(&Request::Radius {
            id: 3,
            x: 0.0,
            y: 0.0,
            radius: -1.0,
        })
        .unwrap();
    assert!(
        matches!(resp, Response::Error { id: 3, .. }),
        "expected error, got {resp:?}"
    );
    match client.call(&Request::Ping { id: 8 }).unwrap() {
        Response::Pong { id } => assert_eq!(id, 8),
        other => panic!("expected pong, got {other:?}"),
    }

    // Shutdown drains and acknowledges, then the command returns with
    // the stats lines.
    let resp = client.call(&Request::Shutdown).unwrap();
    assert!(matches!(resp, Response::Bye), "got {resp:?}");
    let out = server.join().unwrap().unwrap();
    assert!(out.contains("serving"), "{out}");
    assert!(out.contains("serve done: 2 served"), "{out}");
    assert!(out.contains("1 errors"), "{out}");
    assert!(out.contains("0 rejected"), "{out}");
    assert!(out.contains("1 connection(s)"), "{out}");
    assert!(out.contains("batches"), "{out}");
    assert!(out.contains("pool: hit rate"), "{out}");
    assert!(out.contains("node cache:"), "{out}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
    std::fs::remove_file(&port_file).ok();
}

#[test]
fn serve_partitioned_engine_smoke() {
    use nnq_serve::{Client, Request, Response};

    let data = tmp("srvp.csv");
    let index = tmp("srvp.rtree");
    let port_file = tmp("srvp.port");
    std::fs::remove_file(&port_file).ok();
    run_ok(&[
        "gen", "--kind", "tiger", "--n", "3000", "--seed", "23", "--out", &data,
    ]);
    run_ok(&[
        "build",
        "--input",
        &data,
        "--index",
        &index,
        "--method",
        "hilbert",
        "--partitions",
        "4",
    ]);
    let seq = run_ok(&[
        "query",
        "--index",
        &index,
        "--data",
        &data,
        "--at",
        "50000,50000",
        "-k",
        "5",
        "--partitions",
        "4",
    ]);
    let seq_ids: Vec<u64> = seq
        .lines()
        .filter_map(|l| l.split("segment #").nth(1))
        .map(|rest| rest.split_whitespace().next().unwrap().parse().unwrap())
        .collect();

    let server = {
        let args = argv(&[
            "serve",
            "--index",
            &index,
            "--data",
            &data,
            "--port",
            "0",
            "--port-file",
            &port_file,
            "--partitions",
            "4",
            "--threads",
            "2",
        ]);
        std::thread::spawn(move || -> Result<String, CliError> {
            let mut out = Vec::new();
            run(&args, &mut out)?;
            Ok(String::from_utf8(out).unwrap())
        })
    };
    let port = wait_port(&port_file);
    let mut client = Client::connect(("127.0.0.1", port)).unwrap();
    let resp = client
        .call(&Request::Knn {
            id: 1,
            x: 50000.0,
            y: 50000.0,
            k: 5,
        })
        .unwrap();
    let Response::Ok { hits, .. } = resp else {
        panic!("expected ok, got {resp:?}");
    };
    let got: Vec<u64> = hits.iter().map(|h| h.record).collect();
    assert_eq!(got, seq_ids);
    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    let out = server.join().unwrap().unwrap();
    assert!(out.contains("serve done: 1 served"), "{out}");
    assert!(out.contains("4 partition(s)"), "{out}");

    std::fs::remove_file(&data).ok();
    for i in 0..4 {
        std::fs::remove_file(format!("{index}.p{i}")).ok();
    }
    std::fs::remove_file(format!("{index}.manifest")).ok();
    std::fs::remove_file(&port_file).ok();
}

#[test]
fn ingest_without_wal_and_unjournaled_flags() {
    let data = tmp("plain.csv");
    let index = tmp("plain.rtree");
    run_ok(&[
        "gen", "--kind", "uniform", "--n", "500", "--seed", "8", "--out", &data,
    ]);
    run_ok(&["build", "--input", &data, "--index", &index]);
    let out = run_ok(&[
        "ingest",
        "--input",
        &data,
        "--index",
        &index,
        "--id-base",
        "5000",
    ]);
    assert!(out.contains("ingested 500 entries"), "{out}");
    assert!(out.contains("1000 total"), "{out}");
    assert!(!out.contains("wal syncs"), "{out}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}
