//! The `nnq` binary: see [`nnq_cli::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = nnq_cli::run(&argv, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(match e {
            nnq_cli::CliError::Usage(_) => 2,
            nnq_cli::CliError::Run(_) => 1,
        });
    }
}
