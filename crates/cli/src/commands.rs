//! The subcommands: gen, build, stats, query, bench, serve, explain, join.

use crate::args::{Args, CliError};
use nnq_core::{
    metric_knn, partitioned_knn, partitioned_knn_batch_with_block, partitioned_radius,
    within_radius_with, FnRefiner, JoinOrder, KernelMode, MbrRefiner, NnOptions, NnSearch,
    PartitionedStats, PrefetchPolicy, TuneController, TuneMode,
};
use nnq_geom::{Metric, Point, Rect, Segment};
use nnq_rtree::{
    BulkMethod, PartitionManifest, PartitionedTree, RTree, RTreeConfig, RecordId, SplitStrategy,
};
use nnq_storage::{
    BufferPool, DiskManager, FileDisk, LatencyDisk, LatencyProfile, PageId, Wal, PAGE_SIZE,
};
use nnq_workloads::{
    default_bounds, gaussian_clusters, load_segments_csv, save_segments_csv, segments_to_items,
    tiger_like_segments, uniform_points, TigerParams,
};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// `nnq gen` — write a synthetic dataset as a segment CSV.
pub fn generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = args.req("kind")?;
    let n: usize = args.num("n", 10_000)?;
    let seed: u64 = args.num("seed", 0)?;
    let path = args.req("out")?;
    let bounds = default_bounds();
    let segments: Vec<Segment> = match kind {
        "tiger" => tiger_like_segments(&TigerParams {
            segments: n,
            seed,
            ..TigerParams::default()
        }),
        "uniform" => uniform_points(n, &bounds, seed)
            .into_iter()
            .map(|p| Segment::new(p, p))
            .collect(),
        "clustered" => gaussian_clusters(n, 32, 1_500.0, &bounds, seed)
            .into_iter()
            .map(|p| Segment::new(p, p))
            .collect(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind `{other}` (want tiger, uniform, or clustered)"
            )))
        }
    };
    save_segments_csv(path, &segments)?;
    writeln!(out, "wrote {} {kind} segments to {path}", segments.len())?;
    Ok(())
}

fn parse_build_method(name: &str) -> Result<Result<SplitStrategy, BulkMethod>, CliError> {
    Ok(match name {
        "linear" => Ok(SplitStrategy::Linear),
        "quadratic" => Ok(SplitStrategy::Quadratic),
        "rstar" => Ok(SplitStrategy::RStar),
        "str" => Err(BulkMethod::Str),
        "hilbert" => Err(BulkMethod::Hilbert),
        "lowx" => Err(BulkMethod::LowX),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --method `{other}` (want linear, quadratic, rstar, str, hilbert, or lowx)"
            )))
        }
    })
}

/// `--partitions P`: Hilbert-range partition count; `None` when absent
/// (single-tree mode), must be ≥ 1 when given.
fn parse_partitions(args: &Args) -> Result<Option<usize>, CliError> {
    match args.opt("partitions") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) | Err(_) => Err(CliError::Usage(format!(
                "flag `--partitions` must be an integer ≥ 1, got `{v}`"
            ))),
            Ok(p) => Ok(Some(p)),
        },
    }
}

/// File layout of a partitioned index rooted at `index`: partition `i`'s
/// page file.
fn partition_file(index: &str, i: usize) -> String {
    format!("{index}.p{i}")
}

/// The manifest file beside a partitioned index.
fn manifest_file(index: &str) -> String {
    format!("{index}.manifest")
}

/// `nnq build` — build a persistent index file from a dataset.
pub fn build(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.req("input")?;
    let index = args.req("index")?;
    let method = parse_build_method(args.opt("method").unwrap_or("quadratic"))?;

    let segments = load_segments_csv(input)?;
    let items = segments_to_items(&segments);

    if let Some(partitions) = parse_partitions(args)? {
        let Err(bulk) = method else {
            return Err(CliError::Usage(
                "flag `--partitions` requires a bulk method (str, hilbert, or lowx): \
                 dynamic insertion builds one tree"
                    .into(),
            ));
        };
        return build_partitioned(index, items, partitions, bulk, out);
    }

    let disk = FileDisk::create(index, PAGE_SIZE)?;
    let pool = Arc::new(BufferPool::new(Box::new(disk), 4096));
    let start = Instant::now();
    let tree = match method {
        Ok(split) => {
            let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::with_split(split))?;
            for (mbr, rid) in &items {
                tree.insert(mbr, *rid)?;
            }
            tree
        }
        Err(bulk) => {
            RTree::<2>::bulk_load(Arc::clone(&pool), RTreeConfig::default(), items, bulk, 1.0)?
        }
    };
    pool.flush_all()?;
    let elapsed = start.elapsed();
    debug_assert_eq!(
        tree.meta_page(),
        PageId(0),
        "meta page is page 0 by construction"
    );
    let stats = tree.stats()?;
    writeln!(
        out,
        "built {index}: {} entries, height {}, {} pages, avg fill {:.2}, {:.0} ms",
        tree.len(),
        tree.height(),
        stats.nodes,
        stats.avg_fill,
        elapsed.as_secs_f64() * 1e3
    )?;
    Ok(())
}

/// Builds a Hilbert-range partitioned index: one page file per partition
/// (`<index>.p<i>`) plus the text manifest (`<index>.manifest`).
/// Partitions build in parallel, one thread per available core.
fn build_partitioned(
    index: &str,
    items: Vec<(Rect<2>, RecordId)>,
    partitions: usize,
    bulk: BulkMethod,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let pools: Vec<Arc<BufferPool>> = (0..partitions)
        .map(|i| {
            let disk = FileDisk::create(partition_file(index, i), PAGE_SIZE)?;
            Ok(Arc::new(BufferPool::new(Box::new(disk), 4096)))
        })
        .collect::<Result<_, CliError>>()?;
    let build_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let start = Instant::now();
    let tree = PartitionedTree::bulk_load_on(
        pools,
        RTreeConfig::default(),
        items,
        bulk,
        1.0,
        build_threads,
    )?;
    for part in tree.partitions() {
        part.pool().flush_all()?;
    }
    std::fs::write(manifest_file(index), tree.manifest().encode())
        .map_err(|e| CliError::Run(format!("writing manifest: {e}")))?;
    let elapsed = start.elapsed();
    let max_height = tree
        .partitions()
        .iter()
        .map(|p| p.height())
        .max()
        .unwrap_or(0);
    writeln!(
        out,
        "built {index}: {} entries across {partitions} partition(s), max height {max_height}, \
         {build_threads} build thread(s), {:.0} ms (manifest {})",
        tree.len(),
        elapsed.as_secs_f64() * 1e3,
        manifest_file(index)
    )?;
    Ok(())
}

fn open_index(path: &str) -> Result<(RTree<2>, Arc<BufferPool>), CliError> {
    open_index_tuned(path, 1, 0, PrefetchPolicy::Off, TuneMode::Off)
}

/// Opens a partitioned index built by [`build_partitioned`]: decodes the
/// manifest, opens every partition file on its **own** pool (each with
/// the requested shard count, injected latency, and prefetch pipeline),
/// and checks the partition count against `expected`.
fn open_partitioned(
    index: &str,
    expected: usize,
    shards: usize,
    io_lat_us: u64,
    prefetch: PrefetchPolicy,
    tune: TuneMode,
) -> Result<PartitionedTree<2>, CliError> {
    let manifest_path = manifest_file(index);
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| CliError::Run(format!("reading {manifest_path}: {e}")))?;
    let manifest = PartitionManifest::<2>::decode(&text)?;
    if manifest.parts.len() != expected {
        return Err(CliError::Usage(format!(
            "--partitions {expected} does not match {manifest_path} ({} partitions)",
            manifest.parts.len()
        )));
    }
    let mut parts = Vec::with_capacity(expected);
    for i in 0..expected {
        let disk = FileDisk::open(partition_file(index, i), PAGE_SIZE)?;
        let disk: Box<dyn DiskManager> = if io_lat_us > 0 {
            Box::new(LatencyDisk::new(
                disk,
                LatencyProfile::symmetric_us(io_lat_us),
            ))
        } else {
            Box::new(disk)
        };
        let mut pool = BufferPool::with_shards(disk, 4096, shards);
        // The adaptive tuner needs the pipeline running even when the
        // static policy is `off`: it may decide to raise the depth later.
        if prefetch != PrefetchPolicy::Off || tune == TuneMode::Adaptive {
            pool.start_prefetch(2, 64);
        }
        parts.push(RTree::<2>::open(Arc::new(pool), PageId(0))?);
    }
    Ok(PartitionedTree::from_parts(parts, manifest)?)
}

/// Opens an index with the full I/O tuning surface: pool shard count,
/// injected per-access device latency (0 = raw disk), and the prefetch
/// policy (any policy other than `off` starts the pool's background I/O
/// workers).
fn open_index_tuned(
    path: &str,
    shards: usize,
    io_lat_us: u64,
    prefetch: PrefetchPolicy,
    tune: TuneMode,
) -> Result<(RTree<2>, Arc<BufferPool>), CliError> {
    let disk = FileDisk::open(path, PAGE_SIZE)?;
    let disk: Box<dyn DiskManager> = if io_lat_us > 0 {
        Box::new(LatencyDisk::new(
            disk,
            LatencyProfile::symmetric_us(io_lat_us),
        ))
    } else {
        Box::new(disk)
    };
    let mut pool = BufferPool::with_shards(disk, 4096, shards);
    if prefetch != PrefetchPolicy::Off || tune == TuneMode::Adaptive {
        pool.start_prefetch(2, 64);
    }
    let pool = Arc::new(pool);
    let tree = RTree::<2>::open(Arc::clone(&pool), PageId(0))?;
    Ok((tree, pool))
}

/// `--threads N`: worker count for batch execution; must be ≥ 1.
fn parse_threads(args: &Args) -> Result<usize, CliError> {
    let threads: usize = args.num("threads", 1)?;
    if threads == 0 {
        return Err(CliError::Usage(
            "flag `--threads` must be at least 1".into(),
        ));
    }
    Ok(threads)
}

/// `--pool-shards N`: buffer-pool shard count; must be a power of two ≥ 1
/// (shards are selected by masking the page id's low bits).
fn parse_pool_shards(args: &Args) -> Result<usize, CliError> {
    let shards: usize = args.num("pool-shards", 1)?;
    if shards == 0 || !shards.is_power_of_two() {
        return Err(CliError::Usage(
            "flag `--pool-shards` must be a power of two ≥ 1".into(),
        ));
    }
    Ok(shards)
}

/// `--prefetch <off|N|adaptive>`: traversal prefetch policy (default off).
fn parse_prefetch(args: &Args) -> Result<PrefetchPolicy, CliError> {
    match args.opt("prefetch") {
        None => Ok(PrefetchPolicy::Off),
        Some(v) => v
            .parse()
            .map_err(|e| CliError::Usage(format!("flag `--prefetch`: {e}"))),
    }
}

/// `--tune <off|adaptive>`: online self-tuning controller (default off).
/// Adaptive mode resamples the backend counters between query batches and
/// retunes prefetch depth/workers, node-cache capacity, and claim-block
/// size — all accounting-neutral knobs, so results and pages/query are
/// bit-identical to `off`.
fn parse_tune(args: &Args) -> Result<TuneMode, CliError> {
    match args.opt("tune") {
        None => Ok(TuneMode::Off),
        Some(v) => v
            .parse()
            .map_err(|e| CliError::Usage(format!("flag `--tune`: {e}"))),
    }
}

/// The tuning summary printed by `query` and `bench` when the controller
/// is active: the final knob state plus how many observations moved a
/// knob.
fn tune_report(controller: &TuneController) -> Option<String> {
    controller
        .is_active()
        .then(|| format!("tune adaptive: {}", controller.report()))
}

/// The prefetch summary printed by `query` and `bench` when the pipeline
/// is on. Quiesces first so every issued hint has been classified.
fn prefetch_report(pool: &BufferPool, policy: PrefetchPolicy) -> Option<String> {
    if !pool.prefetch_active() {
        return None;
    }
    pool.prefetch_quiesce();
    let pf = pool.prefetch_stats();
    Some(format!(
        "prefetch {policy}: {} issued, {} useful, {} wasted, {} dropped, useful rate {:.1}%",
        pf.issued,
        pf.useful,
        pf.wasted,
        pf.dropped,
        pf.useful_rate() * 100.0
    ))
}

/// `nnq stats` — print the structure of an index file.
pub fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let (tree, _pool) = open_index(args.req("index")?)?;
    let s = tree.stats()?;
    writeln!(out, "entries:      {}", tree.len())?;
    writeln!(out, "height:       {}", tree.height())?;
    writeln!(out, "nodes:        {} ({} leaves)", s.nodes, s.leaves)?;
    writeln!(out, "avg fill:     {:.2}", s.avg_fill)?;
    writeln!(out, "split:        {:?}", tree.config().split)?;
    writeln!(out, "nodes/level:  {:?}", s.nodes_per_level)?;
    let b = tree.bounds()?;
    if !b.is_empty() {
        writeln!(
            out,
            "bounds:       ({:.0}, {:.0}) .. ({:.0}, {:.0})",
            b.lo()[0],
            b.lo()[1],
            b.hi()[0],
            b.hi()[1]
        )?;
    }
    Ok(())
}

/// `nnq query` — kNN or radius query against an index + its dataset.
pub fn query(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let threads = parse_threads(args)?;
    let pool_shards = parse_pool_shards(args)?;
    let prefetch = parse_prefetch(args)?;
    let tune = parse_tune(args)?;
    let io_lat_us: u64 = args.num("io-lat-us", 0)?;
    if let Some(partitions) = parse_partitions(args)? {
        return query_partitioned(
            args,
            out,
            partitions,
            threads,
            pool_shards,
            io_lat_us,
            prefetch,
            tune,
        );
    }
    let (tree, pool) =
        open_index_tuned(args.req("index")?, pool_shards, io_lat_us, prefetch, tune)?;
    let segments = load_segments_csv(args.req("data")?)?;
    if segments.len() as u64 != tree.len() {
        return Err(CliError::Run(format!(
            "index has {} entries but data file has {} segments — wrong pairing?",
            tree.len(),
            segments.len()
        )));
    }
    // The controller applies its initial knobs up front (one observation)
    // and re-samples after the query so the report reflects real traffic.
    let mut controller = TuneController::new(tune);
    controller.observe_tree(&tree);
    let prefetch = controller.prefetch_policy().unwrap_or(prefetch);
    let (x, y) = args.coords("at")?;
    let q = Point::new([x, y]);
    let kernel: KernelMode = args.num("kernel", KernelMode::default())?;
    // The generalized-metric path has no batched kernels; report what ran.
    let mut kernel_used = kernel;
    let refiner = FnRefiner::new(|rid: RecordId, _: &nnq_geom::Rect<2>, p: &Point<2>| {
        segments[rid.0 as usize].dist_sq_to_point(p)
    });

    let start = Instant::now();
    let (hits, search_stats) = if let Some(radius) = args.opt("radius") {
        let radius: f64 = radius
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --radius `{radius}`")))?;
        within_radius_with(&tree, &q, radius, &refiner, kernel)?
    } else if let Some(metric) = args.opt("metric") {
        // Generalized metrics rank segment MBRs (centers for points); the
        // exact-geometry refiner is Euclidean-only.
        let metric = match metric {
            "l2" | "euclidean" => Metric::Euclidean,
            "l1" | "manhattan" => Metric::Manhattan,
            "linf" | "chebyshev" => Metric::Chebyshev,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown --metric `{other}` (want l1, l2, or linf)"
                )))
            }
        };
        let k: usize = args.num("k", 1)?;
        kernel_used = KernelMode::Scalar;
        metric_knn(&tree, &q, k, metric)?
    } else {
        let k: usize = args.num("k", 1)?;
        let opts = NnOptions {
            prefetch,
            ..NnOptions::with_kernel(kernel)
        };
        NnSearch::with_options(&tree, opts).query_refined(&q, k, &refiner)?
    };
    let elapsed = start.elapsed();

    for (rank, n) in hits.iter().enumerate() {
        let s = &segments[n.record.0 as usize];
        writeln!(
            out,
            "{:>3}. segment #{:<8} [{:.1},{:.1}]->[{:.1},{:.1}]  dist {:.1}",
            rank + 1,
            n.record.0,
            s.a[0],
            s.a[1],
            s.b[0],
            s.b[1],
            n.dist()
        )?;
    }
    // A single query point has nothing to fan out; `--threads` is
    // accepted for symmetry with `bench` and echoed so scripts can treat
    // the two stats lines uniformly.
    writeln!(
        out,
        "({} results, {} nodes read, kernel {kernel_used}, {} thread(s), {} pool shard(s), pool hit rate {:.1}%, {:.1} µs)",
        hits.len(),
        search_stats.nodes_visited,
        threads,
        pool.shard_count(),
        pool.stats().hit_rate() * 100.0,
        elapsed.as_secs_f64() * 1e6
    )?;
    if let Some(report) = prefetch_report(&pool, prefetch) {
        writeln!(out, "({report})")?;
    }
    controller.observe_tree(&tree);
    if let Some(report) = tune_report(&controller) {
        writeln!(out, "({report})")?;
    }
    Ok(())
}

/// The `--partitions` branch of `nnq query`: scatter-gather over a
/// partitioned index. Results are bit-identical to the single-tree
/// query; the stats line additionally reports how many partitions the
/// MINDIST-to-partition-MBR schedule visited vs pruned.
#[allow(clippy::too_many_arguments)]
fn query_partitioned(
    args: &Args,
    out: &mut dyn Write,
    partitions: usize,
    threads: usize,
    pool_shards: usize,
    io_lat_us: u64,
    prefetch: PrefetchPolicy,
    tune: TuneMode,
) -> Result<(), CliError> {
    if args.opt("metric").is_some() {
        return Err(CliError::Usage(
            "flag `--metric` is not supported with `--partitions`: \
             generalized metrics run on a single tree"
                .into(),
        ));
    }
    let tree = open_partitioned(
        args.req("index")?,
        partitions,
        pool_shards,
        io_lat_us,
        prefetch,
        tune,
    )?;
    let mut controller = TuneController::new(tune);
    controller.observe_partitioned(&tree);
    let prefetch = controller.prefetch_policy().unwrap_or(prefetch);
    let segments = load_segments_csv(args.req("data")?)?;
    if segments.len() as u64 != tree.len() {
        return Err(CliError::Run(format!(
            "index has {} entries but data file has {} segments — wrong pairing?",
            tree.len(),
            segments.len()
        )));
    }
    let (x, y) = args.coords("at")?;
    let q = Point::new([x, y]);
    let kernel: KernelMode = args.num("kernel", KernelMode::default())?;
    let refiner = FnRefiner::new(|rid: RecordId, _: &Rect<2>, p: &Point<2>| {
        segments[rid.0 as usize].dist_sq_to_point(p)
    });
    let opts = NnOptions {
        prefetch,
        ..NnOptions::with_kernel(kernel)
    };

    let start = Instant::now();
    let (hits, pstats) = if let Some(radius) = args.opt("radius") {
        let radius: f64 = radius
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --radius `{radius}`")))?;
        partitioned_radius(&tree, &q, radius, opts, &refiner, threads)?
    } else {
        let k: usize = args.num("k", 1)?;
        partitioned_knn(&tree, &q, k, opts, &refiner, threads)?
    };
    let elapsed = start.elapsed();

    for (rank, n) in hits.iter().enumerate() {
        let s = &segments[n.record.0 as usize];
        writeln!(
            out,
            "{:>3}. segment #{:<8} [{:.1},{:.1}]->[{:.1},{:.1}]  dist {:.1}",
            rank + 1,
            n.record.0,
            s.a[0],
            s.a[1],
            s.b[0],
            s.b[1],
            n.dist()
        )?;
    }
    let pool = tree.pool_stats();
    writeln!(
        out,
        "({} results, {} nodes read, {}/{partitions} partition(s) visited ({} pruned, {} round(s)), \
         kernel {kernel}, {} thread(s), pool hit rate {:.1}%, {:.1} µs)",
        hits.len(),
        pstats.search.nodes_visited,
        pstats.partitions_visited,
        pstats.partitions_pruned,
        pstats.rounds,
        threads,
        pool.hit_rate() * 100.0,
        elapsed.as_secs_f64() * 1e6
    )?;
    controller.observe_partitioned(&tree);
    if let Some(report) = tune_report(&controller) {
        writeln!(out, "({report})")?;
    }
    Ok(())
}

/// `nnq bench` — average query latency and page accesses over a batch of
/// random query points.
pub fn bench(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let threads = parse_threads(args)?;
    let pool_shards = parse_pool_shards(args)?;
    let prefetch = parse_prefetch(args)?;
    let tune = parse_tune(args)?;
    let io_lat_us: u64 = args.num("io-lat-us", 0)?;
    if let Some(partitions) = parse_partitions(args)? {
        return bench_partitioned(
            args,
            out,
            partitions,
            threads,
            pool_shards,
            io_lat_us,
            prefetch,
            tune,
        );
    }
    let (tree, pool) =
        open_index_tuned(args.req("index")?, pool_shards, io_lat_us, prefetch, tune)?;
    let segments = load_segments_csv(args.req("data")?)?;
    let n_queries: usize = args.num("queries", 1000)?;
    let k: usize = args.num("k", 10)?;
    let seed: u64 = args.num("seed", 1)?;
    let kernel: KernelMode = args.num("kernel", KernelMode::default())?;
    let queries = nnq_workloads::uniform_queries(n_queries, &default_bounds(), seed);
    let refiner = FnRefiner::new(|rid: RecordId, _: &nnq_geom::Rect<2>, p: &Point<2>| {
        segments[rid.0 as usize].dist_sq_to_point(p)
    });

    // With tuning on, the batch runs in sub-batches with a controller
    // observation between each — the knobs it moves are accounting-
    // neutral, so pages/query matches the untuned run exactly.
    let mut controller = TuneController::new(tune);
    controller.observe_tree(&tree);
    let chunk = if controller.is_active() {
        (n_queries / 8).max(1)
    } else {
        n_queries.max(1)
    };
    pool.reset_stats();
    let start = Instant::now();
    for qs in queries.chunks(chunk) {
        let opts = NnOptions {
            prefetch: controller.prefetch_policy().unwrap_or(prefetch),
            ..NnOptions::with_kernel(kernel)
        };
        if threads == 1 {
            let search = NnSearch::with_options(&tree, opts);
            let mut cursor = nnq_core::QueryCursor::new();
            for q in qs {
                search.query_refined_with(&mut cursor, q, k, &refiner)?;
            }
        } else {
            let (_, bstats) = nnq_core::par_knn_batch_with_block(
                &tree,
                qs,
                k,
                opts,
                &refiner,
                threads,
                JoinOrder::AsGiven,
                controller.block_override(),
            )
            .map_err(|e| CliError::Run(e.to_string()))?;
            controller.observe_batch(&bstats);
        }
        controller.observe_tree(&tree);
    }
    let elapsed = start.elapsed();
    // Aggregated over all shards; per-query logical reads (the paper's
    // "pages accessed") are shard- and thread-count-independent.
    let pstats = pool.stats();
    writeln!(
        out,
        "{} queries (k = {k}): {:.1} µs/query, {:.1} pages/query, {:.1} physical reads/query, hit rate {:.1}%",
        n_queries,
        elapsed.as_secs_f64() * 1e6 / n_queries as f64,
        pstats.logical_reads as f64 / n_queries as f64,
        pstats.physical_reads as f64 / n_queries as f64,
        pstats.hit_rate() * 100.0
    )?;
    let cstats = tree.store().cache_stats();
    writeln!(
        out,
        "node cache: {} hits / {} reads ({:.1}% decode-free), {} nodes cached, kernel {kernel}, {} thread(s), {} pool shard(s)",
        cstats.hits,
        cstats.hits + cstats.misses,
        cstats.hit_rate() * 100.0,
        cstats.len,
        threads,
        pool.shard_count()
    )?;
    if let Some(report) = prefetch_report(&pool, controller.prefetch_policy().unwrap_or(prefetch)) {
        writeln!(out, "{report}")?;
    }
    if let Some(report) = tune_report(&controller) {
        writeln!(out, "{report}")?;
    }
    Ok(())
}

/// The `--partitions` branch of `nnq bench`: the work-stealing batch
/// executor fans queries out over workers, and each query runs its own
/// scatter-gather pass. Page accesses are summed across every
/// partition's pool, so pages/query is directly comparable to the
/// single-tree figure.
#[allow(clippy::too_many_arguments)]
fn bench_partitioned(
    args: &Args,
    out: &mut dyn Write,
    partitions: usize,
    threads: usize,
    pool_shards: usize,
    io_lat_us: u64,
    prefetch: PrefetchPolicy,
    tune: TuneMode,
) -> Result<(), CliError> {
    let tree = open_partitioned(
        args.req("index")?,
        partitions,
        pool_shards,
        io_lat_us,
        prefetch,
        tune,
    )?;
    let segments = load_segments_csv(args.req("data")?)?;
    let n_queries: usize = args.num("queries", 1000)?;
    let k: usize = args.num("k", 10)?;
    let seed: u64 = args.num("seed", 1)?;
    let kernel: KernelMode = args.num("kernel", KernelMode::default())?;
    let queries = nnq_workloads::uniform_queries(n_queries, &default_bounds(), seed);
    let refiner = FnRefiner::new(|rid: RecordId, _: &Rect<2>, p: &Point<2>| {
        segments[rid.0 as usize].dist_sq_to_point(p)
    });
    let mut controller = TuneController::new(tune);
    controller.observe_partitioned(&tree);
    let chunk = if controller.is_active() {
        (n_queries / 8).max(1)
    } else {
        n_queries.max(1)
    };

    tree.reset_stats();
    let start = Instant::now();
    let mut pstats = PartitionedStats::default();
    for qs in queries.chunks(chunk) {
        let opts = NnOptions {
            prefetch: controller.prefetch_policy().unwrap_or(prefetch),
            ..NnOptions::with_kernel(kernel)
        };
        let (_, ps) = partitioned_knn_batch_with_block(
            &tree,
            qs,
            k,
            opts,
            &refiner,
            threads,
            controller.block_override(),
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        pstats.accumulate(&ps);
        controller.observe_partitioned(&tree);
    }
    let elapsed = start.elapsed();
    let pool = tree.pool_stats();
    let per_q = |v: u64| v as f64 / n_queries.max(1) as f64;
    writeln!(
        out,
        "{} queries (k = {k}) over {partitions} partition(s): {:.1} µs/query, {:.1} pages/query, \
         {:.1} physical reads/query, hit rate {:.1}%",
        n_queries,
        elapsed.as_secs_f64() * 1e6 / n_queries.max(1) as f64,
        per_q(pool.logical_reads),
        per_q(pool.physical_reads),
        pool.hit_rate() * 100.0
    )?;
    writeln!(
        out,
        "partitions: {:.2} visited/query, {:.2} pruned/query, {:.2} round(s)/query, \
         kernel {kernel}, {} thread(s), {} pool shard(s)/partition",
        per_q(pstats.partitions_visited),
        per_q(pstats.partitions_pruned),
        per_q(pstats.rounds),
        threads,
        pool_shards
    )?;
    if let Some(report) = tune_report(&controller) {
        writeln!(out, "{report}")?;
    }
    Ok(())
}

/// `nnq explain` — print the branch-and-bound decision trace for one
/// query.
pub fn explain(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let (tree, _pool) = open_index(args.req("index")?)?;
    let (x, y) = args.coords("at")?;
    let k: usize = args.num("k", 1)?;
    let q = Point::new([x, y]);
    let (hits, stats, trace) = NnSearch::new(&tree).query_traced(&q, k, &MbrRefiner)?;
    writeln!(out, "{}", trace.render())?;
    writeln!(
        out,
        "result: {} neighbors; {} nodes visited, {} branches/objects pruned",
        hits.len(),
        stats.nodes_visited,
        stats.pruned_total()
    )?;
    Ok(())
}

/// `nnq join` — for each point of a query CSV (degenerate segments), find
/// the k nearest indexed objects; reports throughput for both outer
/// orderings.
pub fn join(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let (tree, pool) = open_index(args.req("index")?)?;
    let segments = load_segments_csv(args.req("data")?)?;
    let outer_segments = load_segments_csv(args.req("outer")?)?;
    let outer: Vec<Point<2>> = outer_segments.iter().map(Segment::midpoint).collect();
    let k: usize = args.num("k", 4)?;
    let refiner = FnRefiner::new(
        |rid: nnq_rtree::RecordId, _: &nnq_geom::Rect<2>, p: &Point<2>| {
            segments[rid.0 as usize].dist_sq_to_point(p)
        },
    );
    for (label, order) in [
        ("as-given", JoinOrder::AsGiven),
        ("hilbert", JoinOrder::Hilbert),
    ] {
        pool.reset_stats();
        let start = Instant::now();
        let results = nnq_core::knn_join(
            &tree,
            &outer,
            k,
            nnq_core::NnOptions::default(),
            &refiner,
            order,
        )?;
        let secs = start.elapsed().as_secs_f64();
        let pstats = pool.stats();
        let produced: usize = results.iter().map(Vec::len).sum();
        let cstats = tree.store().cache_stats();
        writeln!(
            out,
            "{label:>9}: {} pairs in {:.0} ms ({:.0} outer/s), {} physical reads, hit rate {:.1}%, node-cache {:.1}%",
            produced,
            secs * 1e3,
            outer.len() as f64 / secs,
            pstats.physical_reads,
            pstats.hit_rate() * 100.0,
            cstats.hit_rate() * 100.0
        )?;
    }
    Ok(())
}

/// `nnq serve` — run the long-running query server until a client sends a
/// shutdown frame, then print the run's counters.
///
/// The server answers kNN and radius requests over the length-prefixed
/// wire protocol (see `nnq-serve`), micro-batching admitted requests on a
/// deadline-or-size trigger and executing each batch against a fresh tree
/// snapshot with the work-stealing executor. Overload fast-rejects;
/// results and per-query logical reads are bit-identical to sequential
/// `nnq query` invocations.
pub fn serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let threads = parse_threads(args)?;
    let pool_shards = parse_pool_shards(args)?;
    let prefetch = parse_prefetch(args)?;
    let tune = parse_tune(args)?;
    let io_lat_us: u64 = args.num("io-lat-us", 0)?;
    let kernel: KernelMode = args.num("kernel", KernelMode::default())?;
    let port: u16 = args.num("port", 0)?;
    let batch_max: usize = args.num("batch-max", 32)?;
    if batch_max == 0 {
        return Err(CliError::Usage(
            "flag `--batch-max` must be at least 1".into(),
        ));
    }
    let batch_deadline_us: u64 = args.num("batch-deadline-us", 200)?;
    let inbox_cap: usize = args.num("inbox-cap", 1024)?;
    if inbox_cap == 0 {
        return Err(CliError::Usage(
            "flag `--inbox-cap` must be at least 1 (an inbox that admits \
             nothing serves nothing)"
                .into(),
        ));
    }
    let partitions = parse_partitions(args)?;
    let index = args.req("index")?;
    let segments = load_segments_csv(args.req("data")?)?;
    let refiner = FnRefiner::new(|rid: RecordId, _: &Rect<2>, p: &Point<2>| {
        segments[rid.0 as usize].dist_sq_to_point(p)
    });
    let config = nnq_serve::ServeConfig {
        threads,
        batch_max,
        batch_deadline: std::time::Duration::from_micros(batch_deadline_us),
        inbox_cap,
        kernel,
        prefetch,
        tune,
    };

    // Bind before opening the index so `--port 0` (ephemeral) reports the
    // real port immediately; tests discover it through `--port-file`.
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;

    let check_len = |entries: u64| -> Result<(), CliError> {
        if segments.len() as u64 != entries {
            return Err(CliError::Run(format!(
                "index has {entries} entries but data file has {} segments — wrong pairing?",
                segments.len()
            )));
        }
        Ok(())
    };
    let announce = |out: &mut dyn Write| -> Result<(), CliError> {
        writeln!(
            out,
            "serving {index} on {addr} ({threads} thread(s), batch ≤ {batch_max} \
             / {batch_deadline_us} µs, inbox {inbox_cap})"
        )?;
        out.flush()?;
        if let Some(path) = args.opt("port-file") {
            std::fs::write(path, addr.port().to_string())
                .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
        }
        Ok(())
    };

    let report = match partitions {
        None => {
            let (tree, pool) = open_index_tuned(index, pool_shards, io_lat_us, prefetch, tune)?;
            check_len(tree.len())?;
            announce(out)?;
            let report = nnq_serve::serve(
                &nnq_serve::Engine::Single(&tree),
                &refiner,
                listener,
                &config,
            )?;
            let pstats = pool.stats();
            let cstats = tree.store().cache_stats();
            writeln!(
                out,
                "pool: hit rate {:.1}%, {} logical reads, {} physical reads, {} shard(s)",
                pstats.hit_rate() * 100.0,
                pstats.logical_reads,
                pstats.physical_reads,
                pool.shard_count()
            )?;
            writeln!(
                out,
                "node cache: {} hits / {} reads ({:.1}% decode-free), {} nodes cached",
                cstats.hits,
                cstats.hits + cstats.misses,
                cstats.hit_rate() * 100.0,
                cstats.len
            )?;
            if let Some(r) = prefetch_report(&pool, prefetch) {
                writeln!(out, "{r}")?;
            }
            report
        }
        Some(partitions) => {
            let tree = open_partitioned(index, partitions, pool_shards, io_lat_us, prefetch, tune)?;
            check_len(tree.len())?;
            announce(out)?;
            let report = nnq_serve::serve(
                &nnq_serve::Engine::Partitioned(&tree),
                &refiner,
                listener,
                &config,
            )?;
            let pstats = tree.pool_stats();
            writeln!(
                out,
                "pool: hit rate {:.1}%, {} logical reads, {} physical reads, \
                 {partitions} partition(s) × {pool_shards} shard(s)",
                pstats.hit_rate() * 100.0,
                pstats.logical_reads,
                pstats.physical_reads
            )?;
            report
        }
    };
    writeln!(
        out,
        "serve done: {} served, {} rejected ({} at shutdown), {} errors, \
         {} batches (max {}, avg {:.1}), {} connection(s)",
        report.served,
        report.rejected,
        report.rejected_shutdown,
        report.errors,
        report.batches,
        report.max_batch,
        report.avg_batch(),
        report.connections
    )?;
    if report.write_errors > 0 {
        writeln!(
            out,
            "({} response(s) undeliverable: client disconnected before its reply)",
            report.write_errors
        )?;
    }
    if report.accept_errors > 0 {
        writeln!(
            out,
            "({} transient accept failure(s) retried)",
            report.accept_errors
        )?;
    }
    if let Some(r) = &report.tune_report {
        writeln!(out, "tune adaptive: {r}")?;
    }
    Ok(())
}

enum MutateOp {
    Insert,
    Delete,
}

/// `nnq ingest` — insert a dataset into an existing index through the
/// copy-on-write write path, optionally journaled (`--wal`) with a
/// group-commit window (`--group-commit-us`).
pub fn ingest(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    mutate(args, out, MutateOp::Insert)
}

/// `nnq delete` — remove a dataset's entries from an existing index
/// (same flags as `ingest`; entries are matched by rectangle + record id).
pub fn delete(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    mutate(args, out, MutateOp::Delete)
}

fn mutate(args: &Args, out: &mut dyn Write, op: MutateOp) -> Result<(), CliError> {
    let index = args.req("index")?;
    let input = args.req("input")?;
    // Record ids are assigned per input line, offset by --id-base; `build`
    // numbers from 0, so deleting built entries wants the default, while
    // ingesting a second dataset should pass a disjoint base.
    let id_base: u64 = args.num("id-base", 0)?;
    let group_commit_us: u64 = args.num("group-commit-us", 1_000)?;
    let segments = load_segments_csv(input)?;
    let items = segments_to_items(&segments);

    let disk = FileDisk::open(index, PAGE_SIZE)?;
    let pool = match args.opt("wal") {
        Some(path) => {
            let wal = if std::path::Path::new(path).exists() {
                let wal = Wal::open(path)?;
                // Finish any interrupted commit before touching the tree.
                wal.replay(&disk)?;
                wal
            } else {
                Wal::create(path)?
            };
            Arc::new(BufferPool::with_wal(Box::new(disk), 4096, wal))
        }
        None => Arc::new(BufferPool::new(Box::new(disk), 4096)),
    };
    let tree = RTree::<2>::open(Arc::clone(&pool), PageId(0))?;
    tree.set_group_commit_us(group_commit_us);

    let start = Instant::now();
    let mut applied = 0u64;
    let mut missing = 0u64;
    let mut txns = 0u64;
    match op {
        MutateOp::Insert => {
            // Group commit at the transaction level, not just the WAL sync:
            // every record that arrives within one `--group-commit-us`
            // window joins a single copy-on-write transaction, so the
            // whole batch shares one path-copy amortization, one root
            // publish, and (when journaled) one WAL append. A zero window
            // degenerates to a transaction per record.
            let window = std::time::Duration::from_micros(group_commit_us);
            let mut batch: Vec<(Rect<2>, RecordId)> = Vec::new();
            let mut window_open = Instant::now();
            for (i, (mbr, _)) in items.iter().enumerate() {
                if batch.is_empty() {
                    window_open = Instant::now();
                }
                batch.push((*mbr, RecordId(id_base + i as u64)));
                if window.is_zero() || window_open.elapsed() >= window {
                    tree.insert_many(&batch)?;
                    applied += batch.len() as u64;
                    txns += 1;
                    batch.clear();
                }
            }
            if !batch.is_empty() {
                tree.insert_many(&batch)?;
                applied += batch.len() as u64;
                txns += 1;
            }
        }
        MutateOp::Delete => {
            for (i, (mbr, _)) in items.iter().enumerate() {
                let rid = RecordId(id_base + i as u64);
                match tree.delete(mbr, rid) {
                    Ok(()) => applied += 1,
                    Err(nnq_rtree::RTreeError::NotFound) => missing += 1,
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }
    let syncs = pool.wal().map(nnq_storage::Wal::sync_count);
    // A journaled run ends with a checkpoint (device standalone, journal
    // truncated); an unjournaled one just flushes.
    if pool.wal().is_some() {
        pool.checkpoint()?;
    } else {
        pool.flush_all()?;
    }
    let elapsed = start.elapsed();
    let verb = match op {
        MutateOp::Insert => "ingested",
        MutateOp::Delete => "deleted",
    };
    write!(
        out,
        "{verb} {applied} entries ({index}: {} total, height {})",
        tree.len(),
        tree.height()
    )?;
    if missing > 0 {
        write!(out, ", {missing} not found")?;
    }
    if matches!(op, MutateOp::Insert) {
        write!(out, ", {txns} txns")?;
    }
    if let Some(s) = syncs {
        write!(out, ", {s} wal syncs (group window {group_commit_us} us)")?;
    }
    writeln!(out, ", {:.0} ms", elapsed.as_secs_f64() * 1e3)?;
    Ok(())
}
