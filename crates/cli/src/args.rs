//! Minimal flag parsing (`--name value` pairs plus `-k`).

use std::collections::HashMap;
use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, missing or malformed flag.
    Usage(String),
    /// An I/O or index error while executing a command.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Run(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<nnq_rtree::RTreeError> for CliError {
    fn from(e: nnq_rtree::RTreeError) -> Self {
        CliError::Run(e.to_string())
    }
}

impl From<nnq_storage::StorageError> for CliError {
    fn from(e: nnq_storage::StorageError) -> Self {
        CliError::Run(e.to_string())
    }
}

/// Parsed `--flag value` arguments.
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--name value` pairs; `-k` is accepted as an alias for
    /// `--k`. Flags without values and positional arguments are rejected.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let name = arg
                .strip_prefix("--")
                .or_else(|| arg.strip_prefix('-'))
                .ok_or_else(|| {
                    CliError::Usage(format!("unexpected positional argument `{arg}`"))
                })?;
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag `--{name}` needs a value")))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    /// A required string flag.
    pub fn req(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag `--{name}`")))
    }

    /// An optional string flag.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag `--{name}`: cannot parse `{v}`"))),
        }
    }

    /// A required `x,y` coordinate pair.
    pub fn coords(&self, name: &str) -> Result<(f64, f64), CliError> {
        let raw = self.req(name)?;
        let mut parts = raw.split(',');
        let parse = |s: Option<&str>| -> Result<f64, CliError> {
            s.ok_or_else(|| CliError::Usage(format!("flag `--{name}` wants `x,y`")))?
                .trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("flag `--{name}`: bad number in `{raw}`")))
        };
        let x = parse(parts.next())?;
        let y = parse(parts.next())?;
        if parts.next().is_some() {
            return Err(CliError::Usage(format!(
                "flag `--{name}` wants exactly two coordinates"
            )));
        }
        Ok((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv(&["--n", "100", "-k", "5"])).unwrap();
        assert_eq!(a.req("n").unwrap(), "100");
        assert_eq!(a.num::<usize>("k", 1).unwrap(), 5);
        assert_eq!(a.num::<usize>("missing", 7).unwrap(), 7);
        assert!(a.opt("absent").is_none());
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Args::parse(&argv(&["oops"])).is_err());
        assert!(Args::parse(&argv(&["--n"])).is_err());
    }

    #[test]
    fn coords_parse_and_reject() {
        let a = Args::parse(&argv(&["--at", "1.5,-2"])).unwrap();
        assert_eq!(a.coords("at").unwrap(), (1.5, -2.0));
        let a = Args::parse(&argv(&["--at", "1.5"])).unwrap();
        assert!(a.coords("at").is_err());
        let a = Args::parse(&argv(&["--at", "1,2,3"])).unwrap();
        assert!(a.coords("at").is_err());
        let a = Args::parse(&argv(&["--at", "x,y"])).unwrap();
        assert!(a.coords("at").is_err());
    }

    #[test]
    fn missing_required_flag_names_itself() {
        let a = Args::parse(&[]).unwrap();
        let err = a.req("index").unwrap_err();
        assert!(err.to_string().contains("--index"));
    }
}
