//! Implementation of the `nnq` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper around [`run`], so the
//! whole tool is unit- and integration-testable without spawning
//! processes.
//!
//! ```text
//! nnq gen    --kind tiger --n 50000 --seed 7 --out roads.csv
//! nnq build  --input roads.csv --index roads.rtree --method str
//! nnq ingest --input more.csv --index roads.rtree --wal roads.wal --group-commit-us 500 --id-base 1000000
//! nnq delete --input more.csv --index roads.rtree --wal roads.wal --id-base 1000000
//! nnq stats  --index roads.rtree
//! nnq query  --index roads.rtree --data roads.csv --at 50000,50000 -k 5
//! nnq query  --index roads.rtree --data roads.csv --at 50000,50000 --radius 2000
//! nnq bench  --index roads.rtree --data roads.csv --queries 1000 -k 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{Args, CliError};

/// Entry point: parses `argv` (without the program name) and executes the
/// requested subcommand, writing human-readable output to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "gen" => commands::generate(&args, out),
        "build" => commands::build(&args, out),
        "ingest" => commands::ingest(&args, out),
        "delete" => commands::delete(&args, out),
        "stats" => commands::stats(&args, out),
        "query" => commands::query(&args, out),
        "bench" => commands::bench(&args, out),
        "serve" => commands::serve(&args, out),
        "explain" => commands::explain(&args, out),
        "join" => commands::join(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(CliError::from)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

/// The tool's usage text.
pub const USAGE: &str = "\
nnq — nearest-neighbor queries over R-trees (RKV'95)

USAGE:
  nnq gen    --kind <tiger|uniform|clustered> --n <N> [--seed <S>] --out <FILE>
  nnq build  --input <FILE> --index <FILE> [--method <quadratic|linear|rstar|str|hilbert|lowx>] [--partitions <P>]
  nnq ingest --input <FILE> --index <FILE> [--wal <FILE>] [--group-commit-us <N>] [--id-base <N>]
  nnq delete --input <FILE> --index <FILE> [--wal <FILE>] [--group-commit-us <N>] [--id-base <N>]
  nnq stats  --index <FILE>
  nnq query  --index <FILE> --data <FILE> --at <X,Y> [-k <K>] [--radius <R>] [--metric <l1|l2|linf>] [--kernel <scalar|batch>] [--threads <N>] [--partitions <P>] [--pool-shards <P2>] [--prefetch <off|N|adaptive>] [--tune <off|adaptive>] [--io-lat-us <N>]
  nnq bench  --index <FILE> --data <FILE> [--queries <N>] [-k <K>] [--seed <S>] [--kernel <scalar|batch>] [--threads <N>] [--partitions <P>] [--pool-shards <P2>] [--prefetch <off|N|adaptive>] [--tune <off|adaptive>] [--io-lat-us <N>]
  nnq serve  --index <FILE> --data <FILE> [--port <P>] [--port-file <FILE>] [--threads <N>] [--batch-max <N>] [--batch-deadline-us <N>] [--inbox-cap <N>] [--partitions <P>] [--pool-shards <P2>] [--prefetch <off|N|adaptive>] [--tune <off|adaptive>] [--kernel <scalar|batch>] [--io-lat-us <N>]
  nnq explain --index <FILE> --at <X,Y> [-k <K>]
  nnq join   --index <FILE> --data <FILE> --outer <FILE> [-k <K>]

Datasets are segment CSV files (`ax,ay,bx,by` per line); point datasets use
degenerate segments. Indexes are page files created by `build` (the meta
page is page 0). `build --partitions P` needs a bulk method and splits the
dataset into P Hilbert-key-range trees (`<index>.p<i>` + `<index>.manifest`);
`query`/`bench --partitions P` run scatter-gather over them with one shared
k-th-distance bound. `serve` runs until a client sends a shutdown frame
(see the `nnq-serve` crate for the wire protocol); `--port 0` binds an
ephemeral port, written to `--port-file` for scripts.";
