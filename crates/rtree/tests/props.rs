//! Property-based tests: the R-tree must behave exactly like a flat list
//! of rectangles under any interleaving of operations.

use nnq_geom::{Point, Rect};
use nnq_rtree::{BulkMethod, RTree, RTreeConfig, RecordId, SplitStrategy};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

fn mem_pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 8192))
}

#[derive(Clone, Debug)]
enum Op {
    Insert { x: f64, y: f64, w: f64, h: f64 },
    DeleteNth(usize),
    Window { x: f64, y: f64, w: f64, h: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..100.0f64, 0.0..100.0f64, 0.0..3.0f64, 0.0..3.0f64)
            .prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => (0usize..1000).prop_map(Op::DeleteNth),
        1 => (0.0..100.0f64, 0.0..100.0f64, 0.0..40.0f64, 0.0..40.0f64)
            .prop_map(|(x, y, w, h)| Op::Window { x, y, w, h }),
    ]
}

fn split_strategy() -> impl Strategy<Value = SplitStrategy> {
    prop_oneof![
        Just(SplitStrategy::Linear),
        Just(SplitStrategy::Quadratic),
        Just(SplitStrategy::RStar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn tree_matches_model_under_random_ops(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        split in split_strategy(),
        fanout in 4usize..12,
    ) {
        let mut cfg = RTreeConfig::with_split(split);
        cfg.max_entries_override = Some(fanout);
        let tree = RTree::<2>::create(mem_pool(), cfg).unwrap();
        let mut model: Vec<(Rect<2>, RecordId)> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Insert { x, y, w, h } => {
                    let r = Rect::new(Point::new([x, y]), Point::new([x + w, y + h]));
                    tree.insert(&r, RecordId(next)).unwrap();
                    model.push((r, RecordId(next)));
                    next += 1;
                }
                Op::DeleteNth(n) => {
                    if !model.is_empty() {
                        let (r, id) = model.swap_remove(n % model.len());
                        tree.delete(&r, id).unwrap();
                    }
                }
                Op::Window { x, y, w, h } => {
                    let win = Rect::new(Point::new([x, y]), Point::new([x + w, y + h]));
                    let got: BTreeSet<u64> = tree
                        .window(&win)
                        .unwrap()
                        .into_iter()
                        .map(|(_, id)| id.0)
                        .collect();
                    let want: BTreeSet<u64> = model
                        .iter()
                        .filter(|(r, _)| r.intersects(&win))
                        .map(|(_, id)| id.0)
                        .collect();
                    prop_assert_eq!(&got, &want);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        tree.validate().unwrap();
        let got: BTreeSet<u64> = tree.scan().unwrap().into_iter().map(|(_, id)| id.0).collect();
        let want: BTreeSet<u64> = model.iter().map(|(_, id)| id.0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_incremental_build(
        pts in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..400),
        method in prop_oneof![Just(BulkMethod::Str), Just(BulkMethod::Hilbert)],
    ) {
        let items: Vec<(Rect<2>, RecordId)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new([x, y])), RecordId(i as u64)))
            .collect();
        let bulk = RTree::<2>::bulk_load(
            mem_pool(),
            RTreeConfig::for_testing(8),
            items.clone(),
            method,
            1.0,
        )
        .unwrap();
        bulk.validate().unwrap();
        let dynamic = RTree::<2>::create(mem_pool(), RTreeConfig::for_testing(8)).unwrap();
        for (r, id) in &items {
            dynamic.insert(r, *id).unwrap();
        }
        dynamic.validate_strict().unwrap();
        // Identical result sets for any window.
        let win = Rect::new(Point::new([10.0, 10.0]), Point::new([35.0, 40.0]));
        let a: BTreeSet<u64> = bulk.window(&win).unwrap().into_iter().map(|(_, i)| i.0).collect();
        let b: BTreeSet<u64> =
            dynamic.window(&win).unwrap().into_iter().map(|(_, i)| i.0).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(bulk.len(), dynamic.len());
    }
}
