//! WindowIter behaviour on the paged backend (page accounting included).

use nnq_geom::{Point, Rect};
use nnq_rtree::{RTree, RTreeConfig, RecordId};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use std::sync::Arc;

#[test]
fn lazy_iteration_counts_logical_page_reads() {
    let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 4096));
    let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::for_testing(8)).unwrap();
    for i in 0..2_000u64 {
        let p = Point::new([(i % 50) as f64, (i / 50) as f64]);
        tree.insert(&Rect::from_point(p), RecordId(i)).unwrap();
    }
    let w = Rect::new(Point::new([10.0, 10.0]), Point::new([20.0, 20.0]));
    pool.reset_stats();
    let mut iter = tree.window_iter(w);
    let mut n = 0;
    for item in &mut iter {
        item.unwrap();
        n += 1;
    }
    assert_eq!(n, 11 * 11);
    // Each node read by the iterator is exactly one logical page access.
    assert_eq!(pool.stats().logical_reads, iter.nodes_read());

    // `update` then re-query through the iterator.
    // Record id layout: p = (i % 50, i / 50), so (15, 15) is i = 15*50+15.
    let old = Rect::from_point(Point::new([15.0, 15.0]));
    let rid = RecordId(15 * 50 + 15);
    tree.update(&old, rid, &Rect::from_point(Point::new([500.0, 500.0])))
        .unwrap();
    let n_after = tree.window_iter(w).count();
    assert_eq!(n_after, 11 * 11 - 1);
}

#[test]
fn clear_on_paged_tree_releases_pages() {
    let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1024));
    let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::for_testing(8)).unwrap();
    for i in 0..1_000u64 {
        let p = Point::new([i as f64, (i * 7 % 1000) as f64]);
        tree.insert(&Rect::from_point(p), RecordId(i)).unwrap();
    }
    let live_before = pool.live_pages();
    assert!(live_before > 100);
    tree.clear().unwrap();
    // Only the meta page remains.
    assert_eq!(pool.live_pages(), 1);
    assert!(tree.is_empty());
    // Reusable.
    tree.insert(&Rect::from_point(Point::new([1.0, 2.0])), RecordId(7))
        .unwrap();
    tree.validate_strict().unwrap();
}
