//! Behavioural tests for the R-tree: inserts, deletes, queries, bulk
//! loading, and persistence, all cross-checked against brute force.

use nnq_geom::{Point, Rect};
use nnq_rtree::{BulkMethod, RTree, RTreeConfig, RecordId, SplitStrategy};
use nnq_storage::{BufferPool, FileDisk, MemDisk, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn mem_pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), frames))
}

fn random_points(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = Point::new([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]);
            (Rect::from_point(p), RecordId(i as u64))
        })
        .collect()
}

fn random_rects(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.random_range(0.0..1000.0);
            let y = rng.random_range(0.0..1000.0);
            let w = rng.random_range(0.0..5.0);
            let h = rng.random_range(0.0..5.0);
            (
                Rect::new(Point::new([x, y]), Point::new([x + w, y + h])),
                RecordId(i as u64),
            )
        })
        .collect()
}

fn brute_window(items: &[(Rect<2>, RecordId)], w: &Rect<2>) -> Vec<RecordId> {
    let mut ids: Vec<RecordId> = items
        .iter()
        .filter(|(r, _)| r.intersects(w))
        .map(|&(_, id)| id)
        .collect();
    ids.sort();
    ids
}

fn tree_window(tree: &RTree<2>, w: &Rect<2>) -> Vec<RecordId> {
    let mut ids: Vec<RecordId> = tree
        .window(w)
        .unwrap()
        .into_iter()
        .map(|(_, id)| id)
        .collect();
    ids.sort();
    ids
}

#[test]
fn empty_tree_behaves() {
    let tree = RTree::<2>::create(mem_pool(16), RTreeConfig::default()).unwrap();
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    assert!(tree.bounds().unwrap().is_empty());
    assert!(tree
        .window(&Rect::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0])))
        .unwrap()
        .is_empty());
    tree.validate_strict().unwrap();
}

#[test]
fn single_insert_and_query() {
    let tree = RTree::<2>::create(mem_pool(16), RTreeConfig::default()).unwrap();
    let r = Rect::from_point(Point::new([5.0, 5.0]));
    tree.insert(&r, RecordId(42)).unwrap();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.height(), 1);
    let hits = tree.point_query(&Point::new([5.0, 5.0])).unwrap();
    assert_eq!(hits, vec![(r, RecordId(42))]);
    assert!(tree
        .point_query(&Point::new([6.0, 5.0]))
        .unwrap()
        .is_empty());
    tree.validate_strict().unwrap();
}

#[test]
fn inserts_grow_a_valid_multilevel_tree() {
    for split in [
        SplitStrategy::Linear,
        SplitStrategy::Quadratic,
        SplitStrategy::RStar,
    ] {
        let mut cfg = RTreeConfig::with_split(split);
        cfg.max_entries_override = Some(8); // force depth
        let tree = RTree::<2>::create(mem_pool(4096), cfg).unwrap();
        let items = random_points(2000, 7);
        for (i, (r, id)) in items.iter().enumerate() {
            tree.insert(r, *id).unwrap();
            if i % 500 == 499 {
                tree.validate_strict()
                    .unwrap_or_else(|e| panic!("{split:?} after {i}: {e}"));
            }
        }
        assert_eq!(tree.len(), 2000);
        assert!(tree.height() >= 3, "{split:?} should build a deep tree");
        tree.validate_strict().unwrap();

        // Window queries match brute force.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let x = rng.random_range(0.0..900.0);
            let y = rng.random_range(0.0..900.0);
            let w = Rect::new(Point::new([x, y]), Point::new([x + 100.0, y + 60.0]));
            assert_eq!(
                tree_window(&tree, &w),
                brute_window(&items, &w),
                "split {split:?}"
            );
        }
    }
}

#[test]
fn rect_data_round_trips() {
    let tree = RTree::<2>::create(mem_pool(4096), RTreeConfig::for_testing(16)).unwrap();
    let items = random_rects(800, 21);
    for (r, id) in &items {
        tree.insert(r, *id).unwrap();
    }
    tree.validate_strict().unwrap();
    let mut scanned: Vec<RecordId> = tree.scan().unwrap().iter().map(|&(_, id)| id).collect();
    scanned.sort();
    let expected: Vec<RecordId> = (0..800).map(RecordId).collect();
    assert_eq!(scanned, expected);
}

#[test]
fn duplicate_rectangles_coexist() {
    let tree = RTree::<2>::create(mem_pool(256), RTreeConfig::for_testing(8)).unwrap();
    let r = Rect::from_point(Point::new([1.0, 1.0]));
    for i in 0..100 {
        tree.insert(&r, RecordId(i)).unwrap();
    }
    assert_eq!(tree.len(), 100);
    tree.validate_strict().unwrap();
    assert_eq!(
        tree.point_query(&Point::new([1.0, 1.0])).unwrap().len(),
        100
    );
    // Delete a specific duplicate.
    tree.delete(&r, RecordId(57)).unwrap();
    assert_eq!(tree.len(), 99);
    let ids: Vec<u64> = tree
        .point_query(&Point::new([1.0, 1.0]))
        .unwrap()
        .iter()
        .map(|(_, id)| id.0)
        .collect();
    assert!(!ids.contains(&57));
}

#[test]
fn delete_everything_in_random_order() {
    let tree = RTree::<2>::create(mem_pool(4096), RTreeConfig::for_testing(8)).unwrap();
    let mut items = random_points(1000, 3);
    for (r, id) in &items {
        tree.insert(r, *id).unwrap();
    }
    // Shuffle deletion order deterministically.
    let mut rng = StdRng::seed_from_u64(4);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
    for (i, (r, id)) in items.iter().enumerate() {
        tree.delete(r, *id).unwrap();
        if i % 100 == 99 {
            tree.validate()
                .unwrap_or_else(|e| panic!("after delete {i}: {e}"));
        }
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    tree.validate().unwrap();
    // The tree can be reused after emptying.
    tree.insert(&Rect::from_point(Point::new([0.0, 0.0])), RecordId(9999))
        .unwrap();
    assert_eq!(tree.len(), 1);
}

#[test]
fn delete_missing_entry_reports_not_found() {
    let tree = RTree::<2>::create(mem_pool(64), RTreeConfig::default()).unwrap();
    let r = Rect::from_point(Point::new([1.0, 1.0]));
    assert!(matches!(
        tree.delete(&r, RecordId(0)),
        Err(nnq_rtree::RTreeError::NotFound)
    ));
    tree.insert(&r, RecordId(0)).unwrap();
    // Right rect, wrong id.
    assert!(matches!(
        tree.delete(&r, RecordId(1)),
        Err(nnq_rtree::RTreeError::NotFound)
    ));
    // Wrong rect, right id.
    let other = Rect::from_point(Point::new([2.0, 2.0]));
    assert!(matches!(
        tree.delete(&other, RecordId(0)),
        Err(nnq_rtree::RTreeError::NotFound)
    ));
    assert_eq!(tree.len(), 1);
}

#[test]
fn interleaved_inserts_and_deletes_match_model() {
    let tree = RTree::<2>::create(mem_pool(4096), RTreeConfig::for_testing(8)).unwrap();
    let mut model: Vec<(Rect<2>, RecordId)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);
    let mut next_id = 0u64;
    for step in 0..3000 {
        if model.is_empty() || rng.random_bool(0.6) {
            let p = Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]);
            let r = Rect::from_point(p);
            tree.insert(&r, RecordId(next_id)).unwrap();
            model.push((r, RecordId(next_id)));
            next_id += 1;
        } else {
            let idx = rng.random_range(0..model.len());
            let (r, id) = model.swap_remove(idx);
            tree.delete(&r, id).unwrap();
        }
        if step % 500 == 499 {
            tree.validate().unwrap();
            assert_eq!(tree.len(), model.len() as u64);
            let w = Rect::new(Point::new([20.0, 20.0]), Point::new([60.0, 70.0]));
            assert_eq!(tree_window(&tree, &w), brute_window(&model, &w));
        }
    }
}

#[test]
fn bulk_load_str_and_hilbert_contain_all_items() {
    let items = random_rects(5000, 44);
    for method in [BulkMethod::Str, BulkMethod::Hilbert, BulkMethod::LowX] {
        let tree = RTree::<2>::bulk_load(
            mem_pool(4096),
            RTreeConfig::default(),
            items.clone(),
            method,
            1.0,
        )
        .unwrap();
        assert_eq!(tree.len(), 5000, "{method:?}");
        tree.validate()
            .unwrap_or_else(|e| panic!("{method:?}: {e}"));
        let mut ids: Vec<RecordId> = tree.scan().unwrap().iter().map(|&(_, id)| id).collect();
        ids.sort();
        assert_eq!(ids, (0..5000).map(RecordId).collect::<Vec<_>>());
        // Queries agree with brute force.
        let w = Rect::new(Point::new([100.0, 100.0]), Point::new([300.0, 250.0]));
        assert_eq!(
            tree_window(&tree, &w),
            brute_window(&items, &w),
            "{method:?}"
        );
        // Packed trees are dense: fill should be high.
        let stats = tree.stats().unwrap();
        assert!(
            stats.avg_fill > 0.85,
            "{method:?}: packed fill only {}",
            stats.avg_fill
        );
    }
}

#[test]
fn bulk_load_empty_and_tiny_inputs() {
    let tree = RTree::<2>::bulk_load(
        mem_pool(64),
        RTreeConfig::default(),
        Vec::new(),
        BulkMethod::Str,
        1.0,
    )
    .unwrap();
    assert!(tree.is_empty());
    tree.validate().unwrap();

    let tree = RTree::<2>::bulk_load(
        mem_pool(64),
        RTreeConfig::default(),
        random_points(1, 5),
        BulkMethod::Hilbert,
        1.0,
    )
    .unwrap();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.height(), 1);
    tree.validate().unwrap();
}

#[test]
fn bulk_loaded_tree_accepts_dynamic_updates() {
    let items = random_points(3000, 8);
    let tree = RTree::<2>::bulk_load(
        mem_pool(4096),
        RTreeConfig::default(),
        items.clone(),
        BulkMethod::Str,
        1.0,
    )
    .unwrap();
    for i in 0..500u64 {
        let p = Point::new([i as f64, 2000.0]);
        tree.insert(&Rect::from_point(p), RecordId(10_000 + i))
            .unwrap();
    }
    for (r, id) in &items[..500] {
        tree.delete(r, *id).unwrap();
    }
    assert_eq!(tree.len(), 3000);
    tree.validate().unwrap();
}

#[test]
fn persistence_across_reopen_on_file_disk() {
    let dir = std::env::temp_dir().join(format!("nnq-rtree-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.db");
    let items = random_points(2000, 77);

    let meta_page = {
        let disk = FileDisk::create(&path, PAGE_SIZE).unwrap();
        let pool = Arc::new(BufferPool::new(Box::new(disk), 256));
        let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::default()).unwrap();
        for (r, id) in &items {
            tree.insert(r, *id).unwrap();
        }
        pool.flush_all().unwrap();
        tree.meta_page()
    };

    let disk = FileDisk::open(&path, PAGE_SIZE).unwrap();
    let pool = Arc::new(BufferPool::new(Box::new(disk), 256));
    let tree = RTree::<2>::open(pool, meta_page).unwrap();
    assert_eq!(tree.len(), 2000);
    tree.validate_strict().unwrap();
    let w = Rect::new(Point::new([0.0, 0.0]), Point::new([250.0, 250.0]));
    assert_eq!(tree_window(&tree, &w), brute_window(&items, &w));
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_with_wrong_dimension_fails() {
    let pool = mem_pool(64);
    let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::default()).unwrap();
    let meta = tree.meta_page();
    drop(tree);
    assert!(RTree::<3>::open(pool, meta).is_err());
}

#[test]
fn corrupted_page_is_reported_not_panicked() {
    let pool = mem_pool(64);
    let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::default()).unwrap();
    for (r, id) in random_points(50, 1) {
        tree.insert(&r, id).unwrap();
    }
    // Smash the root page's magic number.
    let root = tree.root();
    {
        let mut guard = pool.fetch_write(root).unwrap();
        guard[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    }
    let err = tree.scan().unwrap_err();
    assert!(
        matches!(err, nnq_rtree::RTreeError::BadNode { .. }),
        "{err}"
    );
}

#[test]
fn three_dimensional_tree_works() {
    let tree = RTree::<3>::create(
        Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1024)),
        RTreeConfig::for_testing(8),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let items: Vec<(Rect<3>, RecordId)> = (0..700)
        .map(|i| {
            let p = Point::new([
                rng.random_range(0.0..10.0),
                rng.random_range(0.0..10.0),
                rng.random_range(0.0..10.0),
            ]);
            (Rect::from_point(p), RecordId(i))
        })
        .collect();
    for (r, id) in &items {
        tree.insert(r, *id).unwrap();
    }
    tree.validate_strict().unwrap();
    let w = Rect::new(Point::new([2.0, 2.0, 2.0]), Point::new([7.0, 7.0, 7.0]));
    let mut got: Vec<u64> = tree
        .window(&w)
        .unwrap()
        .iter()
        .map(|(_, id)| id.0)
        .collect();
    got.sort();
    let mut want: Vec<u64> = items
        .iter()
        .filter(|(r, _)| r.intersects(&w))
        .map(|(_, id)| id.0)
        .collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn tree_stats_reflect_structure() {
    let tree = RTree::<2>::create(mem_pool(4096), RTreeConfig::for_testing(8)).unwrap();
    for (r, id) in random_points(1000, 11) {
        tree.insert(&r, id).unwrap();
    }
    let s = tree.stats().unwrap();
    assert_eq!(s.height, tree.height());
    assert_eq!(s.data_entries, 1000);
    assert_eq!(s.nodes_per_level.len(), tree.height() as usize);
    assert_eq!(s.nodes_per_level[0], s.leaves);
    assert_eq!(s.nodes_per_level.iter().sum::<u64>(), s.nodes);
    assert!(s.avg_fill > 0.3 && s.avg_fill <= 1.0);
    // The root level has exactly one node.
    assert_eq!(*s.nodes_per_level.last().unwrap(), 1);
}

#[test]
fn rstar_builds_lower_overlap_than_linear() {
    // Index-quality sanity check used later by experiment E7: R* should
    // produce less sibling overlap than the linear split on clustered data.
    let mut rng = StdRng::seed_from_u64(31);
    let items: Vec<(Rect<2>, RecordId)> = (0..4000)
        .map(|i| {
            let cx = f64::from(i % 20) * 50.0;
            let cy = f64::from(i % 17) * 60.0;
            let p = Point::new([
                cx + rng.random_range(0.0..10.0),
                cy + rng.random_range(0.0..10.0),
            ]);
            (Rect::from_point(p), RecordId(i as u64))
        })
        .collect();
    let overlap = |split: SplitStrategy| -> f64 {
        let mut cfg = RTreeConfig::with_split(split);
        cfg.max_entries_override = Some(16);
        let tree = RTree::<2>::create(mem_pool(8192), cfg).unwrap();
        for (r, id) in &items {
            tree.insert(r, *id).unwrap();
        }
        tree.validate_strict().unwrap();
        tree.stats().unwrap().overlap_per_level.iter().sum()
    };
    let lin = overlap(SplitStrategy::Linear);
    let rstar = overlap(SplitStrategy::RStar);
    assert!(
        rstar < lin,
        "R* overlap {rstar} should beat linear overlap {lin}"
    );
}
