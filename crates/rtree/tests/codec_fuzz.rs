//! Fuzz-style property test: decoding arbitrary page bytes must never
//! panic — it either produces a valid node or a structured error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        // Accessible only through the public path: write raw bytes into a
        // page and read the node back through the tree.
        use nnq_rtree::{RTree, RTreeConfig, RecordId};
        use nnq_storage::{BufferPool, MemDisk};
        use nnq_geom::{Point, Rect};
        use std::sync::Arc;

        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(4096)), 16));
        let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::default()).unwrap();
        tree.insert(&Rect::from_point(Point::new([0.0, 0.0])), RecordId(0)).unwrap();
        let root = tree.root();
        {
            let mut guard = pool.fetch_write(root).unwrap();
            let n = bytes.len().min(guard.len());
            guard[..n].copy_from_slice(&bytes[..n]);
        }
        // Any outcome is fine except a panic.
        let _ = tree.read_node(root);
        let _ = tree.scan();
        let _ = tree.validate();
        let _ = nnq_core::NnSearch::new(&tree).query(&Point::new([1.0, 1.0]), 3);
    }

    #[test]
    fn open_arbitrary_meta_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        use nnq_rtree::RTree;
        use nnq_storage::{BufferPool, MemDisk};
        use std::sync::Arc;

        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(4096)), 16));
        let (page, mut guard) = pool.new_page().unwrap();
        let n = bytes.len().min(guard.len());
        guard[..n].copy_from_slice(&bytes[..n]);
        drop(guard);
        let _ = RTree::<2>::open(pool, page);
    }
}
