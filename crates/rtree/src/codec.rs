//! On-page serialization of R-tree nodes and the tree meta page.
//!
//! Every node occupies one page:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  0x4E4E5154 ("NNQT")
//! 4       2     level  (0 = leaf)
//! 6       2     entry count
//! 8       ...   entries, each 16*D + 8 bytes:
//!               D little-endian f64 lo coords,
//!               D little-endian f64 hi coords,
//!               u64 pointer (child page or record id)
//! ```
//!
//! The meta page (page 0 of the tree's storage) records the root pointer,
//! height, entry count, and the configuration needed to reopen the tree.

use crate::config::{RTreeConfig, SplitStrategy};
use crate::entry::Entry;
use crate::{RTreeError, Result};
use bytes::{Buf, BufMut};
use nnq_geom::{Point, Rect, SoaRects};
use nnq_storage::PageId;

const NODE_MAGIC: u32 = 0x4E4E_5154;
const META_MAGIC: u32 = 0x4E4E_514D;
const META_VERSION: u16 = 1;
const NODE_HEADER: usize = 8;

/// Size in bytes of one serialized entry for dimension `D`.
pub const fn entry_size(dims: usize) -> usize {
    16 * dims + 8
}

/// Maximum number of entries a node page can hold for the given page size
/// and dimensionality.
///
/// With the default 4 KiB pages and `D = 2` this is 102, giving the shallow
/// high-fanout trees typical of disk-resident spatial indexes.
pub const fn node_capacity(page_size: usize, dims: usize) -> usize {
    (page_size - NODE_HEADER) / entry_size(dims)
}

/// A decoded node as exchanged with a [`crate::NodeStore`]: its level
/// (0 = leaf) and entries.
///
/// Stores hand these out behind `Arc`s (see [`crate::NodeStore::read`]),
/// so a decoded node is immutable once published.
///
/// Alongside the entry array, every node carries a [`SoaRects`] transpose
/// of its entry MBRs, built once at construction — i.e. once per decode /
/// cache fill, not per visit. The batched distance kernels in `nnq-geom`
/// read that view; see [`RawNode::soa`].
#[derive(Clone, Debug)]
pub struct RawNode<const D: usize> {
    /// Node level (0 = leaf).
    pub level: u16,
    /// The node's entries.
    pub entries: Vec<Entry<D>>,
    /// Axis-major view of the entry MBRs, kept in sync with `entries` by
    /// construction (nodes are immutable once published).
    soa: SoaRects<D>,
}

impl<const D: usize> RawNode<D> {
    /// Builds a node, transposing the entry MBRs into the cached
    /// struct-of-arrays view.
    pub fn new(level: u16, entries: Vec<Entry<D>>) -> Self {
        let soa = SoaRects::from_rects(entries.iter().map(|e| &e.mbr));
        Self {
            level,
            entries,
            soa,
        }
    }

    /// The struct-of-arrays view of the entry MBRs, in entry order.
    #[inline]
    pub fn soa(&self) -> &SoaRects<D> {
        &self.soa
    }
}

/// Serializes a node into `page` (which must be zero-padded page bytes).
pub(crate) fn encode_node<const D: usize>(page: &mut [u8], level: u16, entries: &[Entry<D>]) {
    debug_assert!(entries.len() <= node_capacity(page.len(), D));
    debug_assert!(entries.len() <= u16::MAX as usize);
    let mut buf = &mut page[..];
    buf.put_u32_le(NODE_MAGIC);
    buf.put_u16_le(level);
    buf.put_u16_le(entries.len() as u16);
    for e in entries {
        for i in 0..D {
            buf.put_f64_le(e.mbr.lo()[i]);
        }
        for i in 0..D {
            buf.put_f64_le(e.mbr.hi()[i]);
        }
        buf.put_u64_le(e.ptr);
    }
}

/// Decodes a node from page bytes, validating the header and the MBRs.
pub(crate) fn decode_node<const D: usize>(page_id: PageId, page: &[u8]) -> Result<RawNode<D>> {
    let bad = |reason: String| RTreeError::BadNode {
        page: page_id,
        reason,
    };
    if page.len() < NODE_HEADER {
        return Err(bad("page shorter than node header".into()));
    }
    let mut buf = page;
    let magic = buf.get_u32_le();
    if magic != NODE_MAGIC {
        return Err(bad(format!("bad magic {magic:#010x}")));
    }
    let level = buf.get_u16_le();
    let count = buf.get_u16_le() as usize;
    let cap = node_capacity(page.len(), D);
    if count > cap {
        return Err(bad(format!("entry count {count} exceeds capacity {cap}")));
    }
    let mut entries = Vec::with_capacity(count);
    for idx in 0..count {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for c in lo.iter_mut() {
            *c = buf.get_f64_le();
        }
        for c in hi.iter_mut() {
            *c = buf.get_f64_le();
        }
        let ptr = buf.get_u64_le();
        let ordered_and_finite = lo
            .iter()
            .zip(hi.iter())
            .all(|(l, h)| l.is_finite() && h.is_finite() && l <= h);
        if !ordered_and_finite {
            return Err(bad(format!("entry {idx} has an invalid MBR")));
        }
        let mbr = Rect::from_sorted(Point::new(lo), Point::new(hi));
        entries.push(Entry { mbr, ptr });
    }
    Ok(RawNode::new(level, entries))
}

/// Persistent metadata describing the tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Meta {
    /// Dimensionality of the indexed rectangles.
    pub dims: u16,
    /// Root node handle ([`PageId::INVALID`] when empty).
    pub root: PageId,
    /// Number of levels; 0 means the tree is empty (no root page).
    pub height: u32,
    /// Number of data entries.
    pub count: u64,
    /// The tree's configuration.
    pub config: RTreeConfig,
}

pub(crate) fn encode_meta(page: &mut [u8], meta: &Meta) {
    let mut buf = &mut page[..];
    buf.put_u32_le(META_MAGIC);
    buf.put_u16_le(META_VERSION);
    buf.put_u16_le(meta.dims);
    buf.put_u64_le(meta.root.0);
    buf.put_u32_le(meta.height);
    buf.put_u64_le(meta.count);
    buf.put_u8(meta.config.split as u8);
    buf.put_u8((meta.config.min_fill * 100.0).round() as u8);
    buf.put_u8((meta.config.reinsert_fraction * 100.0).round() as u8);
    buf.put_u16_le(meta.config.max_entries_override.unwrap_or(0) as u16);
}

pub(crate) fn decode_meta(page_id: PageId, page: &[u8]) -> Result<Meta> {
    let bad = |reason: String| RTreeError::BadNode {
        page: page_id,
        reason,
    };
    if page.len() < 33 {
        return Err(bad("page shorter than meta header".into()));
    }
    let mut buf = page;
    let magic = buf.get_u32_le();
    if magic != META_MAGIC {
        return Err(bad(format!("bad meta magic {magic:#010x}")));
    }
    let version = buf.get_u16_le();
    if version != META_VERSION {
        return Err(bad(format!("unsupported meta version {version}")));
    }
    let dims = buf.get_u16_le();
    let root = PageId(buf.get_u64_le());
    let height = buf.get_u32_le();
    let count = buf.get_u64_le();
    let split = match buf.get_u8() {
        0 => SplitStrategy::Linear,
        1 => SplitStrategy::Quadratic,
        2 => SplitStrategy::RStar,
        other => return Err(bad(format!("unknown split strategy {other}"))),
    };
    let min_fill = f64::from(buf.get_u8()) / 100.0;
    let reinsert_fraction = f64::from(buf.get_u8()) / 100.0;
    let over = buf.get_u16_le();
    Ok(Meta {
        dims,
        root,
        height,
        count,
        config: RTreeConfig {
            split,
            min_fill,
            reinsert_fraction,
            max_entries_override: if over == 0 { None } else { Some(over as usize) },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RecordId;

    fn rect(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn capacity_for_default_page() {
        // (4096 - 8) / 40 = 102 entries for D=2.
        assert_eq!(node_capacity(4096, 2), 102);
        // (4096 - 8) / 56 = 73 entries for D=3.
        assert_eq!(node_capacity(4096, 3), 73);
    }

    #[test]
    fn node_roundtrip() {
        let entries: Vec<Entry<2>> = (0..10)
            .map(|i| {
                let f = i as f64;
                Entry::for_record(rect([f, -f], [f + 1.0, f * 2.0]), RecordId(i * 3))
            })
            .collect();
        let mut page = vec![0u8; 1024];
        encode_node(&mut page, 3, &entries);
        let raw = decode_node::<2>(PageId(0), &page).unwrap();
        assert_eq!(raw.level, 3);
        assert_eq!(raw.entries, entries);
    }

    #[test]
    fn empty_node_roundtrip() {
        let mut page = vec![0u8; 256];
        encode_node::<2>(&mut page, 0, &[]);
        let raw = decode_node::<2>(PageId(0), &page).unwrap();
        assert_eq!(raw.level, 0);
        assert!(raw.entries.is_empty());
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let page = vec![0u8; 256];
        assert!(matches!(
            decode_node::<2>(PageId(1), &page),
            Err(RTreeError::BadNode { .. })
        ));
    }

    #[test]
    fn decode_rejects_overfull_count() {
        let mut page = vec![0u8; 256];
        encode_node::<2>(&mut page, 0, &[]);
        // Forge an impossible count.
        page[6] = 0xFF;
        page[7] = 0xFF;
        assert!(decode_node::<2>(PageId(1), &page).is_err());
    }

    #[test]
    fn decode_rejects_nan_mbr() {
        let e = Entry::for_record(rect([0.0, 0.0], [1.0, 1.0]), RecordId(1));
        let mut page = vec![0u8; 256];
        encode_node(&mut page, 0, &[e]);
        // Corrupt the first coordinate with a NaN bit pattern.
        page[8..16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_node::<2>(PageId(1), &page).is_err());
    }

    #[test]
    fn meta_roundtrip() {
        let meta = Meta {
            dims: 2,
            root: PageId(17),
            height: 3,
            count: 123_456,
            config: RTreeConfig {
                split: SplitStrategy::RStar,
                min_fill: 0.4,
                reinsert_fraction: 0.3,
                max_entries_override: Some(16),
            },
        };
        let mut page = vec![0u8; 64];
        encode_meta(&mut page, &meta);
        let got = decode_meta(PageId(0), &page).unwrap();
        assert_eq!(got, meta);
    }

    #[test]
    fn meta_rejects_garbage() {
        let page = vec![0xAB; 64];
        assert!(decode_meta(PageId(0), &page).is_err());
    }
}
