//! A disk-based R-tree, the index substrate of RKV'95.
//!
//! The paper's nearest-neighbor algorithm searches a classical R-tree
//! [Guttman, SIGMOD 1984] stored on fixed-size disk pages. This crate
//! implements that index from scratch on top of the `nnq-storage` buffer
//! pool:
//!
//! * **Dynamic insertion** with a choice of node-split algorithms:
//!   Guttman's linear and quadratic splits (the quadratic split is the
//!   paper-era default) and the R\*-tree split with forced reinsertion
//!   [Beckmann et al., SIGMOD 1990].
//! * **Deletion** with Guttman's condense-tree and orphan reinsertion.
//! * **Bulk loading** ("packed" R-trees — pioneered by Roussopoulos's
//!   group): sort-tile-recursive (STR) and Hilbert-curve packing.
//! * **Window, point, and scan queries**, plus the raw node-navigation API
//!   ([`RTree::read_node`]) that the branch-and-bound nearest-neighbor
//!   search in `nnq-core` drives.
//! * **Validation** ([`RTree::validate`]) of every structural invariant and
//!   [`TreeStats`] describing the built tree.
//!
//! One tree node occupies exactly one disk page; with the default 4 KiB
//! pages and 2-D rectangles the fanout is 102. Trees persist across
//! process restarts when built on a [`nnq_storage::FileDisk`].
//!
//! # Example
//!
//! ```
//! use nnq_rtree::{RTree, RTreeConfig, RecordId};
//! use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
//! use nnq_geom::{Point, Rect};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 256));
//! let mut tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
//! for i in 0..1000u64 {
//!     let p = Point::new([i as f64, (i * 7 % 1000) as f64]);
//!     tree.insert(&Rect::from_point(p), RecordId(i)).unwrap();
//! }
//! assert_eq!(tree.len(), 1000);
//! let hits = tree
//!     .window(&Rect::new(Point::new([0.0, 0.0]), Point::new([10.0, 1000.0])))
//!     .unwrap();
//! assert_eq!(hits.len(), 11); // x = 0..=10
//! tree.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod codec;
mod config;
mod entry;
mod iter;
mod partition;
mod split;
mod store;
mod tree;
mod validate;

pub use bulk::BulkMethod;
pub use codec::{node_capacity, Meta, RawNode};
pub use config::{RTreeConfig, SplitStrategy};
pub use entry::{Entry, RecordId};
pub use iter::WindowIter;
pub use partition::{hilbert_split, PartitionManifest, PartitionMeta, PartitionedTree};
pub use store::{BackendSignals, NodeCacheStats};
pub use store::{MemStore, NodeStore, PagedStore};
pub use tree::{MemRTree, NodeView, RTree, Snapshot, TreeAccess};
pub use validate::TreeStats;

/// Errors produced by R-tree operations.
///
/// Storage failures are passed through; structural problems discovered
/// while decoding pages or validating the tree get their own variants.
#[derive(Debug)]
pub enum RTreeError {
    /// An error from the storage layer.
    Storage(nnq_storage::StorageError),
    /// A page did not contain a well-formed node.
    BadNode {
        /// The page that failed to decode.
        page: nnq_storage::PageId,
        /// What was wrong.
        reason: String,
    },
    /// `validate()` found a violated invariant.
    Invalid(String),
    /// A delete did not find the requested entry.
    NotFound,
}

impl std::fmt::Display for RTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTreeError::Storage(e) => write!(f, "storage: {e}"),
            RTreeError::BadNode { page, reason } => {
                write!(f, "bad node on {page}: {reason}")
            }
            RTreeError::Invalid(msg) => write!(f, "invalid tree: {msg}"),
            RTreeError::NotFound => write!(f, "entry not found"),
        }
    }
}

impl std::error::Error for RTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RTreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nnq_storage::StorageError> for RTreeError {
    fn from(e: nnq_storage::StorageError) -> Self {
        RTreeError::Storage(e)
    }
}

/// Convenience alias for R-tree results.
pub type Result<T> = std::result::Result<T, RTreeError>;
