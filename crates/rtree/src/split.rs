//! Node-split algorithms: Guttman linear, Guttman quadratic, and R\*.
//!
//! A split receives the `M + 1` entries of an overflowing node and
//! partitions them into two groups, each holding at least `m` entries.
//! The algorithms differ only in how they pick the partition:
//!
//! * **Linear** — cheap seed choice by normalized separation, then greedy
//!   least-enlargement assignment.
//! * **Quadratic** — seed pair maximizing dead area, then repeatedly assign
//!   the entry with the greatest preference for one group.
//! * **R\*** — choose the split *axis* by minimum margin sum, then the
//!   distribution on that axis by minimum overlap (ties: minimum area).

use crate::config::SplitStrategy;
use crate::entry::{entries_mbr, Entry};
use nnq_geom::Rect;

/// Splits `entries` (length `M + 1`) into two groups of at least
/// `min_entries` each, using the given strategy.
pub(crate) fn split_entries<const D: usize>(
    strategy: SplitStrategy,
    entries: Vec<Entry<D>>,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    debug_assert!(entries.len() >= 2 * min_entries);
    let (a, b) = match strategy {
        SplitStrategy::Linear => linear_split(entries, min_entries),
        SplitStrategy::Quadratic => quadratic_split(entries, min_entries),
        SplitStrategy::RStar => rstar_split(entries, min_entries),
    };
    debug_assert!(a.len() >= min_entries && b.len() >= min_entries);
    (a, b)
}

// ---------------------------------------------------------------------------
// Guttman linear split
// ---------------------------------------------------------------------------

fn linear_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    // PickSeeds (linear): per dimension, the entry with the highest low side
    // and the one with the lowest high side; normalize their separation by
    // the total width; take the dimension with the greatest value.
    let total = entries_mbr(&entries);
    let mut best_dim = 0;
    let mut best_sep = f64::NEG_INFINITY;
    let mut best_pair = (0usize, 1usize);
    for dim in 0..D {
        let width = total.extent(dim).max(f64::MIN_POSITIVE);
        let (mut hi_lo_idx, mut lo_hi_idx) = (0usize, 0usize);
        for (i, e) in entries.iter().enumerate() {
            if e.mbr.lo()[dim] > entries[hi_lo_idx].mbr.lo()[dim] {
                hi_lo_idx = i;
            }
            if e.mbr.hi()[dim] < entries[lo_hi_idx].mbr.hi()[dim] {
                lo_hi_idx = i;
            }
        }
        let sep = (entries[hi_lo_idx].mbr.lo()[dim] - entries[lo_hi_idx].mbr.hi()[dim]) / width;
        if sep > best_sep && hi_lo_idx != lo_hi_idx {
            best_sep = sep;
            best_dim = dim;
            best_pair = (hi_lo_idx, lo_hi_idx);
        }
    }
    let _ = best_dim;
    let (s1, s2) = if best_pair.0 == best_pair.1 {
        (0, 1) // degenerate data: any two distinct entries
    } else {
        best_pair
    };
    distribute_greedy(entries, s1, s2, min_entries)
}

// ---------------------------------------------------------------------------
// Guttman quadratic split
// ---------------------------------------------------------------------------

fn quadratic_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    // PickSeeds (quadratic): the pair wasting the most area if grouped.
    let mut best = f64::NEG_INFINITY;
    let (mut s1, mut s2) = (0usize, 1usize);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].mbr.union(&entries[j].mbr).area()
                - entries[i].mbr.area()
                - entries[j].mbr.area();
            if waste > best {
                best = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    distribute_quadratic(entries, s1, s2, min_entries)
}

/// Guttman's PickNext loop: repeatedly assign the entry with the greatest
/// preference (difference of enlargements) to its preferred group.
fn distribute_quadratic<const D: usize>(
    entries: Vec<Entry<D>>,
    s1: usize,
    s2: usize,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let n = entries.len();
    let mut remaining: Vec<Entry<D>> = Vec::with_capacity(n - 2);
    let mut g1 = Vec::with_capacity(n);
    let mut g2 = Vec::with_capacity(n);
    for (i, e) in entries.into_iter().enumerate() {
        if i == s1 {
            g1.push(e);
        } else if i == s2 {
            g2.push(e);
        } else {
            remaining.push(e);
        }
    }
    let mut mbr1 = g1[0].mbr;
    let mut mbr2 = g2[0].mbr;

    while !remaining.is_empty() {
        // If one group must absorb everything left to reach min fill, do so.
        if g1.len() + remaining.len() == min_entries {
            for e in remaining.drain(..) {
                mbr1.union_in_place(&e.mbr);
                g1.push(e);
            }
            break;
        }
        if g2.len() + remaining.len() == min_entries {
            for e in remaining.drain(..) {
                mbr2.union_in_place(&e.mbr);
                g2.push(e);
            }
            break;
        }
        // PickNext: maximize |d1 - d2|.
        let mut best_idx = 0;
        let mut best_pref = f64::NEG_INFINITY;
        let mut best_d = (0.0, 0.0);
        for (i, e) in remaining.iter().enumerate() {
            let d1 = mbr1.enlargement(&e.mbr);
            let d2 = mbr2.enlargement(&e.mbr);
            let pref = (d1 - d2).abs();
            if pref > best_pref {
                best_pref = pref;
                best_idx = i;
                best_d = (d1, d2);
            }
        }
        let e = remaining.swap_remove(best_idx);
        let to_first = pick_group(best_d, &mbr1, &mbr2, g1.len(), g2.len());
        if to_first {
            mbr1.union_in_place(&e.mbr);
            g1.push(e);
        } else {
            mbr2.union_in_place(&e.mbr);
            g2.push(e);
        }
    }
    (g1, g2)
}

/// Linear-split distribution: entries are assigned in input order by least
/// enlargement, with the same min-fill backstop as the quadratic loop.
fn distribute_greedy<const D: usize>(
    entries: Vec<Entry<D>>,
    s1: usize,
    s2: usize,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let n = entries.len();
    let mut remaining: Vec<Entry<D>> = Vec::with_capacity(n - 2);
    let mut g1 = Vec::with_capacity(n);
    let mut g2 = Vec::with_capacity(n);
    for (i, e) in entries.into_iter().enumerate() {
        if i == s1 {
            g1.push(e);
        } else if i == s2 {
            g2.push(e);
        } else {
            remaining.push(e);
        }
    }
    let mut mbr1 = g1[0].mbr;
    let mut mbr2 = g2[0].mbr;
    for e in remaining.into_iter() {
        // Min-fill backstop is handled by counting what's left implicitly:
        // greedy assignment plus a final rebalance below keeps it simpler
        // for the linear variant.
        let d1 = mbr1.enlargement(&e.mbr);
        let d2 = mbr2.enlargement(&e.mbr);
        if pick_group((d1, d2), &mbr1, &mbr2, g1.len(), g2.len()) {
            mbr1.union_in_place(&e.mbr);
            g1.push(e);
        } else {
            mbr2.union_in_place(&e.mbr);
            g2.push(e);
        }
    }
    rebalance_min_fill(&mut g1, &mut g2, min_entries);
    (g1, g2)
}

/// Moves trailing entries between groups until both meet min fill.
fn rebalance_min_fill<const D: usize>(
    g1: &mut Vec<Entry<D>>,
    g2: &mut Vec<Entry<D>>,
    min_entries: usize,
) {
    while g1.len() < min_entries {
        let e = g2.pop().expect("split groups cannot both underflow");
        g1.push(e);
    }
    while g2.len() < min_entries {
        let e = g1.pop().expect("split groups cannot both underflow");
        g2.push(e);
    }
}

/// Tie-broken group choice: smaller enlargement, then smaller area, then
/// fewer entries. Returns `true` for group 1.
fn pick_group<const D: usize>(
    (d1, d2): (f64, f64),
    mbr1: &Rect<D>,
    mbr2: &Rect<D>,
    n1: usize,
    n2: usize,
) -> bool {
    if d1 < d2 {
        true
    } else if d2 < d1 {
        false
    } else if mbr1.area() < mbr2.area() {
        true
    } else if mbr2.area() < mbr1.area() {
        false
    } else {
        n1 <= n2
    }
}

// ---------------------------------------------------------------------------
// R* split
// ---------------------------------------------------------------------------

fn rstar_split<const D: usize>(
    mut entries: Vec<Entry<D>>,
    min_entries: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let n = entries.len();
    let max_k = n - min_entries;

    // ChooseSplitAxis: for each axis, S = sum of margins of all valid
    // distributions over both sortings (by lo, then by hi).
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for sort_by_hi in [false, true] {
            sort_axis(&mut entries, axis, sort_by_hi);
            for k in min_entries..=max_k {
                let left = entries_mbr(&entries[..k]);
                let right = entries_mbr(&entries[k..]);
                margin_sum += left.margin() + right.margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex: on the chosen axis, minimize overlap
    // (tie: minimize combined area) over both sortings.
    let mut best: Option<(bool, usize, f64, f64)> = None;
    for sort_by_hi in [false, true] {
        sort_axis(&mut entries, best_axis, sort_by_hi);
        for k in min_entries..=max_k {
            let left = entries_mbr(&entries[..k]);
            let right = entries_mbr(&entries[k..]);
            let overlap = left.overlap_area(&right);
            let area = left.area() + right.area();
            let better = match &best {
                None => true,
                Some((_, _, bo, ba)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((sort_by_hi, k, overlap, area));
            }
        }
    }
    let (sort_by_hi, k, _, _) = best.expect("at least one distribution exists");
    sort_axis(&mut entries, best_axis, sort_by_hi);
    let right = entries.split_off(k);
    (entries, right)
}

fn sort_axis<const D: usize>(entries: &mut [Entry<D>], axis: usize, by_hi: bool) {
    if by_hi {
        entries.sort_by(|a, b| a.mbr.hi()[axis].total_cmp(&b.mbr.hi()[axis]));
    } else {
        entries.sort_by(|a, b| a.mbr.lo()[axis].total_cmp(&b.mbr.lo()[axis]));
    }
}

/// R\* forced reinsertion: removes the `p` entries whose centers are
/// farthest from the node MBR's center and returns them sorted
/// closest-first (the paper's "close reinsert").
pub(crate) fn take_reinsert_victims<const D: usize>(
    entries: &mut Vec<Entry<D>>,
    p: usize,
) -> Vec<Entry<D>> {
    debug_assert!(p < entries.len());
    let center = entries_mbr(entries).center();
    entries.sort_by(|a, b| {
        let da = a.mbr.center().dist_sq(&center);
        let db = b.mbr.center().dist_sq(&center);
        da.total_cmp(&db)
    });
    // Farthest p entries are at the tail; reinsert closest-first.
    entries.split_off(entries.len() - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RecordId;
    use nnq_geom::Point;

    fn point_entries(coords: &[[f64; 2]]) -> Vec<Entry<2>> {
        coords
            .iter()
            .enumerate()
            .map(|(i, c)| Entry::for_record(Rect::from_point(Point::new(*c)), RecordId(i as u64)))
            .collect()
    }

    fn check_partition(
        strategy: SplitStrategy,
        entries: Vec<Entry<2>>,
        min_entries: usize,
    ) -> (Vec<Entry<2>>, Vec<Entry<2>>) {
        let n = entries.len();
        let ids: std::collections::BTreeSet<u64> = entries.iter().map(|e| e.ptr).collect();
        let (a, b) = split_entries(strategy, entries, min_entries);
        assert_eq!(a.len() + b.len(), n, "{strategy:?}: entries lost");
        assert!(a.len() >= min_entries, "{strategy:?}: group 1 underfull");
        assert!(b.len() >= min_entries, "{strategy:?}: group 2 underfull");
        let got: std::collections::BTreeSet<u64> =
            a.iter().chain(b.iter()).map(|e| e.ptr).collect();
        assert_eq!(got, ids, "{strategy:?}: ids changed");
        (a, b)
    }

    fn two_clusters() -> Vec<[f64; 2]> {
        let mut coords = Vec::new();
        for i in 0..5 {
            coords.push([i as f64 * 0.1, i as f64 * 0.1]);
        }
        for i in 0..5 {
            coords.push([100.0 + i as f64 * 0.1, 100.0 + i as f64 * 0.1]);
        }
        coords
    }

    #[test]
    fn all_strategies_separate_two_obvious_clusters() {
        for strategy in [
            SplitStrategy::Linear,
            SplitStrategy::Quadratic,
            SplitStrategy::RStar,
        ] {
            let (a, b) = check_partition(strategy, point_entries(&two_clusters()), 3);
            // Each cluster should end up wholly in one group.
            let mbr_a = entries_mbr(&a);
            let mbr_b = entries_mbr(&b);
            assert_eq!(
                mbr_a.overlap_area(&mbr_b),
                0.0,
                "{strategy:?}: clusters were mixed"
            );
            assert_eq!(a.len(), 5);
            assert_eq!(b.len(), 5);
        }
    }

    #[test]
    fn splits_handle_identical_points() {
        // Degenerate data: every point identical — split must still satisfy
        // min fill and preserve all entries.
        let coords = vec![[1.0, 1.0]; 9];
        for strategy in [
            SplitStrategy::Linear,
            SplitStrategy::Quadratic,
            SplitStrategy::RStar,
        ] {
            check_partition(strategy, point_entries(&coords), 4);
        }
    }

    #[test]
    fn splits_handle_collinear_points() {
        let coords: Vec<[f64; 2]> = (0..11).map(|i| [i as f64, 0.0]).collect();
        for strategy in [
            SplitStrategy::Linear,
            SplitStrategy::Quadratic,
            SplitStrategy::RStar,
        ] {
            let (a, b) = check_partition(strategy, point_entries(&coords), 4);
            // A sane split of collinear points separates a prefix from a
            // suffix: group MBRs should overlap at most at a point.
            let overlap = entries_mbr(&a).overlap_area(&entries_mbr(&b));
            assert_eq!(overlap, 0.0, "{strategy:?}");
        }
    }

    #[test]
    fn rstar_split_minimizes_overlap_on_grid() {
        // A 4x3 grid of unit boxes: the R* split should produce two groups
        // with zero overlap.
        let mut entries = Vec::new();
        for x in 0..4 {
            for y in 0..3 {
                let lo = Point::new([x as f64 * 2.0, y as f64 * 2.0]);
                let hi = Point::new([x as f64 * 2.0 + 1.0, y as f64 * 2.0 + 1.0]);
                entries.push(Entry::for_record(
                    Rect::new(lo, hi),
                    RecordId((x * 3 + y) as u64),
                ));
            }
        }
        let (a, b) = split_entries(SplitStrategy::RStar, entries, 4);
        assert_eq!(entries_mbr(&a).overlap_area(&entries_mbr(&b)), 0.0);
    }

    #[test]
    fn reinsert_victims_are_the_farthest() {
        let coords = [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [100.0, 100.0], // clear outlier
        ];
        let mut entries = point_entries(&coords);
        let victims = take_reinsert_victims(&mut entries, 1);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].record(), RecordId(4));
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn reinsert_victims_sorted_closest_first() {
        // Node MBR spans [0,100]^2, so its center is (50,50); the victims
        // are the entries farthest from that center: the two opposite
        // corners (records 0 and 4).
        let coords = [
            [0.0, 0.0],
            [40.0, 40.0],
            [60.0, 40.0],
            [55.0, 55.0],
            [100.0, 100.0],
        ];
        let mut entries = point_entries(&coords);
        let victims = take_reinsert_victims(&mut entries, 2);
        let got: std::collections::BTreeSet<u64> = victims.iter().map(|e| e.ptr).collect();
        assert_eq!(got, [0u64, 4].into_iter().collect());
        // Survivors are the three central points.
        let kept: std::collections::BTreeSet<u64> = entries.iter().map(|e| e.ptr).collect();
        assert_eq!(kept, [1u64, 2, 3].into_iter().collect());
    }
}
