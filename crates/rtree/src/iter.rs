//! Streaming queries: iterate window-query results without materializing
//! the full result vector, plus whole-tree entry iteration.

use crate::entry::{Entry, RecordId};
use crate::store::NodeStore;
use crate::tree::RTree;
use crate::Result;
use nnq_geom::{Point, Rect};
use nnq_storage::PageId;

/// A lazy window-query iterator: nodes are read as the iterator advances,
/// so taking only the first few matches touches only the pages needed to
/// produce them.
///
/// Yields `Result` items because each step may read a page.
pub struct WindowIter<'t, const D: usize, S> {
    tree: &'t RTree<D, S>,
    window: Rect<D>,
    /// Nodes still to visit.
    stack: Vec<PageId>,
    /// Matching entries of the current leaf, pending emission.
    pending: Vec<Entry<D>>,
    /// Nodes read so far (page accesses attributable to this iterator).
    nodes_read: u64,
}

impl<'t, const D: usize, S: NodeStore<D>> WindowIter<'t, D, S> {
    pub(crate) fn new(tree: &'t RTree<D, S>, window: Rect<D>) -> Self {
        let stack = match tree.root() {
            root if root.is_valid() => vec![root],
            _ => Vec::new(),
        };
        Self {
            tree,
            window,
            stack,
            pending: Vec::new(),
            nodes_read: 0,
        }
    }

    /// Number of tree nodes this iterator has read so far.
    pub fn nodes_read(&self) -> u64 {
        self.nodes_read
    }
}

impl<const D: usize, S: NodeStore<D>> Iterator for WindowIter<'_, D, S> {
    type Item = Result<(Rect<D>, RecordId)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.pop() {
                return Some(Ok((e.mbr, e.record())));
            }
            let page = self.stack.pop()?;
            let node = match self.tree.read_node(page) {
                Ok(n) => n,
                Err(e) => return Some(Err(e)),
            };
            self.nodes_read += 1;
            if node.is_leaf() {
                self.pending.extend(
                    node.entries()
                        .iter()
                        .filter(|e| e.mbr.intersects(&self.window))
                        .copied(),
                );
            } else {
                for e in node.entries() {
                    if e.mbr.intersects(&self.window) {
                        self.stack.push(e.child());
                    }
                }
            }
        }
    }
}

impl<const D: usize, S: NodeStore<D>> RTree<D, S> {
    /// Returns a lazy iterator over all entries intersecting `window`
    /// (see [`WindowIter`]). [`RTree::window`] is the materializing
    /// equivalent.
    pub fn window_iter(&self, window: Rect<D>) -> WindowIter<'_, D, S> {
        WindowIter::new(self, window)
    }

    /// Returns a lazy iterator over every entry in the tree.
    pub fn iter(&self) -> WindowIter<'_, D, S> {
        self.window_iter(Rect::from_sorted(
            Point::new([f64::NEG_INFINITY; D]),
            Point::new([f64::INFINITY; D]),
        ))
    }

    /// Moves a record to a new bounding rectangle
    /// (delete + insert; the classical R-tree update).
    ///
    /// The two halves commit as separate copy-on-write transactions, so a
    /// concurrent snapshot reader may observe the state between them
    /// (record absent); it never observes the record at both rectangles.
    pub fn update(&self, old_mbr: &Rect<D>, rid: RecordId, new_mbr: &Rect<D>) -> Result<()> {
        self.delete(old_mbr, rid)?;
        self.insert(new_mbr, rid)
    }

    /// Removes every entry. The tree remains usable (equivalent to a
    /// freshly created one). Publishes an empty root atomically; the old
    /// pages are retired through the epoch list, so live snapshots keep
    /// reading the pre-clear tree.
    pub fn clear(&self) -> Result<()> {
        self.clear_cow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::tree::MemRTree;
    use nnq_geom::Point;

    fn grid(n: u64) -> MemRTree<2> {
        let tree = MemRTree::with_config(RTreeConfig::default(), 8);
        for x in 0..n {
            for y in 0..n {
                tree.insert(
                    &Rect::from_point(Point::new([x as f64, y as f64])),
                    RecordId(x * n + y),
                )
                .unwrap();
            }
        }
        tree
    }

    #[test]
    fn window_iter_matches_materialized_query() {
        let tree = grid(20);
        let w = Rect::new(Point::new([3.0, 5.0]), Point::new([11.0, 9.0]));
        let mut lazy: Vec<u64> = tree.window_iter(w).map(|r| r.unwrap().1 .0).collect();
        lazy.sort_unstable();
        let mut eager: Vec<u64> = tree
            .window(&w)
            .unwrap()
            .iter()
            .map(|(_, id)| id.0)
            .collect();
        eager.sort_unstable();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn taking_a_prefix_reads_fewer_nodes() {
        let tree = grid(40); // 1600 points
        let total = tree.stats().unwrap().nodes;
        let everything = Rect::new(Point::new([0.0, 0.0]), Point::new([40.0, 40.0]));
        let mut iter = tree.window_iter(everything);
        for _ in 0..3 {
            iter.next().unwrap().unwrap();
        }
        assert!(
            iter.nodes_read() * 5 < total,
            "read {} of {total} nodes for 3 results",
            iter.nodes_read()
        );
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let tree = grid(15);
        let mut ids: Vec<u64> = tree.iter().map(|r| r.unwrap().1 .0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..225).collect::<Vec<_>>());
    }

    #[test]
    fn empty_tree_iterates_nothing() {
        let tree = MemRTree::<2>::new();
        assert_eq!(tree.iter().count(), 0);
    }

    #[test]
    fn update_moves_a_record() {
        let tree = grid(5);
        let old = Rect::from_point(Point::new([2.0, 2.0]));
        let new = Rect::from_point(Point::new([100.0, 100.0]));
        tree.update(&old, RecordId(2 * 5 + 2), &new).unwrap();
        tree.validate_strict().unwrap();
        assert!(tree
            .point_query(&Point::new([2.0, 2.0]))
            .unwrap()
            .is_empty());
        let hits = tree.point_query(&Point::new([100.0, 100.0])).unwrap();
        assert_eq!(hits, vec![(new, RecordId(12))]);
        assert_eq!(tree.len(), 25);
    }

    #[test]
    fn clear_frees_everything_and_tree_is_reusable() {
        let tree = grid(12);
        assert!(tree.store().live_nodes() > 1);
        tree.clear().unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.store().live_nodes(), 0);
        tree.validate().unwrap();
        tree.insert(&Rect::from_point(Point::new([1.0, 1.0])), RecordId(0))
            .unwrap();
        assert_eq!(tree.len(), 1);
        tree.validate_strict().unwrap();
    }
}
