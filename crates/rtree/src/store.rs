//! Node storage backends.
//!
//! The R-tree algorithms (insert, delete, split, bulk load, queries) are
//! written once against the [`NodeStore`] trait; two backends implement it:
//!
//! * [`PagedStore`] — one node per fixed-size disk page on an
//!   `nnq-storage` buffer pool. This is the configuration the paper
//!   measures (every node read is a page access).
//! * [`MemStore`] — an arena of heap-allocated nodes with a configurable
//!   fanout. No page accounting, maximum speed; the "rstar-style"
//!   in-memory index for applications that don't need persistence.

use crate::codec::{decode_meta, decode_node, encode_meta, encode_node, Meta, RawNode};
use crate::entry::Entry;
use crate::{Result, RTreeError};
use nnq_storage::{BufferPool, PageId};
use parking_lot::RwLock;
use std::sync::Arc;

/// Storage backend for R-tree nodes and the tree's metadata.
///
/// Node handles are [`PageId`]s in every backend (the in-memory backend
/// uses dense arena indices wrapped in `PageId`), so navigation types like
/// [`crate::NodeRef`] are backend-independent.
pub trait NodeStore<const D: usize> {
    /// Maximum entries a node may hold in this backend.
    fn node_capacity(&self) -> usize;

    /// Reads the node stored under `id`.
    fn read(&self, id: PageId) -> Result<RawNode<D>>;

    /// Overwrites the node stored under `id`.
    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()>;

    /// Allocates a new node and returns its handle.
    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId>;

    /// Frees the node under `id`.
    fn free(&self, id: PageId) -> Result<()>;

    /// Persists the tree metadata.
    fn write_meta(&self, meta: &Meta) -> Result<()>;
}

// ---------------------------------------------------------------------------
// PagedStore
// ---------------------------------------------------------------------------

/// Disk-page-backed node storage (one node per page, meta on its own page).
pub struct PagedStore {
    pool: Arc<BufferPool>,
    meta_page: PageId,
}

impl PagedStore {
    /// Creates a store, allocating a fresh meta page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let (meta_page, guard) = pool.new_page()?;
        drop(guard);
        Ok(Self { pool, meta_page })
    }

    /// Opens a store whose meta page is `meta_page`, returning the decoded
    /// metadata alongside.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<(Self, Meta)> {
        let meta = {
            let guard = pool.fetch(meta_page)?;
            decode_meta(meta_page, &guard)?
        };
        Ok((Self { pool, meta_page }, meta))
    }

    /// The buffer pool under this store.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The page holding the tree metadata.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }
}

impl<const D: usize> NodeStore<D> for PagedStore {
    fn node_capacity(&self) -> usize {
        crate::codec::node_capacity(self.pool.page_size(), D)
    }

    fn read(&self, id: PageId) -> Result<RawNode<D>> {
        let guard = self.pool.fetch(id)?;
        decode_node(id, &guard)
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut guard = self.pool.fetch_write(id)?;
        encode_node(&mut guard, level, entries);
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let (page, mut guard) = self.pool.new_page()?;
        encode_node(&mut guard, level, entries);
        Ok(page)
    }

    fn free(&self, id: PageId) -> Result<()> {
        self.pool.delete_page(id)?;
        Ok(())
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        let mut guard = self.pool.fetch_write(self.meta_page)?;
        encode_meta(&mut guard, meta);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

struct MemNode<const D: usize> {
    level: u16,
    entries: Vec<Entry<D>>,
}

/// Heap-arena node storage for the in-memory tree.
pub struct MemStore<const D: usize> {
    capacity: usize,
    nodes: RwLock<MemArena<D>>,
}

struct MemArena<const D: usize> {
    slots: Vec<Option<MemNode<D>>>,
    free: Vec<usize>,
}

impl<const D: usize> MemStore<D> {
    /// Default fanout of in-memory nodes: cache-line-friendly but still
    /// shallow trees.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty store with the given node fanout.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "node fanout must be at least 4");
        Self {
            capacity,
            nodes: RwLock::new(MemArena {
                slots: Vec::new(),
                free: Vec::new(),
            }),
        }
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        let arena = self.nodes.read();
        arena.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl<const D: usize> Default for MemStore<D> {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl<const D: usize> NodeStore<D> for MemStore<D> {
    fn node_capacity(&self) -> usize {
        self.capacity
    }

    fn read(&self, id: PageId) -> Result<RawNode<D>> {
        let arena = self.nodes.read();
        let node = arena
            .slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        Ok(RawNode {
            level: node.level,
            entries: node.entries.clone(),
        })
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        slot.level = level;
        slot.entries.clear();
        slot.entries.extend_from_slice(entries);
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let mut arena = self.nodes.write();
        let node = MemNode {
            level,
            entries: entries.to_vec(),
        };
        let idx = if let Some(idx) = arena.free.pop() {
            arena.slots[idx] = Some(node);
            idx
        } else {
            arena.slots.push(Some(node));
            arena.slots.len() - 1
        };
        Ok(PageId(idx as u64))
    }

    fn free(&self, id: PageId) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        if slot.take().is_none() {
            return Err(RTreeError::BadNode {
                page: id,
                reason: "double free of in-memory node".into(),
            });
        }
        arena.free.push(id.0 as usize);
        Ok(())
    }

    fn write_meta(&self, _meta: &Meta) -> Result<()> {
        Ok(()) // in-memory trees keep their meta in the RTree struct only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RecordId;
    use nnq_geom::{Point, Rect};

    fn entry(i: u64) -> Entry<2> {
        Entry::for_record(Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i))
    }

    #[test]
    fn mem_store_round_trips_nodes() {
        let store = MemStore::<2>::new(8);
        let id = store.alloc(1, &[entry(1), entry(2)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 1);
        assert_eq!(raw.entries.len(), 2);
        store.write(id, 0, &[entry(9)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 0);
        assert_eq!(raw.entries[0].record(), RecordId(9));
    }

    #[test]
    fn mem_store_frees_and_reuses_slots() {
        let store = MemStore::<2>::new(8);
        let a = store.alloc(0, &[entry(1)]).unwrap();
        let _b = store.alloc(0, &[entry(2)]).unwrap();
        assert_eq!(store.live_nodes(), 2);
        store.free(a).unwrap();
        assert_eq!(store.live_nodes(), 1);
        assert!(NodeStore::read(&store, a).is_err());
        assert!(store.free(a).is_err()); // double free
        let c = store.alloc(0, &[entry(3)]).unwrap();
        assert_eq!(c, a); // slot reuse
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        MemStore::<2>::new(3);
    }
}
