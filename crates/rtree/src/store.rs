//! Node storage backends.
//!
//! The R-tree algorithms (insert, delete, split, bulk load, queries) are
//! written once against the [`NodeStore`] trait; two backends implement it:
//!
//! * [`PagedStore`] — one node per fixed-size disk page on an
//!   `nnq-storage` buffer pool, fronted by a decoded-node cache. This is
//!   the configuration the paper measures (every node read is a page
//!   access).
//! * [`MemStore`] — an arena of heap-allocated nodes with a configurable
//!   fanout. No page accounting, maximum speed; the "rstar-style"
//!   in-memory index for applications that don't need persistence.
//!
//! `read` hands out `Arc<RawNode<D>>` in both backends, so navigating a
//! tree shares decoded nodes instead of copying entry arrays: the paged
//! backend serves repeat reads from its cache, and the in-memory backend
//! clones an `Arc` straight out of the arena.

use crate::codec::{decode_meta, decode_node, encode_meta, encode_node, Meta, RawNode};
use crate::entry::Entry;
use crate::{RTreeError, Result};
use nnq_storage::{BufferPool, PageId};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage backend for R-tree nodes and the tree's metadata.
///
/// Node handles are [`PageId`]s in every backend (the in-memory backend
/// uses dense arena indices wrapped in `PageId`), so navigation types like
/// [`crate::NodeView`] are backend-independent.
pub trait NodeStore<const D: usize> {
    /// Maximum entries a node may hold in this backend.
    fn node_capacity(&self) -> usize;

    /// Reads the node stored under `id`.
    ///
    /// The returned node is shared: backends may hand the same `Arc` to
    /// many readers, so the contents must be treated as an immutable
    /// snapshot (mutation goes through [`NodeStore::write`]).
    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>>;

    /// Overwrites the node stored under `id`.
    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()>;

    /// Allocates a new node and returns its handle.
    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId>;

    /// Frees the node under `id`.
    fn free(&self, id: PageId) -> Result<()>;

    /// Persists the tree metadata.
    fn write_meta(&self, meta: &Meta) -> Result<()>;
}

// ---------------------------------------------------------------------------
// Decoded-node cache
// ---------------------------------------------------------------------------

/// Counters for the decoded-node cache, snapshot by
/// [`PagedStore::cache_stats`].
///
/// These sit *beside* the buffer pool's [`nnq_storage::PoolStats`]: the
/// pool counts page accesses (the paper's cost metric), the node cache
/// counts how many of those accesses were also spared a decode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Node reads served from the cache (no decode, no entry allocation).
    pub hits: u64,
    /// Node reads that had to decode the page.
    pub misses: u64,
    /// Live entries dropped to make room for newer ones.
    pub evictions: u64,
    /// Entries dropped because their page was written, freed, or
    /// reallocated.
    pub invalidations: u64,
    /// Nodes currently cached.
    pub len: usize,
    /// Maximum nodes the cache will hold (`0` disables caching).
    pub capacity: usize,
}

impl NodeCacheStats {
    /// Fraction of node reads served without decoding; `0.0` when no
    /// reads have happened (same convention as
    /// [`nnq_storage::PoolStats::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// FIFO-evicted map from page id to its decoded node.
///
/// Invalidation only removes from the map; the FIFO queue keeps a stale
/// id until eviction (or a periodic compaction) skips past it. Counters
/// live outside the lock so concurrent readers don't serialize on stats.
struct NodeCache<const D: usize> {
    capacity: usize,
    inner: RwLock<CacheInner<D>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

struct CacheInner<const D: usize> {
    map: HashMap<PageId, Arc<RawNode<D>>>,
    fifo: VecDeque<PageId>,
}

impl<const D: usize> NodeCache<D> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: RwLock::new(CacheInner {
                map: HashMap::new(),
                fifo: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn get(&self, id: PageId) -> Option<Arc<RawNode<D>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.inner.read().map.get(&id).cloned();
        match found {
            Some(node) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(node)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, id: PageId, node: Arc<RawNode<D>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.write();
        if inner.map.insert(id, node).is_some() {
            return; // refreshed in place; id already queued
        }
        while inner.map.len() > self.capacity {
            match inner.fifo.pop_front() {
                Some(old) => {
                    if inner.map.remove(&old).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    } // else: stale id left behind by an invalidation
                }
                None => break,
            }
        }
        inner.fifo.push_back(id);
        // Invalidations leave stale ids queued; rebuild once the queue is
        // clearly dominated by them so it can't grow without bound.
        if inner.fifo.len() > (2 * self.capacity).max(16) {
            let mut seen = HashSet::with_capacity(inner.map.len());
            let mut kept = VecDeque::with_capacity(inner.map.len());
            let CacheInner { map, fifo } = &mut *inner;
            for &p in fifo.iter().rev() {
                if map.contains_key(&p) && seen.insert(p) {
                    kept.push_front(p);
                }
            }
            inner.fifo = kept;
        }
    }

    fn invalidate(&self, id: PageId) {
        if self.capacity == 0 {
            return;
        }
        if self.inner.write().map.remove(&id).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.fifo.clear();
    }

    fn stats(&self) -> NodeCacheStats {
        NodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: self.inner.read().map.len(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------------
// PagedStore
// ---------------------------------------------------------------------------

/// Disk-page-backed node storage (one node per page, meta on its own
/// page), fronted by a capacity-bounded decoded-node cache.
///
/// Every `read` still performs a buffer-pool `fetch` — logical and
/// physical page accounting, and the pool's frame recency, are identical
/// with or without the cache — but a cached page skips the decode and the
/// per-read entry-array allocation, returning a shared `Arc<RawNode>`.
pub struct PagedStore<const D: usize> {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    cache: NodeCache<D>,
}

impl<const D: usize> PagedStore<D> {
    /// Default decoded-node cache capacity, in nodes. At the default page
    /// size a 2-d node is ~4 KiB of entries, so this is a few MiB — small
    /// next to the buffer pool it shadows.
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// Creates a store, allocating a fresh meta page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Self::create_with_cache(pool, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a store with an explicit decoded-node cache capacity
    /// (`0` disables the cache).
    pub fn create_with_cache(pool: Arc<BufferPool>, cache_capacity: usize) -> Result<Self> {
        let (meta_page, guard) = pool.new_page()?;
        drop(guard);
        Ok(Self {
            pool,
            meta_page,
            cache: NodeCache::new(cache_capacity),
        })
    }

    /// Opens a store whose meta page is `meta_page`, returning the decoded
    /// metadata alongside.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<(Self, Meta)> {
        Self::open_with_cache(pool, meta_page, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// Opens a store with an explicit decoded-node cache capacity
    /// (`0` disables the cache).
    pub fn open_with_cache(
        pool: Arc<BufferPool>,
        meta_page: PageId,
        cache_capacity: usize,
    ) -> Result<(Self, Meta)> {
        let meta = {
            let guard = pool.fetch(meta_page)?;
            decode_meta(meta_page, &guard)?
        };
        Ok((
            Self {
                pool,
                meta_page,
                cache: NodeCache::new(cache_capacity),
            },
            meta,
        ))
    }

    /// The buffer pool under this store.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The page holding the tree metadata.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Snapshot of the decoded-node cache counters.
    pub fn cache_stats(&self) -> NodeCacheStats {
        self.cache.stats()
    }

    /// Drops every cached node (counters are kept). Useful for cold-cache
    /// measurements.
    pub fn clear_node_cache(&self) {
        self.cache.clear();
    }
}

impl<const D: usize> NodeStore<D> for PagedStore<D> {
    fn node_capacity(&self) -> usize {
        crate::codec::node_capacity(self.pool.page_size(), D)
    }

    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>> {
        // Fetch the page *before* consulting the cache so the pool's
        // logical/physical read counters and frame recency are exactly
        // what they would be without the node cache: the paper's cost
        // metric is page accesses, and the cache must not change it.
        let guard = self.pool.fetch(id)?;
        if let Some(node) = self.cache.get(id) {
            return Ok(node);
        }
        let node = Arc::new(decode_node(id, &guard)?);
        self.cache.insert(id, Arc::clone(&node));
        Ok(node)
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut guard = self.pool.fetch_write(id)?;
        encode_node(&mut guard, level, entries);
        drop(guard);
        self.cache.invalidate(id);
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let (page, mut guard) = self.pool.new_page()?;
        encode_node(&mut guard, level, entries);
        drop(guard);
        // The pool may hand back a previously freed page id; make sure no
        // decoded ghost of the old occupant survives.
        self.cache.invalidate(page);
        Ok(page)
    }

    fn free(&self, id: PageId) -> Result<()> {
        self.pool.delete_page(id)?;
        self.cache.invalidate(id);
        Ok(())
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        let mut guard = self.pool.fetch_write(self.meta_page)?;
        encode_meta(&mut guard, meta);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// Heap-arena node storage for the in-memory tree.
///
/// Slots hold `Arc<RawNode>` directly, so `read` is an `Arc` clone —
/// no entry copying on any read path.
pub struct MemStore<const D: usize> {
    capacity: usize,
    nodes: RwLock<MemArena<D>>,
}

struct MemArena<const D: usize> {
    slots: Vec<Option<Arc<RawNode<D>>>>,
    free: Vec<usize>,
}

impl<const D: usize> MemStore<D> {
    /// Default fanout of in-memory nodes: cache-line-friendly but still
    /// shallow trees.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty store with the given node fanout.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "node fanout must be at least 4");
        Self {
            capacity,
            nodes: RwLock::new(MemArena {
                slots: Vec::new(),
                free: Vec::new(),
            }),
        }
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        let arena = self.nodes.read();
        arena.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl<const D: usize> Default for MemStore<D> {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl<const D: usize> NodeStore<D> for MemStore<D> {
    fn node_capacity(&self) -> usize {
        self.capacity
    }

    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>> {
        let arena = self.nodes.read();
        arena
            .slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        // Readers may still hold the old Arc; publish a fresh node rather
        // than mutating the shared one.
        *slot = Arc::new(RawNode::new(level, entries.to_vec()));
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let mut arena = self.nodes.write();
        let node = Arc::new(RawNode::new(level, entries.to_vec()));
        let idx = if let Some(idx) = arena.free.pop() {
            arena.slots[idx] = Some(node);
            idx
        } else {
            arena.slots.push(Some(node));
            arena.slots.len() - 1
        };
        Ok(PageId(idx as u64))
    }

    fn free(&self, id: PageId) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        if slot.take().is_none() {
            return Err(RTreeError::BadNode {
                page: id,
                reason: "double free of in-memory node".into(),
            });
        }
        arena.free.push(id.0 as usize);
        Ok(())
    }

    fn write_meta(&self, _meta: &Meta) -> Result<()> {
        Ok(()) // in-memory trees keep their meta in the RTree struct only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RecordId;
    use nnq_geom::{Point, Rect};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};

    fn entry(i: u64) -> Entry<2> {
        Entry::for_record(Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i))
    }

    #[test]
    fn mem_store_round_trips_nodes() {
        let store = MemStore::<2>::new(8);
        let id = store.alloc(1, &[entry(1), entry(2)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 1);
        assert_eq!(raw.entries.len(), 2);
        store.write(id, 0, &[entry(9)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 0);
        assert_eq!(raw.entries[0].record(), RecordId(9));
    }

    #[test]
    fn mem_store_read_is_shared_not_copied() {
        let store = MemStore::<2>::new(8);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A write publishes a fresh node; old readers keep their snapshot.
        store.write(id, 0, &[entry(2)]).unwrap();
        let c = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.entries[0].record(), RecordId(1));
        assert_eq!(c.entries[0].record(), RecordId(2));
    }

    #[test]
    fn mem_store_frees_and_reuses_slots() {
        let store = MemStore::<2>::new(8);
        let a = store.alloc(0, &[entry(1)]).unwrap();
        let _b = store.alloc(0, &[entry(2)]).unwrap();
        assert_eq!(store.live_nodes(), 2);
        store.free(a).unwrap();
        assert_eq!(store.live_nodes(), 1);
        assert!(NodeStore::read(&store, a).is_err());
        assert!(store.free(a).is_err()); // double free
        let c = store.alloc(0, &[entry(3)]).unwrap();
        assert_eq!(c, a); // slot reuse
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        MemStore::<2>::new(3);
    }

    fn paged(cache: usize) -> PagedStore<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 64));
        PagedStore::create_with_cache(pool, cache).unwrap()
    }

    #[test]
    fn paged_store_cache_hits_and_pool_accounting() {
        let store = paged(8);
        let id = store.alloc(0, &[entry(1), entry(2)]).unwrap();
        let before = store.pool().stats();

        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat read must share the decode");

        let cs = store.cache_stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.len, 1);
        assert!((cs.hit_rate() - 0.5).abs() < 1e-12);

        // The pool still saw every logical read — the cache must not
        // change the paper's page-access accounting.
        let after = store.pool().stats();
        assert_eq!(after.logical_reads - before.logical_reads, 2);
    }

    #[test]
    fn paged_store_write_and_free_invalidate() {
        let store = paged(8);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        store.write(id, 0, &[entry(7)]).unwrap();
        assert_eq!(store.cache_stats().invalidations, 1);
        let b = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.entries[0].record(), RecordId(7));

        store.free(id).unwrap();
        assert_eq!(store.cache_stats().len, 0);
    }

    #[test]
    fn paged_store_cache_eviction_is_bounded() {
        let store = paged(2);
        let ids: Vec<_> = (0..4)
            .map(|i| store.alloc(0, &[entry(i)]).unwrap())
            .collect();
        for &id in &ids {
            NodeStore::read(&store, id).unwrap();
        }
        let cs = store.cache_stats();
        assert_eq!(cs.misses, 4);
        assert_eq!(cs.len, 2);
        assert_eq!(cs.evictions, 2);
        // Oldest two were evicted FIFO; newest two still hit.
        NodeStore::read(&store, ids[3]).unwrap();
        assert_eq!(store.cache_stats().hits, 1);
    }

    #[test]
    fn paged_store_zero_capacity_disables_cache() {
        let store = paged(0);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let cs = store.cache_stats();
        assert_eq!(cs.hits, 0);
        assert_eq!(cs.misses, 2);
        assert_eq!(cs.len, 0);
    }
}
