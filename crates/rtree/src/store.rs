//! Node storage backends.
//!
//! The R-tree algorithms (insert, delete, split, bulk load, queries) are
//! written once against the [`NodeStore`] trait; two backends implement it:
//!
//! * [`PagedStore`] — one node per fixed-size disk page on an
//!   `nnq-storage` buffer pool, fronted by a decoded-node cache. This is
//!   the configuration the paper measures (every node read is a page
//!   access).
//! * [`MemStore`] — an arena of heap-allocated nodes with a configurable
//!   fanout. No page accounting, maximum speed; the "rstar-style"
//!   in-memory index for applications that don't need persistence.
//!
//! `read` hands out `Arc<RawNode<D>>` in both backends, so navigating a
//! tree shares decoded nodes instead of copying entry arrays: the paged
//! backend serves repeat reads from its cache, and the in-memory backend
//! clones an `Arc` straight out of the arena.

use crate::codec::{decode_meta, decode_node, encode_meta, encode_node, Meta, RawNode};
use crate::entry::Entry;
use crate::{RTreeError, Result};
use nnq_storage::{BufferPool, PageId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Storage backend for R-tree nodes and the tree's metadata.
///
/// Node handles are [`PageId`]s in every backend (the in-memory backend
/// uses dense arena indices wrapped in `PageId`), so navigation types like
/// [`crate::NodeView`] are backend-independent.
pub trait NodeStore<const D: usize> {
    /// Maximum entries a node may hold in this backend.
    fn node_capacity(&self) -> usize;

    /// Reads the node stored under `id`.
    ///
    /// The returned node is shared: backends may hand the same `Arc` to
    /// many readers, so the contents must be treated as an immutable
    /// snapshot (mutation goes through [`NodeStore::write`]).
    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>>;

    /// Overwrites the node stored under `id`.
    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()>;

    /// Allocates a new node and returns its handle.
    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId>;

    /// Frees the node under `id`.
    fn free(&self, id: PageId) -> Result<()>;

    /// Persists the tree metadata.
    fn write_meta(&self, meta: &Meta) -> Result<()>;

    /// Atomically publishes a new tree state built copy-on-write: `meta`
    /// is the new root/height/count and `shadow` lists the freshly
    /// allocated pages the new state introduces. Backends with a journal
    /// append the shadow images and the new meta image as one WAL commit
    /// group, make the group durable per their group-commit policy, and
    /// only then install the meta page — so a crash at any point either
    /// replays the whole commit or none of it. The default (no journal)
    /// just writes the metadata.
    fn publish(&self, meta: &Meta, _shadow: &[PageId]) -> Result<()> {
        self.write_meta(meta)
    }

    /// Hints that `id` will likely be read soon. Purely advisory and
    /// non-blocking; the default does nothing (in-memory backends have no
    /// I/O to hide). Must never change what any subsequent `read` returns
    /// or how it is accounted.
    fn prefetch(&self, _id: PageId) {}

    /// Fraction of recent page requests that missed the backend's cache,
    /// in `[0, 1]` (`0.0` where the notion does not apply). The adaptive
    /// prefetch policy in `nnq-core` keys on this.
    fn io_miss_rate(&self) -> f64 {
        0.0
    }

    /// Lifetime logical page reads the backend has served (`0` where the
    /// notion does not apply). `nnq-core` uses this to tell a genuinely
    /// cold backend (`io_miss_rate() == 0.0` by the zero-reads convention)
    /// from a perfectly warm one.
    fn io_reads(&self) -> u64 {
        0
    }

    /// Snapshot of the backend's tuning signals (pool, prefetch, and
    /// node-cache counters). Backends without such counters return the
    /// all-zero default, which the controller treats as "nothing to tune".
    fn backend_signals(&self) -> BackendSignals {
        BackendSignals::default()
    }

    /// Retunes the backend's decoded-node cache to hold `cap` nodes, if it
    /// has one. Must be accounting-neutral (page-access counters cannot
    /// depend on cache contents). Returns the installed capacity (`0`
    /// where the knob does not exist).
    fn set_cache_capacity(&self, _cap: usize) -> usize {
        0
    }

    /// Sets how many background prefetch workers actively service hints,
    /// if the backend has a prefetcher. Returns the active count after
    /// clamping (`0` where the knob does not exist).
    fn set_prefetch_workers(&self, _n: usize) -> usize {
        0
    }
}

/// One snapshot of every counter the self-tuning controller reads,
/// gathered across the storage stack (buffer pool, prefetch pipeline,
/// decoded-node cache) by [`NodeStore::backend_signals`].
///
/// All counters are cumulative since the last stats reset; the controller
/// works on deltas between successive snapshots. Every one of them lives
/// *outside* the query result path — they describe how the backend served
/// reads, never what the reads returned — which is why a controller acting
/// on them is accounting-neutral by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendSignals {
    /// Pool page fetches (the paper's "pages accessed").
    pub logical_reads: u64,
    /// Pool fetches served from a resident frame.
    pub pool_hits: u64,
    /// Pool fetches that went to the device.
    pub physical_reads: u64,
    /// Prefetch hints issued (see `PrefetchStats`).
    pub prefetch_issued: u64,
    /// Prefetched frames later claimed by a demand fetch.
    pub prefetch_useful: u64,
    /// Prefetched frames evicted/cleared untouched.
    pub prefetch_wasted: u64,
    /// Hints that never reached the device.
    pub prefetch_dropped: u64,
    /// Decoded-node cache probes served without a decode.
    pub cache_hits: u64,
    /// Decoded-node cache probes that had to decode.
    pub cache_misses: u64,
    /// Decoded nodes dropped to make room (or by a shrinking resize).
    pub cache_evictions: u64,
    /// Nodes currently cached.
    pub cache_len: usize,
    /// Current decoded-node cache capacity.
    pub cache_capacity: usize,
    /// Prefetch workers currently servicing hints.
    pub prefetch_workers: usize,
}

impl BackendSignals {
    /// Adds `other` counter-wise; gauges (`cache_len`, `cache_capacity`,
    /// `prefetch_workers`) are summed too, giving dataset-wide totals for
    /// a partitioned tree.
    pub fn accumulate(&mut self, other: &BackendSignals) {
        self.logical_reads += other.logical_reads;
        self.pool_hits += other.pool_hits;
        self.physical_reads += other.physical_reads;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_useful += other.prefetch_useful;
        self.prefetch_wasted += other.prefetch_wasted;
        self.prefetch_dropped += other.prefetch_dropped;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_len += other.cache_len;
        self.cache_capacity += other.cache_capacity;
        self.prefetch_workers += other.prefetch_workers;
    }
}

// ---------------------------------------------------------------------------
// Decoded-node cache
// ---------------------------------------------------------------------------

/// Counters for the decoded-node cache, snapshot by
/// [`PagedStore::cache_stats`].
///
/// These sit *beside* the buffer pool's [`nnq_storage::PoolStats`]: the
/// pool counts page accesses (the paper's cost metric), the node cache
/// counts how many of those accesses were also spared a decode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Node reads served from the cache (no decode, no entry allocation).
    pub hits: u64,
    /// Node reads that had to decode the page.
    pub misses: u64,
    /// Live entries dropped to make room for newer ones.
    pub evictions: u64,
    /// Entries dropped because their page was written, freed, or
    /// reallocated.
    pub invalidations: u64,
    /// Nodes currently cached.
    pub len: usize,
    /// Maximum nodes the cache will hold (`0` disables caching).
    pub capacity: usize,
    /// Number of lock stripes the cache is split across.
    pub stripes: usize,
}

impl NodeCacheStats {
    /// Fraction of node reads served without decoding; `0.0` when no
    /// reads have happened (same convention as
    /// [`nnq_storage::PoolStats::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock-striped, CLOCK-evicted map from page id to its decoded node.
///
/// The cache is split into `S` stripes (`S` a power of two, sized from
/// the machine's parallelism and clamped so every stripe owns at least
/// one slot); a page lives in the stripe selected by the low bits of its
/// id, so readers of different stripes never touch the same lock, and a
/// hit takes only a stripe *read* lock (the CLOCK reference bit is an
/// atomic, flipped without write access).
///
/// Each stripe is a fixed ring of slots swept by a second-chance hand:
/// a hit sets the slot's reference bit, the hand clears bits as it
/// sweeps and evicts the first unreferenced slot. Hot upper-level nodes
/// are therefore retained as long as they keep being read — unlike the
/// FIFO this replaces, which evicted them in arrival order.
///
/// Invalidation empties the slot in place (map entry and ring slot go
/// together), so repeated write/invalidate cycles leave no residue: the
/// ring's length only changes through an explicit [`NodeCache::resize`]
/// (stripe count stays fixed; rings grow by appending empty slots and
/// shrink by popping tail slots, evicting their occupants), never as a
/// side effect of inserts or invalidations.
/// Counters live outside the locks so concurrent readers don't
/// serialize on stats.
struct NodeCache<const D: usize> {
    /// Total slots across stripes. Atomic so [`NodeCache::resize`] can
    /// retune it through `&self` while readers are active.
    capacity: AtomicUsize,
    stripe_mask: u64,
    stripes: Vec<Stripe<D>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

struct Stripe<const D: usize> {
    inner: RwLock<StripeInner<D>>,
}

struct StripeInner<const D: usize> {
    /// page id → index into `slots`. Always mirrors the ring: an id is
    /// mapped iff its slot holds a node.
    map: HashMap<PageId, usize>,
    /// The CLOCK ring. Fixed length (the stripe's share of the cache
    /// capacity); slots are emptied in place by invalidation.
    slots: Vec<Slot<D>>,
    /// The CLOCK hand: next ring position to inspect for eviction.
    hand: usize,
}

struct Slot<const D: usize> {
    page: PageId,
    node: Option<Arc<RawNode<D>>>,
    /// Second-chance bit; set on every hit (under the stripe's *read*
    /// lock, hence atomic), cleared by the sweeping hand.
    referenced: AtomicBool,
}

impl<const D: usize> Slot<D> {
    fn empty() -> Self {
        Self {
            page: PageId::INVALID,
            node: None,
            referenced: AtomicBool::new(false),
        }
    }
}

/// Power-of-two stripe count for a cache of `capacity` nodes: the
/// machine's parallelism rounded up, clamped to 64 and halved until every
/// stripe owns at least one slot.
fn stripe_count_for(capacity: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut stripes = hw.next_power_of_two().min(64);
    while stripes > capacity.max(1) {
        stripes /= 2;
    }
    stripes
}

impl<const D: usize> NodeCache<D> {
    fn new(capacity: usize) -> Self {
        let stripes = stripe_count_for(capacity);
        let base = capacity / stripes;
        let rem = capacity % stripes;
        let stripe_vec = (0..stripes)
            .map(|i| {
                let slots = base + usize::from(i < rem);
                Stripe {
                    inner: RwLock::new(StripeInner {
                        map: HashMap::with_capacity(slots),
                        slots: (0..slots).map(|_| Slot::empty()).collect(),
                        hand: 0,
                    }),
                }
            })
            .collect();
        Self {
            capacity: AtomicUsize::new(capacity),
            stripe_mask: (stripes - 1) as u64,
            stripes: stripe_vec,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    #[inline]
    fn stripe(&self, id: PageId) -> &Stripe<D> {
        &self.stripes[(id.0 & self.stripe_mask) as usize]
    }

    fn get(&self, id: PageId) -> Option<Arc<RawNode<D>>> {
        if self.capacity.load(Ordering::Relaxed) == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let inner = self.stripe(id).inner.read();
        let found = inner.map.get(&id).map(|&idx| {
            let slot = &inner.slots[idx];
            slot.referenced.store(true, Ordering::Relaxed);
            Arc::clone(slot.node.as_ref().expect("mapped slot holds a node"))
        });
        drop(inner);
        match found {
            Some(node) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(node)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, id: PageId, node: Arc<RawNode<D>>) {
        if self.capacity.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut inner = self.stripe(id).inner.write();
        if let Some(&idx) = inner.map.get(&id) {
            // Refresh in place (e.g. re-decode after an invalidation race).
            let slot = &mut inner.slots[idx];
            slot.node = Some(node);
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        // CLOCK sweep: take the first empty slot or the first occupied
        // slot whose reference bit is already clear, clearing bits as the
        // hand passes. Terminates within two sweeps (after one full pass
        // every bit is clear).
        let n = inner.slots.len();
        if n == 0 {
            // This stripe's ring shrank to nothing (tiny capacity spread
            // over fixed stripes): nothing to cache here.
            return;
        }
        let idx = loop {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let slot = &mut inner.slots[idx];
            if slot.node.is_none() {
                break idx;
            }
            if *slot.referenced.get_mut() {
                *slot.referenced.get_mut() = false;
                continue;
            }
            let old = slot.page;
            slot.node = None;
            slot.page = PageId::INVALID;
            inner.map.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            break idx;
        };
        let slot = &mut inner.slots[idx];
        slot.page = id;
        slot.node = Some(node);
        // Arrives with its bit set: a fresh decode gets one full sweep of
        // grace before it is eviction-eligible.
        slot.referenced.store(true, Ordering::Relaxed);
        inner.map.insert(id, idx);
    }

    fn invalidate(&self, id: PageId) {
        if self.capacity.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut inner = self.stripe(id).inner.write();
        if let Some(idx) = inner.map.remove(&id) {
            let slot = &mut inner.slots[idx];
            slot.page = PageId::INVALID;
            slot.node = None;
            slot.referenced.store(false, Ordering::Relaxed);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn clear(&self) {
        for stripe in &self.stripes {
            let mut inner = stripe.inner.write();
            inner.map.clear();
            for slot in &mut inner.slots {
                *slot = Slot::empty();
            }
            inner.hand = 0;
        }
    }

    /// Retunes the cache to hold `new_capacity` nodes, in place and under
    /// `&self`. The stripe count (and so the id → stripe mapping) is fixed
    /// at construction; each stripe's ring grows by appending empty slots
    /// or shrinks by popping tail slots, evicting any occupants (counted
    /// as evictions) and clamping the hand. The map always mirrors the
    /// ring, so the invalidation contract — an id is mapped iff its slot
    /// holds a node — survives any resize, including mid-query.
    ///
    /// Accounting-neutral for the same reason the cache itself is: the
    /// pool fetch in [`PagedStore::read`] happens before the cache probe,
    /// so `logical_reads` never depends on what is cached.
    ///
    /// Returns the capacity actually installed.
    fn resize(&self, new_capacity: usize) -> usize {
        let stripes = self.stripes.len();
        let base = new_capacity / stripes;
        let rem = new_capacity % stripes;
        for (i, stripe) in self.stripes.iter().enumerate() {
            let target = base + usize::from(i < rem);
            let mut inner = stripe.inner.write();
            while inner.slots.len() > target {
                let slot = inner.slots.pop().expect("len > target >= 0");
                if slot.node.is_some() {
                    inner.map.remove(&slot.page);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            while inner.slots.len() < target {
                inner.slots.push(Slot::empty());
            }
            if inner.hand >= inner.slots.len() {
                inner.hand = 0;
            }
        }
        self.capacity.store(new_capacity, Ordering::Relaxed);
        new_capacity
    }

    /// Total ring slots across stripes — changed only by `resize`; the
    /// residue regression test asserts it never drifts from `capacity`.
    #[cfg(test)]
    fn ring_len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.inner.read().slots.len())
            .sum()
    }

    fn stats(&self) -> NodeCacheStats {
        NodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: self.stripes.iter().map(|s| s.inner.read().map.len()).sum(),
            capacity: self.capacity.load(Ordering::Relaxed),
            stripes: self.stripes.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// PagedStore
// ---------------------------------------------------------------------------

/// Disk-page-backed node storage (one node per page, meta on its own
/// page), fronted by a capacity-bounded decoded-node cache.
///
/// Every `read` still performs a buffer-pool `fetch` — logical and
/// physical page accounting, and the pool's frame recency, are identical
/// with or without the cache — but a cached page skips the decode and the
/// per-read entry-array allocation, returning a shared `Arc<RawNode>`.
pub struct PagedStore<const D: usize> {
    pool: Arc<BufferPool>,
    meta_page: PageId,
    cache: NodeCache<D>,
    /// Commit-group ids for WAL publication, unique per store.
    txn_counter: AtomicU64,
    /// Group-commit window in microseconds (`0` = sync every commit).
    group_commit_us: AtomicU64,
}

impl<const D: usize> PagedStore<D> {
    /// Default decoded-node cache capacity, in nodes. At the default page
    /// size a 2-d node is ~4 KiB of entries, so this is a few MiB — small
    /// next to the buffer pool it shadows.
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// Default group-commit window in microseconds: commits within a
    /// millisecond of the last WAL sync share its durability point. `0`
    /// would sync the journal on every commit.
    pub const DEFAULT_GROUP_COMMIT_US: u64 = 1_000;

    /// Creates a store, allocating a fresh meta page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Self::create_with_cache(pool, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a store with an explicit decoded-node cache capacity
    /// (`0` disables the cache).
    pub fn create_with_cache(pool: Arc<BufferPool>, cache_capacity: usize) -> Result<Self> {
        let (meta_page, guard) = pool.new_page()?;
        drop(guard);
        Ok(Self {
            pool,
            meta_page,
            cache: NodeCache::new(cache_capacity),
            txn_counter: AtomicU64::new(0),
            group_commit_us: AtomicU64::new(Self::DEFAULT_GROUP_COMMIT_US),
        })
    }

    /// Opens a store whose meta page is `meta_page`, returning the decoded
    /// metadata alongside.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<(Self, Meta)> {
        Self::open_with_cache(pool, meta_page, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// Opens a store with an explicit decoded-node cache capacity
    /// (`0` disables the cache).
    pub fn open_with_cache(
        pool: Arc<BufferPool>,
        meta_page: PageId,
        cache_capacity: usize,
    ) -> Result<(Self, Meta)> {
        let meta = {
            let guard = pool.fetch(meta_page)?;
            decode_meta(meta_page, &guard)?
        };
        Ok((
            Self {
                pool,
                meta_page,
                cache: NodeCache::new(cache_capacity),
                txn_counter: AtomicU64::new(0),
                group_commit_us: AtomicU64::new(Self::DEFAULT_GROUP_COMMIT_US),
            },
            meta,
        ))
    }

    /// Sets the group-commit window: a publish syncs the WAL only if at
    /// least this many microseconds passed since the last sync (`0` syncs
    /// every commit). No effect on pools without a WAL.
    pub fn set_group_commit_us(&self, us: u64) {
        self.group_commit_us.store(us, Ordering::Relaxed);
    }

    /// The current group-commit window in microseconds.
    pub fn group_commit_us(&self) -> u64 {
        self.group_commit_us.load(Ordering::Relaxed)
    }

    /// The buffer pool under this store.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The page holding the tree metadata.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Snapshot of the decoded-node cache counters.
    pub fn cache_stats(&self) -> NodeCacheStats {
        self.cache.stats()
    }

    /// Drops every cached node (counters are kept). Useful for cold-cache
    /// measurements.
    pub fn clear_node_cache(&self) {
        self.cache.clear();
    }

    /// Retunes the decoded-node cache to hold `cap` nodes in place (see
    /// [`NodeCache::resize`]): shrinking evicts tail occupants, growing
    /// appends empty slots, and the stripe layout is unchanged. Safe at
    /// any point — including mid-query — because `read` fetches the page
    /// from the pool before probing the cache, so page accounting never
    /// depends on cache contents. Returns the installed capacity.
    pub fn resize_node_cache(&self, cap: usize) -> usize {
        self.cache.resize(cap)
    }
}

impl<const D: usize> NodeStore<D> for PagedStore<D> {
    fn node_capacity(&self) -> usize {
        crate::codec::node_capacity(self.pool.page_size(), D)
    }

    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>> {
        // Fetch the page *before* consulting the cache so the pool's
        // logical/physical read counters and frame recency are exactly
        // what they would be without the node cache: the paper's cost
        // metric is page accesses, and the cache must not change it.
        let guard = self.pool.fetch(id)?;
        if let Some(node) = self.cache.get(id) {
            return Ok(node);
        }
        let node = Arc::new(decode_node(id, &guard)?);
        self.cache.insert(id, Arc::clone(&node));
        Ok(node)
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut guard = self.pool.fetch_write(id)?;
        encode_node(&mut guard, level, entries);
        drop(guard);
        self.cache.invalidate(id);
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let (page, mut guard) = self.pool.new_page()?;
        encode_node(&mut guard, level, entries);
        drop(guard);
        // The pool may hand back a previously freed page id; make sure no
        // decoded ghost of the old occupant survives.
        self.cache.invalidate(page);
        Ok(page)
    }

    fn free(&self, id: PageId) -> Result<()> {
        self.pool.delete_page(id)?;
        self.cache.invalidate(id);
        Ok(())
    }

    fn write_meta(&self, meta: &Meta) -> Result<()> {
        let mut guard = self.pool.fetch_write(self.meta_page)?;
        encode_meta(&mut guard, meta);
        Ok(())
    }

    fn publish(&self, meta: &Meta, shadow: &[PageId]) -> Result<()> {
        if let Some(wal) = self.pool.wal() {
            // One commit group: every shadow page image, then the new
            // meta image, sealed by the commit record. Replay applies the
            // group only if the commit record made it to the log, so a
            // crash mid-publish rolls back to the previous root.
            let txn = self.txn_counter.fetch_add(1, Ordering::Relaxed) + 1;
            for &page in shadow {
                let image = self.pool.page_image(page)?;
                wal.append_txn_image(txn, page, &image)?;
            }
            let mut meta_image = vec![0u8; self.pool.page_size()];
            encode_meta(&mut meta_image, meta);
            wal.append_txn_image(txn, self.meta_page, &meta_image)?;
            wal.append_commit(txn)?;
            // Durability point, batched across the commit window: commits
            // landing inside the window become durable with the next sync
            // (or an explicit checkpoint).
            let window =
                std::time::Duration::from_micros(self.group_commit_us.load(Ordering::Relaxed));
            wal.group_sync(window)?;
        }
        // The in-pool root swap: a single meta-page write.
        self.write_meta(meta)
    }

    fn prefetch(&self, id: PageId) {
        // Forward to the pool even when the node is in the decoded cache:
        // `read` always fetches the page first (for the accounting above),
        // so having the frame resident pays off either way.
        self.pool.prefetch(id);
    }

    fn io_miss_rate(&self) -> f64 {
        self.pool.stats().miss_rate()
    }

    fn io_reads(&self) -> u64 {
        self.pool.stats().logical_reads
    }

    fn backend_signals(&self) -> BackendSignals {
        let pool = self.pool.stats();
        let pf = self.pool.prefetch_stats();
        let cache = self.cache.stats();
        BackendSignals {
            logical_reads: pool.logical_reads,
            pool_hits: pool.hits,
            physical_reads: pool.physical_reads,
            prefetch_issued: pf.issued,
            prefetch_useful: pf.useful,
            prefetch_wasted: pf.wasted,
            prefetch_dropped: pf.dropped,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_len: cache.len,
            cache_capacity: cache.capacity,
            prefetch_workers: self.pool.prefetch_workers(),
        }
    }

    fn set_cache_capacity(&self, cap: usize) -> usize {
        self.resize_node_cache(cap)
    }

    fn set_prefetch_workers(&self, n: usize) -> usize {
        self.pool.set_prefetch_workers(n)
    }
}

// ---------------------------------------------------------------------------
// MemStore
// ---------------------------------------------------------------------------

/// Heap-arena node storage for the in-memory tree.
///
/// Slots hold `Arc<RawNode>` directly, so `read` is an `Arc` clone —
/// no entry copying on any read path.
pub struct MemStore<const D: usize> {
    capacity: usize,
    nodes: RwLock<MemArena<D>>,
}

struct MemArena<const D: usize> {
    slots: Vec<Option<Arc<RawNode<D>>>>,
    free: Vec<usize>,
}

impl<const D: usize> MemStore<D> {
    /// Default fanout of in-memory nodes: cache-line-friendly but still
    /// shallow trees.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty store with the given node fanout.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "node fanout must be at least 4");
        Self {
            capacity,
            nodes: RwLock::new(MemArena {
                slots: Vec::new(),
                free: Vec::new(),
            }),
        }
    }

    /// Number of live nodes.
    pub fn live_nodes(&self) -> usize {
        let arena = self.nodes.read();
        arena.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl<const D: usize> Default for MemStore<D> {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl<const D: usize> NodeStore<D> for MemStore<D> {
    fn node_capacity(&self) -> usize {
        self.capacity
    }

    fn read(&self, id: PageId) -> Result<Arc<RawNode<D>>> {
        let arena = self.nodes.read();
        arena
            .slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .cloned()
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })
    }

    fn write(&self, id: PageId, level: u16, entries: &[Entry<D>]) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        // Readers may still hold the old Arc; publish a fresh node rather
        // than mutating the shared one.
        *slot = Arc::new(RawNode::new(level, entries.to_vec()));
        Ok(())
    }

    fn alloc(&self, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let mut arena = self.nodes.write();
        let node = Arc::new(RawNode::new(level, entries.to_vec()));
        let idx = if let Some(idx) = arena.free.pop() {
            arena.slots[idx] = Some(node);
            idx
        } else {
            arena.slots.push(Some(node));
            arena.slots.len() - 1
        };
        Ok(PageId(idx as u64))
    }

    fn free(&self, id: PageId) -> Result<()> {
        let mut arena = self.nodes.write();
        let slot = arena
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RTreeError::BadNode {
                page: id,
                reason: "no such in-memory node".into(),
            })?;
        if slot.take().is_none() {
            return Err(RTreeError::BadNode {
                page: id,
                reason: "double free of in-memory node".into(),
            });
        }
        arena.free.push(id.0 as usize);
        Ok(())
    }

    fn write_meta(&self, _meta: &Meta) -> Result<()> {
        Ok(()) // in-memory trees keep their meta in the RTree struct only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::RecordId;
    use nnq_geom::{Point, Rect};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};

    fn entry(i: u64) -> Entry<2> {
        Entry::for_record(Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i))
    }

    #[test]
    fn mem_store_round_trips_nodes() {
        let store = MemStore::<2>::new(8);
        let id = store.alloc(1, &[entry(1), entry(2)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 1);
        assert_eq!(raw.entries.len(), 2);
        store.write(id, 0, &[entry(9)]).unwrap();
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.level, 0);
        assert_eq!(raw.entries[0].record(), RecordId(9));
    }

    #[test]
    fn mem_store_read_is_shared_not_copied() {
        let store = MemStore::<2>::new(8);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A write publishes a fresh node; old readers keep their snapshot.
        store.write(id, 0, &[entry(2)]).unwrap();
        let c = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.entries[0].record(), RecordId(1));
        assert_eq!(c.entries[0].record(), RecordId(2));
    }

    #[test]
    fn mem_store_frees_and_reuses_slots() {
        let store = MemStore::<2>::new(8);
        let a = store.alloc(0, &[entry(1)]).unwrap();
        let _b = store.alloc(0, &[entry(2)]).unwrap();
        assert_eq!(store.live_nodes(), 2);
        store.free(a).unwrap();
        assert_eq!(store.live_nodes(), 1);
        assert!(NodeStore::read(&store, a).is_err());
        assert!(store.free(a).is_err()); // double free
        let c = store.alloc(0, &[entry(3)]).unwrap();
        assert_eq!(c, a); // slot reuse
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        MemStore::<2>::new(3);
    }

    fn paged(cache: usize) -> PagedStore<2> {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 64));
        PagedStore::create_with_cache(pool, cache).unwrap()
    }

    #[test]
    fn paged_store_cache_hits_and_pool_accounting() {
        let store = paged(8);
        let id = store.alloc(0, &[entry(1), entry(2)]).unwrap();
        let before = store.pool().stats();

        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat read must share the decode");

        let cs = store.cache_stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.len, 1);
        assert!((cs.hit_rate() - 0.5).abs() < 1e-12);

        // The pool still saw every logical read — the cache must not
        // change the paper's page-access accounting.
        let after = store.pool().stats();
        assert_eq!(after.logical_reads - before.logical_reads, 2);
    }

    #[test]
    fn paged_store_write_and_free_invalidate() {
        let store = paged(8);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        store.write(id, 0, &[entry(7)]).unwrap();
        assert_eq!(store.cache_stats().invalidations, 1);
        let b = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.entries[0].record(), RecordId(7));

        store.free(id).unwrap();
        assert_eq!(store.cache_stats().len, 0);
    }

    #[test]
    fn paged_store_cache_eviction_is_bounded() {
        let store = paged(2);
        let ids: Vec<_> = (0..4)
            .map(|i| store.alloc(0, &[entry(i)]).unwrap())
            .collect();
        for &id in &ids {
            NodeStore::read(&store, id).unwrap();
        }
        let cs = store.cache_stats();
        assert_eq!(cs.misses, 4);
        assert_eq!(cs.len, 2);
        assert_eq!(cs.evictions, 2);
        // The CLOCK hand replaced the unreferenced older nodes; the
        // most recent read is still resident.
        NodeStore::read(&store, ids[3]).unwrap();
        assert_eq!(store.cache_stats().hits, 1);
    }

    #[test]
    fn node_cache_clock_keeps_hot_nodes() {
        // A node that is re-read between insertions keeps its reference
        // bit set and survives sweeps that evict cold nodes — the
        // behavioral win of CLOCK over the FIFO it replaced.
        let store = paged(4);
        let hot = store.alloc(0, &[entry(100)]).unwrap();
        NodeStore::read(&store, hot).unwrap(); // decode + cache
        for i in 0..32 {
            let id = store.alloc(0, &[entry(i)]).unwrap();
            NodeStore::read(&store, id).unwrap(); // churn the ring
            NodeStore::read(&store, hot).unwrap(); // keep the bit set
        }
        let before = store.cache_stats();
        NodeStore::read(&store, hot).unwrap();
        let after = store.cache_stats();
        assert_eq!(after.hits, before.hits + 1, "hot node was evicted");
    }

    #[test]
    fn node_cache_invalidation_leaves_no_residue() {
        // Hammer insert/invalidate cycles: with the old FIFO each cycle
        // left a stale id queued; the CLOCK ring must stay at its fixed
        // length and the live map bounded by capacity throughout.
        let store = paged(8);
        let ring = store.cache.ring_len();
        assert_eq!(ring, 8);
        let id = store.alloc(0, &[entry(0)]).unwrap();
        for i in 0..10_000u64 {
            NodeStore::read(&store, id).unwrap(); // insert into the cache
            store.write(id, 0, &[entry(i)]).unwrap(); // invalidate it
            if i % 256 == 0 {
                let cs = store.cache_stats();
                assert!(cs.len <= cs.capacity, "live entries exceed capacity");
                assert_eq!(store.cache.ring_len(), ring, "ring grew");
            }
        }
        let cs = store.cache_stats();
        assert_eq!(store.cache.ring_len(), ring, "ring grew after hammer");
        assert!(cs.len <= cs.capacity);
        assert_eq!(cs.invalidations, 10_000);
        // The entry is gone: the next read decodes fresh and sees the
        // last written payload.
        let raw = NodeStore::read(&store, id).unwrap();
        assert_eq!(raw.entries[0].record(), RecordId(9_999));
    }

    #[test]
    fn node_cache_stripes_cover_capacity_and_ids() {
        // Whatever stripe count the host picks, the ring slots must sum
        // to the requested capacity and every id must stay readable.
        for cap in [1usize, 2, 3, 7, 64] {
            let store = paged(cap);
            let cs = store.cache_stats();
            assert!(cs.stripes >= 1 && cs.stripes.is_power_of_two());
            assert_eq!(store.cache.ring_len(), cap, "capacity {cap}");
            let ids: Vec<_> = (0..2 * cap as u64)
                .map(|i| store.alloc(0, &[entry(i)]).unwrap())
                .collect();
            for &id in &ids {
                NodeStore::read(&store, id).unwrap();
            }
            let cs = store.cache_stats();
            assert!(cs.len <= cap);
            assert_eq!(store.cache.ring_len(), cap);
            for (i, &id) in ids.iter().enumerate() {
                let raw = NodeStore::read(&store, id).unwrap();
                assert_eq!(raw.entries[0].record(), RecordId(i as u64));
            }
        }
    }

    #[test]
    fn node_cache_resize_grows_and_shrinks_in_place() {
        let store = paged(8);
        let ids: Vec<_> = (0..8)
            .map(|i| store.alloc(0, &[entry(i)]).unwrap())
            .collect();
        for &id in &ids {
            NodeStore::read(&store, id).unwrap();
        }
        assert_eq!(store.cache_stats().len, 8);
        let stripes = store.cache_stats().stripes;

        // Shrink: tail occupants are evicted, map mirrors the ring, the
        // stripe count is untouched.
        assert_eq!(store.resize_node_cache(2), 2);
        let cs = store.cache_stats();
        assert_eq!(cs.capacity, 2);
        assert_eq!(store.cache.ring_len(), 2);
        assert!(cs.len <= 2);
        assert_eq!(cs.evictions, 8 - cs.len as u64);
        assert_eq!(cs.stripes, stripes);

        // Grow: empty slots appear, everything stays readable and the
        // cache fills back up.
        assert_eq!(store.resize_node_cache(16), 16);
        assert_eq!(store.cache.ring_len(), 16);
        for (i, &id) in ids.iter().enumerate() {
            let raw = NodeStore::read(&store, id).unwrap();
            assert_eq!(raw.entries[0].record(), RecordId(i as u64));
        }
        assert_eq!(store.cache_stats().len, 8);

        // Resize to zero empties the cache entirely; inserts become no-ops
        // (no `% 0` sweep) and reads still work.
        assert_eq!(store.resize_node_cache(0), 0);
        assert_eq!(store.cache_stats().len, 0);
        NodeStore::read(&store, ids[0]).unwrap();
        assert_eq!(store.cache_stats().len, 0);

        // And back from zero: the fixed stripe layout accepts new slots.
        assert_eq!(store.resize_node_cache(4), 4);
        NodeStore::read(&store, ids[0]).unwrap();
        assert_eq!(store.cache_stats().len, 1);
    }

    #[test]
    fn node_cache_resize_is_accounting_neutral() {
        // Same read sequence, with a resize in the middle: pool counters
        // must be identical to an untouched-run baseline.
        let run = |resize_mid: bool| {
            let store = paged(8);
            let ids: Vec<_> = (0..16)
                .map(|i| store.alloc(0, &[entry(i)]).unwrap())
                .collect();
            store.pool().reset_stats();
            for (i, &id) in ids.iter().enumerate() {
                NodeStore::read(&store, id).unwrap();
                if resize_mid && i == 7 {
                    store.resize_node_cache(2);
                    store.resize_node_cache(64);
                }
            }
            store.pool().stats()
        };
        let base = run(false);
        let tuned = run(true);
        assert_eq!(base.logical_reads, tuned.logical_reads);
        assert_eq!(base.hits, tuned.hits);
        assert_eq!(base.physical_reads, tuned.physical_reads);
    }

    #[test]
    fn paged_store_zero_capacity_disables_cache() {
        let store = paged(0);
        let id = store.alloc(0, &[entry(1)]).unwrap();
        let a = NodeStore::read(&store, id).unwrap();
        let b = NodeStore::read(&store, id).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let cs = store.cache_stats();
        assert_eq!(cs.hits, 0);
        assert_eq!(cs.misses, 2);
        assert_eq!(cs.len, 0);
    }
}
