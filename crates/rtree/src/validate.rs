//! Structural validation and tree statistics.

use crate::entry::entries_mbr;
use crate::store::NodeStore;
use crate::tree::RTree;
use crate::{RTreeError, Result};
use nnq_geom::Rect;
use nnq_storage::PageId;

/// Statistics describing a built tree, as gathered by [`RTree::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Tree height in levels.
    pub height: u32,
    /// Total number of nodes (pages).
    pub nodes: u64,
    /// Number of leaf nodes.
    pub leaves: u64,
    /// Number of data entries.
    pub data_entries: u64,
    /// Node count per level, index 0 = leaves.
    pub nodes_per_level: Vec<u64>,
    /// Mean node fill (entries / capacity) over all nodes.
    pub avg_fill: f64,
    /// Sum of node-MBR areas per level (a standard index-quality measure:
    /// lower means better clustering).
    pub area_per_level: Vec<f64>,
    /// Sum of pairwise overlap areas between sibling MBRs at each level of
    /// internal nodes (index 0 = children of the root's level... i.e. the
    /// level the overlapping entries *point to*). Lower is better.
    pub overlap_per_level: Vec<f64>,
}

impl<const D: usize, S: NodeStore<D>> RTree<D, S> {
    /// Checks every structural invariant of the tree:
    ///
    /// 1. all leaves are at level 0 and the root is at `height - 1`;
    /// 2. each internal entry's MBR is the *tight* union of its child's
    ///    entries (tightness is what makes MINMAXDIST a valid upper bound);
    /// 3. node sizes are within capacity, and — for `strict_fill` — at
    ///    least the configured minimum for non-root nodes;
    /// 4. child levels decrease by exactly one;
    /// 5. the recorded entry count matches the actual number of leaf
    ///    entries.
    ///
    /// Bulk-loaded (packed) trees may legitimately contain trailing nodes
    /// below the dynamic minimum fill, so [`RTree::validate`] uses the
    /// lenient mode; dynamic-only tests can call
    /// [`RTree::validate_strict`].
    pub fn validate_with(&self, strict_fill: bool) -> Result<()> {
        if self.height() == 0 {
            if self.root().is_valid() || !self.is_empty() {
                return Err(RTreeError::Invalid(
                    "empty tree must have no root and zero count".into(),
                ));
            }
            return Ok(());
        }
        let root = self.read_node(self.root())?;
        if u32::from(root.level()) != self.height() - 1 {
            return Err(RTreeError::Invalid(format!(
                "root level {} does not match height {}",
                root.level(),
                self.height()
            )));
        }
        let mut data_entries = 0u64;
        self.validate_node(self.root(), None, true, strict_fill, &mut data_entries)?;
        if data_entries != self.len() {
            return Err(RTreeError::Invalid(format!(
                "meta count {} but found {} data entries",
                self.len(),
                data_entries
            )));
        }
        Ok(())
    }

    /// Lenient validation (see [`RTree::validate_with`]).
    pub fn validate(&self) -> Result<()> {
        self.validate_with(false)
    }

    /// Strict validation including minimum-fill checks (dynamic trees only).
    pub fn validate_strict(&self) -> Result<()> {
        self.validate_with(true)
    }

    fn validate_node(
        &self,
        page: PageId,
        expected_mbr: Option<Rect<D>>,
        is_root: bool,
        strict_fill: bool,
        data_entries: &mut u64,
    ) -> Result<()> {
        let node = self.read_node(page)?;
        let fail = |msg: String| Err(RTreeError::Invalid(format!("{page}: {msg}")));

        if node.entries().is_empty() && !(is_root && node.is_leaf()) {
            return fail("empty non-root node".into());
        }
        if node.entries().len() > self.max_entries() {
            return fail(format!(
                "{} entries exceeds capacity {}",
                node.entries().len(),
                self.max_entries()
            ));
        }
        if strict_fill && !is_root && node.entries().len() < self.min_entries() {
            return fail(format!(
                "{} entries below minimum {}",
                node.entries().len(),
                self.min_entries()
            ));
        }
        if is_root && !node.is_leaf() && node.entries().len() < 2 {
            return fail("internal root with fewer than 2 children".into());
        }
        // Tightness: the parent's recorded MBR must equal our exact union.
        let mbr = entries_mbr(node.entries());
        if let Some(expected) = expected_mbr {
            if expected != mbr {
                return fail(format!(
                    "parent MBR {expected:?} is not the tight union {mbr:?}"
                ));
            }
        }
        for e in node.entries() {
            if !e.mbr.is_valid() {
                return fail(format!("invalid entry MBR {:?}", e.mbr));
            }
        }
        if node.is_leaf() {
            *data_entries += node.entries().len() as u64;
            return Ok(());
        }
        for e in node.entries() {
            let child = self.read_node(e.child())?;
            if child.level() + 1 != node.level() {
                return fail(format!(
                    "child {} at level {} under node at level {}",
                    e.child(),
                    child.level(),
                    node.level()
                ));
            }
            self.validate_node(e.child(), Some(e.mbr), false, strict_fill, data_entries)?;
        }
        Ok(())
    }

    /// Gathers [`TreeStats`] by walking the whole tree.
    pub fn stats(&self) -> Result<TreeStats> {
        let mut s = TreeStats {
            height: self.height(),
            ..TreeStats::default()
        };
        if self.height() == 0 {
            return Ok(s);
        }
        s.nodes_per_level = vec![0; self.height() as usize];
        s.area_per_level = vec![0.0; self.height() as usize];
        s.overlap_per_level = vec![0.0; self.height() as usize];
        let mut fill_sum = 0.0;
        let mut stack = vec![self.root()];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            s.nodes += 1;
            s.nodes_per_level[node.level() as usize] += 1;
            s.area_per_level[node.level() as usize] += node.mbr().area();
            fill_sum += node.entries().len() as f64 / self.max_entries() as f64;
            if node.is_leaf() {
                s.leaves += 1;
                s.data_entries += node.entries().len() as u64;
            } else {
                for (i, e) in node.entries().iter().enumerate() {
                    for o in &node.entries()[i + 1..] {
                        s.overlap_per_level[(node.level() - 1) as usize] +=
                            e.mbr.overlap_area(&o.mbr);
                    }
                    stack.push(e.child());
                }
            }
        }
        s.avg_fill = fill_sum / s.nodes as f64;
        Ok(s)
    }
}
