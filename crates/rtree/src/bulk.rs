//! Bulk loading ("packed" R-trees).
//!
//! Packed R-trees — introduced by Roussopoulos and Leifker, and the
//! construction RKV's group used for static datasets — build the index
//! bottom-up from a sorted sequence of rectangles instead of inserting one
//! at a time. Two orderings are provided:
//!
//! * **STR** (sort-tile-recursive): sort by x-center, cut into vertical
//!   slabs, sort each slab by y-center, pack runs into leaves. Produces
//!   near-square leaves with minimal overlap. (2-D only; higher dimensions
//!   fall back to Hilbert packing.)
//! * **Hilbert packing**: sort rectangle centers along a Hilbert curve and
//!   pack sequentially. Slightly worse leaf quality, much simpler, any
//!   dimension whose first two coordinates dominate.
//!
//! Upper levels are packed by the same ordering applied to the node MBRs,
//! recursively, until a single root remains. Both tree backends support
//! bulk loading ([`RTree::bulk_load`] for paged trees,
//! [`MemRTree::bulk`] for in-memory ones).

use crate::config::RTreeConfig;
use crate::entry::{entries_mbr, Entry, RecordId};
use crate::store::{MemStore, NodeStore, PagedStore};
use crate::tree::{MemRTree, RTree};
use crate::Result;
use nnq_geom::{hilbert_key, Rect};
use nnq_storage::BufferPool;
use std::sync::Arc;

/// Bulk-load orderings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BulkMethod {
    /// Sort-tile-recursive packing (2-D; other dimensions use Hilbert).
    Str,
    /// Hilbert-curve packing.
    Hilbert,
    /// Low-x packing: sort by the rectangles' low x-coordinate only — the
    /// original packed R-tree of Roussopoulos & Leifker (1985), i.e. the
    /// static construction of the RKV group itself. Simple and historically
    /// faithful; produces tall thin leaves, so query quality trails STR and
    /// Hilbert on 2-D data (experiment E7 quantifies this).
    LowX,
}

impl<const D: usize> RTree<D, PagedStore<D>> {
    /// Builds a packed paged tree from `items` in one bottom-up pass.
    ///
    /// Nodes are filled to `fill` of capacity (clamped to `[0.5, 1.0]`;
    /// packed trees traditionally use 1.0). The resulting tree satisfies
    /// all invariants checked by [`RTree::validate`]; trailing nodes may
    /// hold fewer than the dynamic minimum number of entries.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        config: RTreeConfig,
        items: Vec<(Rect<D>, RecordId)>,
        method: BulkMethod,
        fill: f64,
    ) -> Result<Self> {
        let store = PagedStore::create(pool)?;
        let tree = RTree::empty_on(store, config);
        pack_into(&tree, items, method, fill)?;
        Ok(tree)
    }
}

impl<const D: usize> MemRTree<D> {
    /// Builds a packed in-memory tree from `items`.
    pub fn bulk(
        items: Vec<(Rect<D>, RecordId)>,
        method: BulkMethod,
        config: RTreeConfig,
        fanout: usize,
    ) -> Result<Self> {
        let store = MemStore::new(fanout);
        let tree = RTree::empty_on(store, config);
        pack_into(&tree, items, method, 1.0)?;
        Ok(tree)
    }
}

/// The shared bottom-up packing pass.
fn pack_into<const D: usize, S: NodeStore<D>>(
    tree: &RTree<D, S>,
    items: Vec<(Rect<D>, RecordId)>,
    method: BulkMethod,
    fill: f64,
) -> Result<()> {
    if items.is_empty() {
        // Still persist the (empty) metadata so paged trees reopen cleanly.
        return tree.set_meta_after_bulk(nnq_storage::PageId::INVALID, 0, 0);
    }
    for (mbr, _) in &items {
        assert!(mbr.is_valid(), "cannot index an invalid rectangle");
    }
    let per_node = ((tree.max_entries() as f64 * fill.clamp(0.5, 1.0)).floor() as usize)
        .clamp(2, tree.max_entries());
    let count = items.len() as u64;

    let mut entries: Vec<Entry<D>> = items
        .into_iter()
        .map(|(mbr, rid)| Entry::for_record(mbr, rid))
        .collect();

    let mut level: u16 = 0;
    loop {
        order_entries(&mut entries, method);
        // Pack runs of `per_node` entries into nodes at this level.
        let mut parents: Vec<Entry<D>> = Vec::with_capacity(entries.len() / per_node + 1);
        for chunk in entries.chunks(per_node) {
            let page = tree.store().alloc(level, chunk)?;
            parents.push(Entry::for_child(entries_mbr(chunk), page));
        }
        if parents.len() == 1 {
            return tree.set_meta_after_bulk(parents[0].child(), u32::from(level) + 1, count);
        }
        entries = parents;
        level += 1;
    }
}

/// Orders entries for packing: STR tiling in 2-D, Hilbert otherwise.
fn order_entries<const D: usize>(entries: &mut [Entry<D>], method: BulkMethod) {
    match method {
        BulkMethod::Str if D == 2 => str_order(entries),
        BulkMethod::LowX => {
            entries.sort_by(|a, b| a.mbr.lo()[0].total_cmp(&b.mbr.lo()[0]));
        }
        _ => hilbert_order(entries),
    }
}

fn str_order<const D: usize>(entries: &mut [Entry<D>]) {
    // Sort by x-center, slice into ceil(sqrt(n_chunks)) vertical slabs of
    // equal entry count, then sort each slab by y-center. Chunked packing
    // by the caller then tiles the plane.
    let n = entries.len();
    entries.sort_by(|a, b| a.mbr.center()[0].total_cmp(&b.mbr.center()[0]));
    let slabs = (n as f64).sqrt().ceil() as usize;
    let per_slab = n.div_ceil(slabs);
    for slab in entries.chunks_mut(per_slab.max(1)) {
        slab.sort_by(|a, b| a.mbr.center()[1].total_cmp(&b.mbr.center()[1]));
    }
}

fn hilbert_order<const D: usize>(entries: &mut [Entry<D>]) {
    // Normalize centers into the Hilbert grid using the dataset bounds of
    // the first two dimensions — the same keying `partition.rs` uses for
    // Hilbert-range splitting (`nnq_geom::hilbert_key`).
    let bounds = entries_mbr(entries);
    let mut keyed: Vec<(u64, Entry<D>)> = entries
        .iter()
        .map(|e| (hilbert_key(&e.mbr.center(), &bounds), *e))
        .collect();
    keyed.sort_by_key(|(k, _)| *k);
    for (slot, (_, e)) in entries.iter_mut().zip(keyed) {
        *slot = e;
    }
}
