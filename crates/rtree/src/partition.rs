//! Hilbert-range partitioned multi-trees.
//!
//! A [`PartitionedTree`] splits a dataset into `P` independent R-trees by
//! Hilbert key range: every item is keyed by [`nnq_geom::hilbert_key`]
//! over the *dataset* bounds, the keyed items are sorted, and the sorted
//! sequence is cut into `P` equal-count chunks. Because consecutive
//! Hilbert keys are spatially adjacent, each chunk — and therefore each
//! partition's tree — covers a compact region of space, which is what
//! makes MINDIST-to-partition-MBR pruning effective (see the scatter-gather
//! search in `nnq-core`).
//!
//! Each partition is a complete, self-contained [`RTree`] on its **own**
//! [`BufferPool`] (own frame budget, own decoded-node cache, own
//! prefetcher). The only shared state is the [`PartitionManifest`]: the
//! dataset bounds the keys were computed in plus, per partition, its
//! observed key range, entry count, and MBR. The manifest is tiny and
//! text-encoded ([`PartitionManifest::encode`]) with `f64` coordinates
//! stored as raw bit patterns, so a round trip through disk is exact.
//!
//! This is the in-process rehearsal of a scale-out deployment: each
//! partition could live on its own machine, with the manifest as the
//! router's only global knowledge.

use crate::bulk::BulkMethod;
use crate::config::RTreeConfig;
use crate::entry::RecordId;
use crate::store::{NodeStore, PagedStore};
use crate::tree::RTree;
use crate::{RTreeError, Result};
use nnq_geom::{hilbert_key, Rect};
use nnq_storage::{BufferPool, MemDisk, PoolStats, PAGE_SIZE};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-partition metadata recorded in the [`PartitionManifest`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionMeta<const D: usize> {
    /// Smallest Hilbert key observed in this partition (0 when empty).
    pub key_lo: u64,
    /// Largest Hilbert key observed in this partition (0 when empty).
    pub key_hi: u64,
    /// Number of data entries in this partition.
    pub count: u64,
    /// Tight MBR of the partition's entries ([`Rect::empty`] when empty).
    pub mbr: Rect<D>,
}

/// The global metadata of a partitioned tree: the dataset bounds the
/// Hilbert keys were computed in, plus one [`PartitionMeta`] per
/// partition, in key order.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionManifest<const D: usize> {
    /// Dataset bounds used to normalize centers into the Hilbert grid.
    pub bounds: Rect<D>,
    /// Per-partition metadata, ordered by key range.
    pub parts: Vec<PartitionMeta<D>>,
}

const MANIFEST_HEADER: &str = "nnq-partition-manifest v1";

fn rect_bits<const D: usize>(r: &Rect<D>, out: &mut String) {
    use std::fmt::Write;
    for i in 0..D {
        let _ = write!(out, " {}", r.lo()[i].to_bits());
    }
    for i in 0..D {
        let _ = write!(out, " {}", r.hi()[i].to_bits());
    }
}

fn parse_rect<const D: usize>(tokens: &mut std::str::SplitWhitespace<'_>) -> Result<Rect<D>> {
    let mut lo = [0.0f64; D];
    let mut hi = [0.0f64; D];
    for slot in lo.iter_mut().chain(hi.iter_mut()) {
        *slot = f64::from_bits(parse_u64(tokens)?);
    }
    // A manifest rectangle is either a tight union of valid MBRs (ordered
    // corners) or `Rect::empty()` (inverted infinite corners, which
    // `Rect::new` would flip); restore the canonical empty value directly.
    if (0..D).any(|i| lo[i] > hi[i]) {
        return Ok(Rect::empty());
    }
    Ok(Rect::new(
        nnq_geom::Point::new(lo),
        nnq_geom::Point::new(hi),
    ))
}

fn parse_u64(tokens: &mut std::str::SplitWhitespace<'_>) -> Result<u64> {
    tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| RTreeError::Invalid("manifest: truncated or non-numeric token".into()))
}

impl<const D: usize> PartitionManifest<D> {
    /// Total entry count across all partitions.
    pub fn total_count(&self) -> u64 {
        self.parts.iter().map(|p| p.count).sum()
    }

    /// Serializes the manifest to its text form. Coordinates are written
    /// as `f64::to_bits` integers, so [`PartitionManifest::decode`]
    /// reconstructs them bit-exactly (including infinities in the empty
    /// rectangle).
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{MANIFEST_HEADER}");
        let _ = writeln!(out, "dims {D}");
        let _ = writeln!(out, "partitions {}", self.parts.len());
        let mut line = String::from("bounds");
        rect_bits(&self.bounds, &mut line);
        let _ = writeln!(out, "{line}");
        for p in &self.parts {
            let mut line = format!("part {} {} {}", p.key_lo, p.key_hi, p.count);
            rect_bits(&p.mbr, &mut line);
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Parses a manifest previously produced by
    /// [`PartitionManifest::encode`].
    pub fn decode(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        let bad = |msg: &str| RTreeError::Invalid(format!("manifest: {msg}"));
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad("missing or unknown header"));
        }
        let dims_line = lines.next().ok_or_else(|| bad("missing dims line"))?;
        let dims: usize = dims_line
            .strip_prefix("dims ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed dims line"))?;
        if dims != D {
            return Err(bad(&format!(
                "dimension mismatch: file has {dims}, caller wants {D}"
            )));
        }
        let count_line = lines.next().ok_or_else(|| bad("missing partitions line"))?;
        let count: usize = count_line
            .strip_prefix("partitions ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed partitions line"))?;
        let bounds_line = lines.next().ok_or_else(|| bad("missing bounds line"))?;
        let mut tokens = bounds_line
            .strip_prefix("bounds")
            .ok_or_else(|| bad("malformed bounds line"))?
            .split_whitespace();
        let bounds = parse_rect::<D>(&mut tokens)?;
        let mut parts = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("truncated part list"))?;
            let mut tokens = line
                .strip_prefix("part")
                .ok_or_else(|| bad("malformed part line"))?
                .split_whitespace();
            let key_lo = parse_u64(&mut tokens)?;
            let key_hi = parse_u64(&mut tokens)?;
            let n = parse_u64(&mut tokens)?;
            let mbr = parse_rect::<D>(&mut tokens)?;
            parts.push(PartitionMeta {
                key_lo,
                key_hi,
                count: n,
                mbr,
            });
        }
        Ok(Self { bounds, parts })
    }
}

/// Splits `items` into `partitions` equal-count chunks by Hilbert key
/// range and returns the chunks with their [`PartitionManifest`].
///
/// Items are keyed by [`hilbert_key`] over the union of all item MBRs —
/// the *same* keying the Hilbert bulk loader uses — and stably sorted by
/// key. The sorted sequence is cut into `partitions` contiguous chunks
/// whose sizes differ by at most one (the first `n % partitions` chunks
/// take the extra item). With `partitions == 1` the single chunk is the
/// whole dataset in Hilbert order, so a tree bulk-loaded from it is
/// structurally identical to a Hilbert bulk load of the original items.
///
/// # Panics
/// Panics if `partitions == 0` or any MBR is invalid.
pub fn hilbert_split<const D: usize>(
    items: Vec<(Rect<D>, RecordId)>,
    partitions: usize,
) -> (Vec<Vec<(Rect<D>, RecordId)>>, PartitionManifest<D>) {
    assert!(partitions > 0, "need at least one partition");
    let mut bounds = Rect::empty();
    for (mbr, _) in &items {
        assert!(mbr.is_valid(), "cannot partition an invalid rectangle");
        bounds.union_in_place(mbr);
    }
    let mut keyed: Vec<(u64, (Rect<D>, RecordId))> = items
        .into_iter()
        .map(|item| (hilbert_key(&item.0.center(), &bounds), item))
        .collect();
    // Stable sort by key: ties keep input order, mirroring the bulk
    // loader's `sort_by_key`, which is what makes P=1 structure-identical
    // to a plain Hilbert bulk load.
    keyed.sort_by_key(|(k, _)| *k);

    let n = keyed.len();
    let base = n / partitions;
    let extra = n % partitions;
    let mut chunks = Vec::with_capacity(partitions);
    let mut parts = Vec::with_capacity(partitions);
    let mut it = keyed.into_iter();
    for i in 0..partitions {
        let take = base + usize::from(i < extra);
        let mut chunk = Vec::with_capacity(take);
        let (mut key_lo, mut key_hi) = (u64::MAX, 0u64);
        let mut mbr = Rect::empty();
        for (key, item) in it.by_ref().take(take) {
            key_lo = key_lo.min(key);
            key_hi = key_hi.max(key);
            mbr.union_in_place(&item.0);
            chunk.push(item);
        }
        if chunk.is_empty() {
            (key_lo, key_hi) = (0, 0);
        }
        parts.push(PartitionMeta {
            key_lo,
            key_hi,
            count: chunk.len() as u64,
            mbr,
        });
        chunks.push(chunk);
    }
    (chunks, PartitionManifest { bounds, parts })
}

/// A dataset split into `P` independent R-trees by Hilbert key range.
///
/// See the module docs for the construction. Queries go through the
/// scatter-gather search in `nnq-core` (`partitioned_knn` /
/// `partitioned_radius`), which consults [`PartitionedTree::manifest`]
/// to order and prune partitions by MINDIST to their MBRs.
pub struct PartitionedTree<const D: usize> {
    parts: Vec<RTree<D, PagedStore<D>>>,
    manifest: PartitionManifest<D>,
}

impl<const D: usize> PartitionedTree<D> {
    /// Bulk-loads a partitioned tree, one partition per pool in `pools`,
    /// using up to `build_threads` threads to build partitions in
    /// parallel (work is claimed from a shared cursor; the result is
    /// independent of the thread count because each partition's build is
    /// self-contained on its own pool).
    ///
    /// # Panics
    /// Panics if `pools` is empty or any MBR is invalid.
    pub fn bulk_load_on(
        pools: Vec<Arc<BufferPool>>,
        config: RTreeConfig,
        items: Vec<(Rect<D>, RecordId)>,
        method: BulkMethod,
        fill: f64,
        build_threads: usize,
    ) -> Result<Self> {
        let p = pools.len();
        assert!(p > 0, "need at least one partition pool");
        let (chunks, manifest) = hilbert_split(items, p);
        let threads = build_threads.clamp(1, p);
        // Each slot holds one partition's build input; workers claim
        // slots through the cursor and leave the built tree (or error)
        // in the matching result slot.
        type BuildSlot<const D: usize> = Mutex<Option<(Arc<BufferPool>, Vec<(Rect<D>, RecordId)>)>>;
        let slots: Vec<BuildSlot<D>> = pools
            .into_iter()
            .zip(chunks)
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        let results: Vec<Mutex<Option<Result<RTree<D, PagedStore<D>>>>>> =
            (0..p).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= p {
                        break;
                    }
                    let (pool, chunk) = slots[i].lock().take().expect("slot claimed once");
                    *results[i].lock() = Some(RTree::bulk_load(pool, config, chunk, method, fill));
                });
            }
        });
        let mut parts = Vec::with_capacity(p);
        for slot in results {
            parts.push(slot.into_inner().expect("worker filled every slot")?);
        }
        Self::from_parts(parts, manifest)
    }

    /// Bulk-loads a partitioned tree on fresh in-memory pools of
    /// `pool_frames` frames each — the test/bench constructor.
    pub fn bulk_load_in_memory(
        items: Vec<(Rect<D>, RecordId)>,
        partitions: usize,
        config: RTreeConfig,
        method: BulkMethod,
        fill: f64,
        pool_frames: usize,
        build_threads: usize,
    ) -> Result<Self> {
        let pools = (0..partitions)
            .map(|_| {
                Arc::new(BufferPool::new(
                    Box::new(MemDisk::new(PAGE_SIZE)),
                    pool_frames,
                ))
            })
            .collect();
        Self::bulk_load_on(pools, config, items, method, fill, build_threads)
    }

    /// Assembles a partitioned tree from already-built partitions (the
    /// reopen path: partitions opened from their own files plus a decoded
    /// manifest). Validates that the manifest and trees agree.
    pub fn from_parts(
        parts: Vec<RTree<D, PagedStore<D>>>,
        manifest: PartitionManifest<D>,
    ) -> Result<Self> {
        if parts.len() != manifest.parts.len() {
            return Err(RTreeError::Invalid(format!(
                "manifest lists {} partitions but {} trees were supplied",
                manifest.parts.len(),
                parts.len()
            )));
        }
        for (i, (tree, meta)) in parts.iter().zip(&manifest.parts).enumerate() {
            if tree.len() != meta.count {
                return Err(RTreeError::Invalid(format!(
                    "partition {i}: manifest says {} entries, tree has {}",
                    meta.count,
                    tree.len()
                )));
            }
        }
        Ok(Self { parts, manifest })
    }

    /// The partition trees, in manifest (key-range) order.
    pub fn partitions(&self) -> &[RTree<D, PagedStore<D>>] {
        &self.parts
    }

    /// The global manifest.
    pub fn manifest(&self) -> &PartitionManifest<D> {
        &self.manifest
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total number of data entries across all partitions.
    pub fn len(&self) -> u64 {
        self.parts.iter().map(|t| t.len()).sum()
    }

    /// Whether every partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer-pool statistics summed over all partitions' pools; the
    /// summed `logical_reads` is the dataset-wide "pages accessed" figure.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for tree in &self.parts {
            total.accumulate(tree.pool().stats());
        }
        total
    }

    /// Resets statistics on every partition's pool.
    pub fn reset_stats(&self) {
        for tree in &self.parts {
            tree.pool().reset_stats();
        }
    }

    /// Drops every partition's cached frames and decoded nodes (cold-cache
    /// measurement setup).
    pub fn clear_caches(&self) -> Result<()> {
        for tree in &self.parts {
            tree.pool().clear_cache()?;
            tree.store().clear_node_cache();
        }
        Ok(())
    }

    /// Per-partition tuning signals, in partition order (see
    /// [`crate::BackendSignals`]).
    pub fn partition_signals(&self) -> Vec<crate::BackendSignals> {
        self.parts
            .iter()
            .map(|t| t.store().backend_signals())
            .collect()
    }

    /// Redistributes a dataset-wide decoded-node cache budget of `total`
    /// nodes across partitions, proportionally to each partition's pool
    /// miss rate (lifetime, per the current counters) with an equal-share
    /// floor of `floor` nodes so no partition is starved. The worst-missing
    /// partitions get the most decode headroom. With no reads anywhere the
    /// budget falls back to an even split. Returns the installed
    /// per-partition capacities.
    ///
    /// Accounting-neutral: only [`PagedStore::resize_node_cache`] is
    /// touched, which never changes page-access counters.
    pub fn rebalance_cache_budget(&self, total: usize, floor: usize) -> Vec<usize> {
        let p = self.parts.len();
        if p == 0 {
            return Vec::new();
        }
        let floor = floor.min(total / p);
        let spread = total - floor * p;
        let miss: Vec<f64> = self
            .parts
            .iter()
            .map(|t| t.pool().stats().miss_rate())
            .collect();
        let sum: f64 = miss.iter().sum();
        let caps: Vec<usize> = if sum <= 0.0 {
            // Nothing measured (or perfectly warm everywhere): even split.
            let base = total / p;
            let rem = total % p;
            (0..p).map(|i| base + usize::from(i < rem)).collect()
        } else {
            let mut caps: Vec<usize> = miss
                .iter()
                .map(|m| floor + ((m / sum) * spread as f64) as usize)
                .collect();
            // Hand rounding leftovers to the worst misser so the budget is
            // fully spent.
            let spent: usize = caps.iter().sum();
            let worst = miss
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("p > 0");
            caps[worst] += total - spent;
            caps
        };
        for (tree, &cap) in self.parts.iter().zip(&caps) {
            tree.store().resize_node_cache(cap);
        }
        caps
    }

    /// Sets the active prefetch-worker count on every partition's pool
    /// (each partition owns an independent prefetcher). Returns the
    /// per-partition counts after clamping (`0` for partitions without a
    /// prefetcher).
    pub fn set_prefetch_workers(&self, n: usize) -> Vec<usize> {
        self.parts
            .iter()
            .map(|t| t.pool().set_prefetch_workers(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeAccess;
    use nnq_geom::Point;
    use nnq_storage::PageId;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<(Rect<2>, RecordId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let p = Point::new([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]);
                (Rect::from_point(p), RecordId(i as u64))
            })
            .collect()
    }

    /// Collects `(page-relative structure)` of a tree as (level, entries)
    /// in BFS order, for structural comparison.
    fn structure<const D: usize>(
        tree: &RTree<D, PagedStore<D>>,
    ) -> Vec<(u16, Vec<crate::entry::Entry<D>>)> {
        let mut out = Vec::new();
        let Some(root) = tree.access_root() else {
            return out;
        };
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(page) = queue.pop_front() {
            let node = tree.read_node(page).unwrap();
            if !node.is_leaf() {
                for e in node.entries() {
                    queue.push_back(e.child());
                }
            }
            out.push((node.level(), node.entries().to_vec()));
        }
        out
    }

    #[test]
    fn split_balances_counts_and_orders_keys() {
        let items = points(1003, 7);
        let (chunks, manifest) = hilbert_split(items.clone(), 4);
        assert_eq!(chunks.len(), 4);
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1003);
        assert!(sizes.iter().all(|&s| s == 250 || s == 251));
        // Key ranges are disjoint and ascending across partitions.
        for w in manifest.parts.windows(2) {
            assert!(w[0].key_hi <= w[1].key_lo);
        }
        // Every item survives exactly once.
        let mut ids: Vec<u64> = chunks.iter().flatten().map(|(_, rid)| rid.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..1003).collect::<Vec<_>>());
        assert_eq!(manifest.total_count(), 1003);
        // Manifest MBRs cover their chunks tightly.
        for (chunk, meta) in chunks.iter().zip(&manifest.parts) {
            let mut mbr = Rect::empty();
            for (r, _) in chunk {
                mbr.union_in_place(r);
            }
            assert_eq!(mbr, meta.mbr);
            assert_eq!(meta.count as usize, chunk.len());
        }
    }

    #[test]
    fn split_with_more_partitions_than_items_leaves_empty_tails() {
        let items = points(3, 1);
        let (chunks, manifest) = hilbert_split(items, 8);
        assert_eq!(chunks.len(), 8);
        assert!(chunks[..3].iter().all(|c| c.len() == 1));
        assert!(chunks[3..].iter().all(Vec::is_empty));
        for meta in &manifest.parts[3..] {
            assert_eq!((meta.key_lo, meta.key_hi, meta.count), (0, 0, 0));
            assert!(meta.mbr.is_empty());
        }
    }

    #[test]
    fn manifest_roundtrips_bit_exactly() {
        let (_, manifest) = hilbert_split(points(257, 11), 5);
        let decoded = PartitionManifest::<2>::decode(&manifest.encode()).unwrap();
        assert_eq!(decoded, manifest);
        // Including empty partitions with infinite empty-rect coordinates.
        let (_, manifest) = hilbert_split(points(2, 3), 4);
        let decoded = PartitionManifest::<2>::decode(&manifest.encode()).unwrap();
        assert_eq!(decoded, manifest);
    }

    #[test]
    fn manifest_decode_rejects_garbage() {
        assert!(PartitionManifest::<2>::decode("not a manifest").is_err());
        let (_, manifest) = hilbert_split(points(10, 5), 2);
        let text = manifest.encode();
        // Wrong dimension.
        assert!(PartitionManifest::<3>::decode(&text).is_err());
        // Truncated part list.
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(PartitionManifest::<2>::decode(&truncated).is_err());
    }

    #[test]
    fn single_partition_matches_plain_hilbert_bulk_load() {
        let items = points(2000, 23);
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 4096));
        let single = RTree::<2>::bulk_load(
            pool,
            RTreeConfig::default(),
            items.clone(),
            BulkMethod::Hilbert,
            1.0,
        )
        .unwrap();
        let part = PartitionedTree::bulk_load_in_memory(
            items,
            1,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            4096,
            1,
        )
        .unwrap();
        assert_eq!(part.partition_count(), 1);
        assert_eq!(structure(&single), structure(&part.partitions()[0]));
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let items = points(3000, 31);
        let seq = PartitionedTree::bulk_load_in_memory(
            items.clone(),
            4,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            4096,
            1,
        )
        .unwrap();
        let par = PartitionedTree::bulk_load_in_memory(
            items,
            4,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            4096,
            4,
        )
        .unwrap();
        assert_eq!(seq.manifest(), par.manifest());
        for (a, b) in seq.partitions().iter().zip(par.partitions()) {
            assert_eq!(structure(a), structure(b));
            a.validate().unwrap();
        }
        assert_eq!(seq.len(), 3000);
    }

    #[test]
    fn from_parts_validates_counts() {
        let items = points(100, 41);
        let (chunks, manifest) = hilbert_split(items, 2);
        let mut trees = Vec::new();
        for chunk in chunks {
            let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1024));
            trees.push(
                RTree::<2>::bulk_load(
                    pool,
                    RTreeConfig::default(),
                    chunk,
                    BulkMethod::Hilbert,
                    1.0,
                )
                .unwrap(),
            );
        }
        // Mismatched lengths rejected.
        let one = trees.pop().unwrap();
        assert!(PartitionedTree::from_parts(vec![one], manifest.clone()).is_err());
        // Mismatched counts rejected.
        let mut bad = manifest.clone();
        bad.parts.truncate(1);
        bad.parts[0].count += 1;
        assert!(PartitionedTree::from_parts(trees, bad).is_err());
    }

    #[test]
    fn empty_dataset_builds_empty_partitions() {
        let part = PartitionedTree::<2>::bulk_load_in_memory(
            Vec::new(),
            4,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            64,
            2,
        )
        .unwrap();
        assert!(part.is_empty());
        assert_eq!(part.partition_count(), 4);
        for tree in part.partitions() {
            assert_eq!(tree.root(), PageId::INVALID);
        }
    }

    #[test]
    fn cache_budget_rebalance_spends_total_and_favors_missers() {
        let part = PartitionedTree::bulk_load_in_memory(
            points(2000, 31),
            4,
            RTreeConfig::default(),
            BulkMethod::Hilbert,
            1.0,
            4096,
            1,
        )
        .unwrap();

        // No reads yet: even split, budget fully spent.
        let caps = part.rebalance_cache_budget(1000, 64);
        assert_eq!(caps.len(), 4);
        assert_eq!(caps.iter().sum::<usize>(), 1000);
        assert!(caps.iter().all(|&c| c == 250));
        for (tree, &cap) in part.partitions().iter().zip(&caps) {
            assert_eq!(tree.store().cache_stats().capacity, cap);
        }

        // Heat up partition 0 (warm: all hits after first pass) and leave
        // partition 3 cold-missing by clearing its frames between reads.
        part.reset_stats();
        let p0 = &part.partitions()[0];
        let r0 = p0.access_root().unwrap();
        for _ in 0..64 {
            p0.read_node(r0).unwrap();
        }
        let p3 = &part.partitions()[3];
        let r3 = p3.access_root().unwrap();
        for _ in 0..64 {
            p3.pool().clear_cache().unwrap();
            p3.read_node(r3).unwrap();
        }
        let caps = part.rebalance_cache_budget(1000, 64);
        assert_eq!(caps.iter().sum::<usize>(), 1000);
        assert!(caps.iter().all(|&c| c >= 64), "floor violated: {caps:?}");
        assert!(
            caps[3] > caps[0],
            "worst misser must get the biggest share: {caps:?}"
        );

        // Per-partition signals expose the same counters the budget used.
        let signals = part.partition_signals();
        assert_eq!(signals.len(), 4);
        assert!(signals[3].physical_reads > signals[0].physical_reads);
        assert_eq!(signals[3].cache_capacity, caps[3]);
    }
}
