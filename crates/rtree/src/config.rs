//! Tree configuration.

/// Node-split algorithm used on overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SplitStrategy {
    /// Guttman's linear split: O(n) seed picking by normalized separation.
    Linear = 0,
    /// Guttman's quadratic split: O(n²) seed picking by wasted area. This
    /// is the split RKV'95-era systems used by default.
    Quadratic = 1,
    /// The R\*-tree split (margin-driven axis choice, overlap-driven
    /// distribution) with forced reinsertion on first overflow per level.
    RStar = 2,
}

/// Configuration of an [`crate::RTree`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RTreeConfig {
    /// Split algorithm for dynamic inserts.
    pub split: SplitStrategy,
    /// Minimum node fill as a fraction of the maximum (Guttman's `m/M`).
    /// The classical choice is 0.4; must lie in `(0, 0.5]`.
    pub min_fill: f64,
    /// Fraction of entries to reinsert on R\* forced reinsertion
    /// (ignored by the other strategies). The R\*-tree paper recommends 0.3.
    pub reinsert_fraction: f64,
    /// Caps the node fanout below the page capacity. Useful in tests to
    /// force deep trees with few entries; `None` uses the full page.
    pub max_entries_override: Option<usize>,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            split: SplitStrategy::Quadratic,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
            max_entries_override: None,
        }
    }
}

impl RTreeConfig {
    /// A configuration with the given split strategy and defaults otherwise.
    pub fn with_split(split: SplitStrategy) -> Self {
        Self {
            split,
            ..Self::default()
        }
    }

    /// A small-fanout configuration for tests (forces multi-level trees on
    /// small datasets).
    pub fn for_testing(max_entries: usize) -> Self {
        Self {
            max_entries_override: Some(max_entries),
            ..Self::default()
        }
    }

    /// The effective maximum entries per node for a page of `page_size`
    /// bytes and dimensionality `dims` (paged trees).
    pub fn max_entries(&self, page_size: usize, dims: usize) -> usize {
        self.effective_max(crate::codec::node_capacity(page_size, dims))
    }

    /// The effective maximum entries per node given a backend capacity.
    pub fn effective_max(&self, capacity: usize) -> usize {
        let m = self
            .max_entries_override
            .map_or(capacity, |o| o.min(capacity));
        assert!(m >= 4, "node fanout must be at least 4, got {m}");
        m
    }

    /// The minimum entries per non-root node derived from
    /// [`RTreeConfig::min_fill`]. At least 2, at most half the maximum.
    pub fn min_entries(&self, max_entries: usize) -> usize {
        ((max_entries as f64 * self.min_fill).floor() as usize).clamp(2, max_entries / 2)
    }

    /// Number of entries the R\* forced-reinsert pass removes.
    pub fn reinsert_count(&self, max_entries: usize) -> usize {
        ((max_entries as f64 * self.reinsert_fraction).floor() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quadratic_forty_percent() {
        let c = RTreeConfig::default();
        assert_eq!(c.split, SplitStrategy::Quadratic);
        assert_eq!(c.min_fill, 0.4);
        assert_eq!(c.max_entries(4096, 2), 102);
        assert_eq!(c.min_entries(102), 40);
    }

    #[test]
    fn override_caps_fanout() {
        let c = RTreeConfig::for_testing(8);
        assert_eq!(c.max_entries(4096, 2), 8);
        assert_eq!(c.min_entries(8), 3);
    }

    #[test]
    fn override_cannot_exceed_page_capacity() {
        let c = RTreeConfig {
            max_entries_override: Some(10_000),
            ..RTreeConfig::default()
        };
        assert_eq!(c.max_entries(4096, 2), 102);
    }

    #[test]
    fn min_entries_never_exceeds_half() {
        let c = RTreeConfig {
            min_fill: 0.5,
            ..RTreeConfig::default()
        };
        assert_eq!(c.min_entries(7), 3);
        assert_eq!(c.min_entries(4), 2);
    }

    #[test]
    fn reinsert_count_is_thirty_percent() {
        let c = RTreeConfig::default();
        assert_eq!(c.reinsert_count(102), 30);
        assert_eq!(c.reinsert_count(10), 3);
        assert_eq!(c.reinsert_count(4), 1);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_is_rejected() {
        RTreeConfig::for_testing(3).max_entries(4096, 2);
    }
}
