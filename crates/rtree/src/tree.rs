//! The R-tree proper: creation, insertion, deletion, queries.
//!
//! [`RTree`] is generic over its [`NodeStore`] backend: the default
//! [`PagedStore`] keeps one node per disk page (the paper's setting);
//! [`MemRTree`] is the same tree over a heap arena. All mutation and query
//! logic is written once against the store trait.

use crate::codec::{Meta, RawNode};
use crate::config::{RTreeConfig, SplitStrategy};
use crate::entry::{entries_mbr, Entry, RecordId};
use crate::split::{split_entries, take_reinsert_victims};
use crate::store::{MemStore, NodeStore, PagedStore};
use crate::{RTreeError, Result};
use nnq_geom::{Point, Rect, SoaRects};
use nnq_storage::{BufferPool, PageId};
use std::collections::HashSet;
use std::sync::Arc;

/// A shared view of a decoded R-tree node, as returned by
/// [`RTree::read_node`].
///
/// This is the navigation surface the nearest-neighbor search in
/// `nnq-core` drives: it exposes the node's level and its `(MBR, pointer)`
/// entries without leaking any storage detail. The node data is
/// `Arc`-backed — cloning a view is two pointer-sized copies, and repeat
/// reads of a cached page share one decoded allocation instead of copying
/// the entry array per visit.
///
/// A view is an immutable snapshot: a concurrent (or later) write to the
/// same page publishes a fresh node and never mutates data behind an
/// outstanding view.
#[derive(Clone, Debug)]
pub struct NodeView<const D: usize> {
    page: PageId,
    node: Arc<RawNode<D>>,
}

impl<const D: usize> NodeView<D> {
    pub(crate) fn new(page: PageId, node: Arc<RawNode<D>>) -> Self {
        Self { page, node }
    }

    /// The node's handle (a disk page for paged trees, an arena slot for
    /// in-memory trees).
    #[inline]
    pub fn page(&self) -> PageId {
        self.page
    }

    /// Node level: 0 for leaves, `height - 1` for the root.
    #[inline]
    pub fn level(&self) -> u16 {
        self.node.level
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.node.level == 0
    }

    /// The node's entries.
    #[inline]
    pub fn entries(&self) -> &[Entry<D>] {
        &self.node.entries
    }

    /// The struct-of-arrays view of the entry MBRs (same order as
    /// [`NodeView::entries`]), built once per decode and cached with the
    /// node — the input the `nnq-geom` batch kernels consume.
    #[inline]
    pub fn soa(&self) -> &SoaRects<D> {
        self.node.soa()
    }

    /// The tight bounding rectangle of this node's entries.
    pub fn mbr(&self) -> Rect<D> {
        entries_mbr(&self.node.entries)
    }
}

/// Read-only navigation over any R-tree backend.
///
/// The nearest-neighbor algorithms in `nnq-core` are generic over this
/// trait, so they run unchanged on paged and in-memory trees.
pub trait TreeAccess<const D: usize> {
    /// The root node's handle, or `None` for an empty tree.
    fn access_root(&self) -> Option<PageId>;

    /// Reads the node under `page`.
    fn access_node(&self, page: PageId) -> Result<NodeView<D>>;

    /// Number of data entries in the tree.
    fn num_records(&self) -> u64;

    /// Hints that `page` will likely be accessed soon. Advisory and
    /// non-blocking; the default does nothing. Implementations must not
    /// let a hint change the result or the accounting of any subsequent
    /// [`TreeAccess::access_node`].
    fn prefetch_node(&self, _page: PageId) {}

    /// Fraction of recent node accesses that missed the backend's page
    /// cache, in `[0, 1]` (`0.0` where there is no I/O). Drives the
    /// adaptive prefetch policy.
    fn io_miss_rate(&self) -> f64 {
        0.0
    }
}

impl<const D: usize, S: NodeStore<D>> TreeAccess<D> for RTree<D, S> {
    fn access_root(&self) -> Option<PageId> {
        self.meta.root.is_valid().then_some(self.meta.root)
    }

    fn access_node(&self, page: PageId) -> Result<NodeView<D>> {
        self.read_node(page)
    }

    fn num_records(&self) -> u64 {
        self.len()
    }

    fn prefetch_node(&self, page: PageId) {
        self.store.prefetch(page);
    }

    fn io_miss_rate(&self) -> f64 {
        self.store.io_miss_rate()
    }
}

/// A dynamic R-tree over `D`-dimensional rectangles.
///
/// See the crate docs for an overview and example. All read operations take
/// `&self`; mutations take `&mut self` (one writer at a time, many readers —
/// matching the single-writer discipline of the original systems).
pub struct RTree<const D: usize, S = PagedStore<D>> {
    store: S,
    meta: Meta,
    max_entries: usize,
    min_entries: usize,
}

/// An in-memory R-tree: identical algorithms, heap-arena storage, no page
/// accounting. Use it when the index is rebuilt per process and speed
/// matters more than persistence.
///
/// ```
/// use nnq_rtree::{MemRTree, RecordId};
/// use nnq_geom::{Point, Rect};
///
/// let mut tree = MemRTree::<2>::new();
/// for i in 0..100u64 {
///     tree.insert(Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i)).unwrap();
/// }
/// assert_eq!(tree.len(), 100);
/// tree.validate().unwrap();
/// ```
pub type MemRTree<const D: usize> = RTree<D, MemStore<D>>;

impl<const D: usize> RTree<D, PagedStore<D>> {
    /// Creates an empty paged tree, allocating its meta page on `pool`'s
    /// device.
    pub fn create(pool: Arc<BufferPool>, config: RTreeConfig) -> Result<Self> {
        let store = PagedStore::create(pool)?;
        let capacity = <PagedStore<D> as NodeStore<D>>::node_capacity(&store);
        let max_entries = config.effective_max(capacity);
        let min_entries = config.min_entries(max_entries);
        let meta = Meta {
            dims: D as u16,
            root: PageId::INVALID,
            height: 0,
            count: 0,
            config,
        };
        NodeStore::<D>::write_meta(&store, &meta)?;
        Ok(Self {
            store,
            meta,
            max_entries,
            min_entries,
        })
    }

    /// Opens an existing paged tree whose meta page is `meta_page`.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Self> {
        let (store, meta) = PagedStore::open(pool, meta_page)?;
        if meta.dims != D as u16 {
            return Err(RTreeError::BadNode {
                page: meta_page,
                reason: format!(
                    "dimension mismatch: tree has {}, caller wants {D}",
                    meta.dims
                ),
            });
        }
        let capacity = <PagedStore<D> as NodeStore<D>>::node_capacity(&store);
        let max_entries = meta.config.effective_max(capacity);
        let min_entries = meta.config.min_entries(max_entries);
        Ok(Self {
            store,
            meta,
            max_entries,
            min_entries,
        })
    }

    /// The page id of the tree's meta page (pass to [`RTree::open`]).
    pub fn meta_page(&self) -> PageId {
        self.store.meta_page()
    }

    /// The buffer pool this tree lives on.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }
}

impl<const D: usize> MemRTree<D> {
    /// Creates an empty in-memory tree with the default configuration and
    /// fanout ([`MemStore::DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_config(RTreeConfig::default(), MemStore::<D>::DEFAULT_CAPACITY)
    }

    /// Creates an empty in-memory tree with an explicit configuration and
    /// node fanout.
    pub fn with_config(config: RTreeConfig, fanout: usize) -> Self {
        let store = MemStore::new(fanout);
        let capacity = <MemStore<D> as NodeStore<D>>::node_capacity(&store);
        let max_entries = config.effective_max(capacity);
        let min_entries = config.min_entries(max_entries);
        Self {
            store,
            meta: Meta {
                dims: D as u16,
                root: PageId::INVALID,
                height: 0,
                count: 0,
                config,
            },
            max_entries,
            min_entries,
        }
    }
}

impl<const D: usize> Default for MemRTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, S: NodeStore<D>> RTree<D, S> {
    // -- introspection -------------------------------------------------------

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.meta.config
    }

    /// Number of data entries in the tree.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// Whether the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Tree height in levels (0 for an empty tree, 1 for a root-only leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// The root handle, or [`PageId::INVALID`] when empty.
    pub fn root(&self) -> PageId {
        self.meta.root
    }

    /// Maximum entries per node.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum entries per non-root node.
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// The storage backend (advanced use).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The MBR of the whole dataset ([`Rect::empty`] when the tree is
    /// empty).
    pub fn bounds(&self) -> Result<Rect<D>> {
        if !self.meta.root.is_valid() {
            return Ok(Rect::empty());
        }
        Ok(self.read_node(self.meta.root)?.mbr())
    }

    // -- node I/O ------------------------------------------------------------

    /// Reads the node under `page`, returning a shared [`NodeView`].
    ///
    /// On a paged tree every call counts as one logical page access in the
    /// pool's statistics — exactly the paper's cost unit — whether or not
    /// the decoded node was served from the node cache.
    pub fn read_node(&self, page: PageId) -> Result<NodeView<D>> {
        Ok(NodeView::new(page, self.store.read(page)?))
    }

    /// Installs the root pointer, height, and entry count after a bulk
    /// load (see `bulk.rs`).
    pub(crate) fn set_meta_after_bulk(
        &mut self,
        root: PageId,
        height: u32,
        count: u64,
    ) -> Result<()> {
        self.meta.root = root;
        self.meta.height = height;
        self.meta.count = count;
        self.store.write_meta(&self.meta)
    }

    /// Constructs an empty tree over an existing store (bulk-load entry
    /// point).
    pub(crate) fn empty_on(store: S, config: RTreeConfig) -> Self {
        let capacity = store.node_capacity();
        let max_entries = config.effective_max(capacity);
        let min_entries = config.min_entries(max_entries);
        Self {
            store,
            meta: Meta {
                dims: D as u16,
                root: PageId::INVALID,
                height: 0,
                count: 0,
                config,
            },
            max_entries,
            min_entries,
        }
    }

    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    // -- insertion -----------------------------------------------------------

    /// Inserts a record with the given bounding rectangle.
    ///
    /// # Panics
    /// Panics if `mbr` is not a valid finite rectangle.
    pub fn insert(&mut self, mbr: Rect<D>, rid: RecordId) -> Result<()> {
        assert!(mbr.is_valid(), "cannot index an invalid rectangle");
        if self.meta.height == 0 {
            let root = self.store.alloc(0, &[Entry::for_record(mbr, rid)])?;
            self.meta.root = root;
            self.meta.height = 1;
            self.meta.count = 1;
            return self.store.write_meta(&self.meta);
        }
        let mut reinserted = HashSet::new();
        self.insert_at(Entry::for_record(mbr, rid), 0, &mut reinserted)?;
        self.meta.count += 1;
        self.store.write_meta(&self.meta)
    }

    /// Inserts `entry` into a node at `target_level`, splitting or
    /// (for R\*) force-reinserting on overflow.
    fn insert_at(
        &mut self,
        entry: Entry<D>,
        target_level: u16,
        reinserted: &mut HashSet<u16>,
    ) -> Result<()> {
        let root_level = (self.meta.height - 1) as u16;
        debug_assert!(target_level <= root_level);

        // Descend from the root to a node at target_level, remembering the
        // path of (page, chosen child index).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut page = self.meta.root;
        let mut node = self.read_node(page)?;
        while node.level() > target_level {
            let idx = self.choose_subtree(&node, &entry.mbr);
            path.push((page, idx));
            page = node.entries()[idx].child();
            node = self.read_node(page)?;
        }

        let mut level = node.level();
        let mut entries = node.entries().to_vec();
        entries.push(entry);

        loop {
            if entries.len() <= self.max_entries {
                self.store.write(page, level, &entries)?;
                self.propagate_mbr(&path, entries_mbr(&entries))?;
                return Ok(());
            }

            // Overflow. R* first tries forced reinsertion, once per level
            // per top-level insert, and never at the root.
            let is_root = path.is_empty();
            if self.meta.config.split == SplitStrategy::RStar
                && !is_root
                && !reinserted.contains(&level)
            {
                reinserted.insert(level);
                let p = self.meta.config.reinsert_count(self.max_entries);
                let victims = take_reinsert_victims(&mut entries, p);
                self.store.write(page, level, &entries)?;
                self.propagate_mbr(&path, entries_mbr(&entries))?;
                for v in victims {
                    self.insert_at(v, level, reinserted)?;
                }
                return Ok(());
            }

            // Split.
            let (left, right) = split_entries(self.meta.config.split, entries, self.min_entries);
            self.store.write(page, level, &left)?;
            let right_page = self.store.alloc(level, &right)?;
            let left_mbr = entries_mbr(&left);
            let right_mbr = entries_mbr(&right);

            match path.pop() {
                None => {
                    // Root split: grow the tree by one level.
                    let new_root = self.store.alloc(
                        level + 1,
                        &[
                            Entry::for_child(left_mbr, page),
                            Entry::for_child(right_mbr, right_page),
                        ],
                    )?;
                    self.meta.root = new_root;
                    self.meta.height += 1;
                    return self.store.write_meta(&self.meta);
                }
                Some((parent_page, idx)) => {
                    let parent = self.read_node(parent_page)?;
                    let mut parent_entries = parent.entries().to_vec();
                    parent_entries[idx].mbr = left_mbr;
                    parent_entries.push(Entry::for_child(right_mbr, right_page));
                    page = parent_page;
                    level = parent.level();
                    entries = parent_entries;
                }
            }
        }
    }

    /// Rewrites the MBRs along `path` (deepest last) so each parent entry
    /// tightly bounds its updated child.
    fn propagate_mbr(&self, path: &[(PageId, usize)], mut child_mbr: Rect<D>) -> Result<()> {
        for &(page, idx) in path.iter().rev() {
            let node = self.read_node(page)?;
            let mut entries = node.entries().to_vec();
            if entries[idx].mbr == child_mbr {
                return Ok(()); // already tight; ancestors unchanged too
            }
            entries[idx].mbr = child_mbr;
            self.store.write(page, node.level(), &entries)?;
            child_mbr = entries_mbr(&entries);
        }
        Ok(())
    }

    /// Picks the child of `node` to descend into for an entry with MBR `mbr`.
    fn choose_subtree(&self, node: &NodeView<D>, mbr: &Rect<D>) -> usize {
        debug_assert!(!node.is_leaf());
        let rstar_leaf_parent = self.meta.config.split == SplitStrategy::RStar && node.level() == 1;
        if rstar_leaf_parent {
            // R* rule for nodes pointing at leaves: minimum *overlap*
            // enlargement, ties by area enlargement then area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries().iter().enumerate() {
                let enlarged = e.mbr.union(mbr);
                let mut overlap_now = 0.0;
                let mut overlap_then = 0.0;
                for (j, o) in node.entries().iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_now += e.mbr.overlap_area(&o.mbr);
                    overlap_then += enlarged.overlap_area(&o.mbr);
                }
                let key = (
                    overlap_then - overlap_now,
                    e.mbr.enlargement(mbr),
                    e.mbr.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            // Guttman's rule: minimum area enlargement, ties by area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries().iter().enumerate() {
                let key = (e.mbr.enlargement(mbr), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    // -- deletion ------------------------------------------------------------

    /// Removes the entry with exactly this bounding rectangle and record id.
    ///
    /// Returns [`RTreeError::NotFound`] if no such entry exists.
    pub fn delete(&mut self, mbr: &Rect<D>, rid: RecordId) -> Result<()> {
        if self.meta.height == 0 {
            return Err(RTreeError::NotFound);
        }
        // Find the leaf containing the entry, with the root-to-leaf path.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let leaf = self
            .find_leaf(self.meta.root, mbr, rid, &mut path)?
            .ok_or(RTreeError::NotFound)?;

        let node = self.read_node(leaf)?;
        let mut entries = node.entries().to_vec();
        let pos = entries
            .iter()
            .position(|e| e.mbr == *mbr && e.record() == rid)
            .expect("find_leaf returned a leaf without the entry");
        entries.remove(pos);
        self.meta.count -= 1;

        // CondenseTree: walk up, dissolving underfull nodes.
        let mut orphans: Vec<(u16, Vec<Entry<D>>)> = Vec::new();
        let mut page = leaf;
        let mut level = 0u16;
        loop {
            let is_root = path.is_empty();
            if is_root {
                self.store.write(page, level, &entries)?;
                break;
            }
            if entries.len() < self.min_entries {
                // Dissolve this node; its entries get reinserted later.
                let (parent_page, idx) = path.pop().expect("non-root has a parent");
                if !entries.is_empty() {
                    orphans.push((level, std::mem::take(&mut entries)));
                }
                self.store.free(page)?;
                let parent = self.read_node(parent_page)?;
                let mut parent_entries = parent.entries().to_vec();
                parent_entries.remove(idx);
                page = parent_page;
                level = parent.level();
                entries = parent_entries;
            } else {
                self.store.write(page, level, &entries)?;
                self.propagate_mbr(&path, entries_mbr(&entries))?;
                break;
            }
        }

        // Shrink the root while it is an internal node with a single child.
        loop {
            let root = self.read_node(self.meta.root)?;
            if !root.is_leaf() && root.entries().len() == 1 {
                let child = root.entries()[0].child();
                self.store.free(self.meta.root)?;
                self.meta.root = child;
                self.meta.height -= 1;
            } else if root.is_leaf() && root.entries().is_empty() {
                self.store.free(self.meta.root)?;
                self.meta.root = PageId::INVALID;
                self.meta.height = 0;
                break;
            } else {
                break;
            }
        }

        // Reinsert orphans, highest levels first so their target levels
        // still exist.
        orphans.sort_by_key(|(level, _)| std::cmp::Reverse(*level));
        for (orphan_level, orphan_entries) in orphans {
            for e in orphan_entries {
                self.reinsert_orphan(e, orphan_level)?;
            }
        }
        self.store.write_meta(&self.meta)
    }

    /// Reinserts an entry orphaned by CondenseTree at `level`. If the tree
    /// has shrunk below that level, the orphan's subtree is dismantled and
    /// its data entries inserted individually.
    fn reinsert_orphan(&mut self, entry: Entry<D>, level: u16) -> Result<()> {
        if self.meta.height == 0 {
            if level == 0 {
                let root = self.store.alloc(0, &[entry])?;
                self.meta.root = root;
                self.meta.height = 1;
                return Ok(());
            }
            // Orphaned subtree becomes the new root.
            self.meta.root = entry.child();
            self.meta.height = u32::from(level);
            return Ok(());
        }
        let root_level = (self.meta.height - 1) as u16;
        if level <= root_level {
            let mut reinserted = HashSet::new();
            return self.insert_at(entry, level, &mut reinserted);
        }
        // Pathological: the orphan is taller than the current tree.
        // Dismantle it into data entries.
        let mut data = Vec::new();
        self.collect_and_free(entry.child(), &mut data)?;
        for e in data {
            let mut reinserted = HashSet::new();
            self.insert_at(e, 0, &mut reinserted)?;
        }
        Ok(())
    }

    /// Collects all data entries beneath `page`, freeing the visited nodes.
    fn collect_and_free(&mut self, page: PageId, out: &mut Vec<Entry<D>>) -> Result<()> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            out.extend_from_slice(node.entries());
        } else {
            for e in node.entries().to_vec() {
                self.collect_and_free(e.child(), out)?;
            }
        }
        self.store.free(page)?;
        Ok(())
    }

    /// Depth-first search for the leaf holding `(mbr, rid)`; fills `path`
    /// with (page, child index) pairs from the root to the leaf's parent.
    fn find_leaf(
        &self,
        page: PageId,
        mbr: &Rect<D>,
        rid: RecordId,
        path: &mut Vec<(PageId, usize)>,
    ) -> Result<Option<PageId>> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            if node
                .entries()
                .iter()
                .any(|e| e.mbr == *mbr && e.record() == rid)
            {
                return Ok(Some(page));
            }
            return Ok(None);
        }
        for (idx, e) in node.entries().iter().enumerate() {
            if e.mbr.contains_rect(mbr) {
                path.push((page, idx));
                if let Some(leaf) = self.find_leaf(e.child(), mbr, rid, path)? {
                    return Ok(Some(leaf));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    // -- queries -------------------------------------------------------------

    /// Returns all `(mbr, record)` pairs whose MBR intersects `window`.
    pub fn window(&self, window: &Rect<D>) -> Result<Vec<(Rect<D>, RecordId)>> {
        let mut out = Vec::new();
        if !self.meta.root.is_valid() {
            return Ok(out);
        }
        let mut stack = vec![self.meta.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                for e in node.entries() {
                    if e.mbr.intersects(window) {
                        out.push((e.mbr, e.record()));
                    }
                }
            } else {
                for e in node.entries() {
                    if e.mbr.intersects(window) {
                        stack.push(e.child());
                    }
                }
            }
        }
        Ok(out)
    }

    /// Returns all `(mbr, record)` pairs whose MBR contains the point.
    pub fn point_query(&self, p: &Point<D>) -> Result<Vec<(Rect<D>, RecordId)>> {
        self.window(&Rect::from_point(*p))
    }

    /// Returns every data entry in the tree (in unspecified order).
    pub fn scan(&self) -> Result<Vec<(Rect<D>, RecordId)>> {
        self.window(&Rect::from_sorted(
            Point::new([f64::NEG_INFINITY; D]),
            Point::new([f64::INFINITY; D]),
        ))
    }
}

impl<const D: usize, S: NodeStore<D>> std::fmt::Debug for RTree<D, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("dims", &D)
            .field("count", &self.meta.count)
            .field("height", &self.meta.height)
            .field("max_entries", &self.max_entries)
            .field("split", &self.meta.config.split)
            .finish()
    }
}
