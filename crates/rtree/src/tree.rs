//! The R-tree proper: creation, insertion, deletion, queries.
//!
//! [`RTree`] is generic over its [`NodeStore`] backend: the default
//! [`PagedStore`] keeps one node per disk page (the paper's setting);
//! [`MemRTree`] is the same tree over a heap arena. All mutation and query
//! logic is written once against the store trait.
//!
//! # Copy-on-write updates
//!
//! Mutations never overwrite a published page. Each `insert`/`delete`
//! runs as a transaction that builds its modified subtree in freshly
//! allocated pages (path copying: the touched leaf, every ancestor up to
//! the root, and any split siblings), then commits by publishing the new
//! root in a single atomic meta swap ([`NodeStore::publish`] journals the
//! shadow pages and new meta as one WAL commit group on paged backends).
//! Readers holding a [`Snapshot`] keep traversing the old root: every
//! page it references is immutable until the snapshot is dropped.
//! Replaced pages are *retired* into an epoch-tagged limbo list and freed
//! only when no snapshot pinned at or before the retiring epoch remains —
//! so page reclamation (and with it decoded-node-cache invalidation) is
//! keyed to publication, never to a traversal in progress.

use crate::codec::{Meta, RawNode};
use crate::config::{RTreeConfig, SplitStrategy};
use crate::entry::{entries_mbr, Entry, RecordId};
use crate::split::{split_entries, take_reinsert_victims};
use crate::store::{MemStore, NodeStore, PagedStore};
use crate::{RTreeError, Result};
use nnq_geom::{Point, Rect, SoaRects};
use nnq_storage::{BufferPool, PageId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// A shared view of a decoded R-tree node, as returned by
/// [`RTree::read_node`].
///
/// This is the navigation surface the nearest-neighbor search in
/// `nnq-core` drives: it exposes the node's level and its `(MBR, pointer)`
/// entries without leaking any storage detail. The node data is
/// `Arc`-backed — cloning a view is two pointer-sized copies, and repeat
/// reads of a cached page share one decoded allocation instead of copying
/// the entry array per visit.
///
/// A view is an immutable snapshot: a concurrent (or later) write to the
/// same page publishes a fresh node and never mutates data behind an
/// outstanding view.
#[derive(Clone, Debug)]
pub struct NodeView<const D: usize> {
    page: PageId,
    node: Arc<RawNode<D>>,
}

impl<const D: usize> NodeView<D> {
    pub(crate) fn new(page: PageId, node: Arc<RawNode<D>>) -> Self {
        Self { page, node }
    }

    /// The node's handle (a disk page for paged trees, an arena slot for
    /// in-memory trees).
    #[inline]
    pub fn page(&self) -> PageId {
        self.page
    }

    /// Node level: 0 for leaves, `height - 1` for the root.
    #[inline]
    pub fn level(&self) -> u16 {
        self.node.level
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.node.level == 0
    }

    /// The node's entries.
    #[inline]
    pub fn entries(&self) -> &[Entry<D>] {
        &self.node.entries
    }

    /// The struct-of-arrays view of the entry MBRs (same order as
    /// [`NodeView::entries`]), built once per decode and cached with the
    /// node — the input the `nnq-geom` batch kernels consume.
    #[inline]
    pub fn soa(&self) -> &SoaRects<D> {
        self.node.soa()
    }

    /// The tight bounding rectangle of this node's entries.
    pub fn mbr(&self) -> Rect<D> {
        entries_mbr(&self.node.entries)
    }
}

/// Read-only navigation over any R-tree backend.
///
/// The nearest-neighbor algorithms in `nnq-core` are generic over this
/// trait, so they run unchanged on paged and in-memory trees.
pub trait TreeAccess<const D: usize> {
    /// The root node's handle, or `None` for an empty tree.
    fn access_root(&self) -> Option<PageId>;

    /// Reads the node under `page`.
    fn access_node(&self, page: PageId) -> Result<NodeView<D>>;

    /// Number of data entries in the tree.
    fn num_records(&self) -> u64;

    /// Hints that `page` will likely be accessed soon. Advisory and
    /// non-blocking; the default does nothing. Implementations must not
    /// let a hint change the result or the accounting of any subsequent
    /// [`TreeAccess::access_node`].
    fn prefetch_node(&self, _page: PageId) {}

    /// Fraction of recent node accesses that missed the backend's page
    /// cache, in `[0, 1]` (`0.0` where there is no I/O). Drives the
    /// adaptive prefetch policy.
    fn io_miss_rate(&self) -> f64 {
        0.0
    }

    /// Lifetime logical page reads behind this access path (`0` where
    /// there is no I/O). Distinguishes a cold backend from a perfectly
    /// warm one when `io_miss_rate` reports `0.0` for both (the zero-reads
    /// convention).
    fn io_reads(&self) -> u64 {
        0
    }

    /// Snapshot of the backend's tuning counters (all-zero default for
    /// backends with nothing to tune). See
    /// [`crate::BackendSignals`].
    fn backend_signals(&self) -> crate::BackendSignals {
        crate::BackendSignals::default()
    }

    /// Retunes the backend's decoded-node cache capacity, returning the
    /// installed value (`0` where the knob does not exist). Implementations
    /// must be accounting-neutral: no effect on any `access_node` result or
    /// page-access counter.
    fn set_cache_capacity(&self, _cap: usize) -> usize {
        0
    }

    /// Sets the number of active prefetch workers behind this access path,
    /// returning the count after clamping (`0` where the knob does not
    /// exist). Accounting-neutral for the same reason `prefetch_node` is.
    fn set_prefetch_workers(&self, _n: usize) -> usize {
        0
    }
}

impl<const D: usize, S: NodeStore<D>> TreeAccess<D> for RTree<D, S> {
    fn access_root(&self) -> Option<PageId> {
        let root = self.meta.read().root;
        root.is_valid().then_some(root)
    }

    fn access_node(&self, page: PageId) -> Result<NodeView<D>> {
        self.read_node(page)
    }

    fn num_records(&self) -> u64 {
        self.len()
    }

    fn prefetch_node(&self, page: PageId) {
        self.store.prefetch(page);
    }

    fn io_miss_rate(&self) -> f64 {
        self.store.io_miss_rate()
    }

    fn io_reads(&self) -> u64 {
        self.store.io_reads()
    }

    fn backend_signals(&self) -> crate::BackendSignals {
        self.store.backend_signals()
    }

    fn set_cache_capacity(&self, cap: usize) -> usize {
        self.store.set_cache_capacity(cap)
    }

    fn set_prefetch_workers(&self, n: usize) -> usize {
        self.store.set_prefetch_workers(n)
    }
}

// ---------------------------------------------------------------------------
// Epoch-based deferred reclamation
// ---------------------------------------------------------------------------

/// Epoch bookkeeping for deferred page reclamation.
///
/// Snapshots pin the epoch current at their creation. A commit retires
/// its replaced pages tagged with the epoch current at publication, then
/// advances the epoch — so any snapshot that could still reach those
/// pages holds a pin at or before the tag. A batch is freed once the
/// minimum pinned epoch moves past its tag (or no pins remain).
#[derive(Default)]
struct Epochs {
    inner: Mutex<EpochState>,
}

#[derive(Default)]
struct EpochState {
    current: u64,
    /// Live snapshot pins per epoch.
    pins: BTreeMap<u64, usize>,
    /// Retired page batches, tagged with their retirement epoch.
    limbo: VecDeque<(u64, Vec<PageId>)>,
}

impl Epochs {
    fn pin(&self) -> u64 {
        let mut st = self.inner.lock();
        let epoch = st.current;
        *st.pins.entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Drops one pin on `epoch`; returns pages that became reclaimable.
    fn unpin(&self, epoch: u64) -> Vec<PageId> {
        let mut st = self.inner.lock();
        if let Some(n) = st.pins.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                st.pins.remove(&epoch);
            }
        }
        Self::drain_reclaimable(&mut st)
    }

    /// Tags `pages` with the current epoch, advances the epoch, and
    /// returns every limbo page no live pin can still reach.
    fn retire(&self, pages: Vec<PageId>) -> Vec<PageId> {
        let mut st = self.inner.lock();
        if !pages.is_empty() {
            let tag = st.current;
            st.limbo.push_back((tag, pages));
        }
        st.current += 1;
        Self::drain_reclaimable(&mut st)
    }

    fn drain_reclaimable(st: &mut EpochState) -> Vec<PageId> {
        let min_pinned = st.pins.keys().next().copied().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        while let Some((tag, _)) = st.limbo.front() {
            if *tag < min_pinned {
                out.extend(st.limbo.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
        out
    }
}

/// A consistent read view of the tree, valid across concurrent mutations.
///
/// A snapshot pins the reclamation epoch and copies the tree's committed
/// metadata at creation: every page reachable from its root stays
/// allocated and byte-identical until the snapshot is dropped, no matter
/// how many inserts and deletes commit in the meantime. It implements
/// [`TreeAccess`], so every query algorithm in `nnq-core` runs against a
/// snapshot unchanged.
///
/// Concurrent readers racing a mutator **must** hold a snapshot; querying
/// the tree reference directly is only safe while no mutation is running
/// (a commit may reclaim pages an unpinned traversal still wants).
pub struct Snapshot<'t, const D: usize, S: NodeStore<D> = PagedStore<D>> {
    tree: &'t RTree<D, S>,
    meta: Meta,
    epoch: u64,
}

impl<const D: usize, S: NodeStore<D>> Snapshot<'_, D, S> {
    /// Number of data entries visible in this snapshot.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// Whether the snapshot sees an empty tree.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// The snapshot's root handle ([`PageId::INVALID`] when empty).
    pub fn root(&self) -> PageId {
        self.meta.root
    }

    /// Tree height as of the snapshot.
    pub fn height(&self) -> u32 {
        self.meta.height
    }
}

impl<const D: usize, S: NodeStore<D>> TreeAccess<D> for Snapshot<'_, D, S> {
    fn access_root(&self) -> Option<PageId> {
        self.meta.root.is_valid().then_some(self.meta.root)
    }

    fn access_node(&self, page: PageId) -> Result<NodeView<D>> {
        self.tree.read_node(page)
    }

    fn num_records(&self) -> u64 {
        self.meta.count
    }

    fn prefetch_node(&self, page: PageId) {
        self.tree.store.prefetch(page);
    }

    fn io_miss_rate(&self) -> f64 {
        self.tree.store.io_miss_rate()
    }

    fn io_reads(&self) -> u64 {
        self.tree.store.io_reads()
    }

    fn backend_signals(&self) -> crate::BackendSignals {
        self.tree.store.backend_signals()
    }

    fn set_cache_capacity(&self, cap: usize) -> usize {
        self.tree.store.set_cache_capacity(cap)
    }

    fn set_prefetch_workers(&self, n: usize) -> usize {
        self.tree.store.set_prefetch_workers(n)
    }
}

impl<const D: usize, S: NodeStore<D>> Drop for Snapshot<'_, D, S> {
    fn drop(&mut self) {
        for page in self.tree.epochs.unpin(self.epoch) {
            // Failing to free leaks the page but corrupts nothing; a drop
            // handler has nowhere to report it.
            let _ = self.tree.store.free(page);
        }
    }
}

// ---------------------------------------------------------------------------
// The tree
// ---------------------------------------------------------------------------

/// A dynamic R-tree over `D`-dimensional rectangles.
///
/// See the crate docs for an overview and example. All operations take
/// `&self`: queries read the committed snapshot, and mutations are
/// serialized by an internal writer lock (single-writer, many-readers —
/// the discipline of the original systems, but with copy-on-write
/// publication so the readers never block). Readers that race a mutator
/// must hold a [`Snapshot`] (see [`RTree::snapshot`]).
pub struct RTree<const D: usize, S = PagedStore<D>> {
    store: S,
    /// The committed tree state; swapped atomically at commit.
    meta: RwLock<Meta>,
    /// The tree configuration (immutable after construction; also carried
    /// inside `meta` for persistence).
    config: RTreeConfig,
    /// Serializes mutators. Readers never take this.
    writer: Mutex<()>,
    /// Deferred reclamation of pages replaced by commits.
    epochs: Epochs,
    max_entries: usize,
    min_entries: usize,
}

/// An in-memory R-tree: identical algorithms, heap-arena storage, no page
/// accounting. Use it when the index is rebuilt per process and speed
/// matters more than persistence.
///
/// ```
/// use nnq_rtree::{MemRTree, RecordId};
/// use nnq_geom::{Point, Rect};
///
/// let tree = MemRTree::<2>::new();
/// for i in 0..100u64 {
///     tree.insert(&Rect::from_point(Point::new([i as f64, 0.0])), RecordId(i)).unwrap();
/// }
/// assert_eq!(tree.len(), 100);
/// tree.validate().unwrap();
/// ```
pub type MemRTree<const D: usize> = RTree<D, MemStore<D>>;

impl<const D: usize> RTree<D, PagedStore<D>> {
    /// Creates an empty paged tree, allocating its meta page on `pool`'s
    /// device.
    pub fn create(pool: Arc<BufferPool>, config: RTreeConfig) -> Result<Self> {
        let store = PagedStore::create(pool)?;
        let capacity = <PagedStore<D> as NodeStore<D>>::node_capacity(&store);
        let max_entries = config.effective_max(capacity);
        let min_entries = config.min_entries(max_entries);
        let meta = Meta {
            dims: D as u16,
            root: PageId::INVALID,
            height: 0,
            count: 0,
            config,
        };
        NodeStore::<D>::write_meta(&store, &meta)?;
        Ok(Self {
            store,
            meta: RwLock::new(meta),
            config,
            writer: Mutex::new(()),
            epochs: Epochs::default(),
            max_entries,
            min_entries,
        })
    }

    /// Opens an existing paged tree whose meta page is `meta_page`.
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Self> {
        let (store, meta) = PagedStore::open(pool, meta_page)?;
        if meta.dims != D as u16 {
            return Err(RTreeError::BadNode {
                page: meta_page,
                reason: format!(
                    "dimension mismatch: tree has {}, caller wants {D}",
                    meta.dims
                ),
            });
        }
        let capacity = <PagedStore<D> as NodeStore<D>>::node_capacity(&store);
        let max_entries = meta.config.effective_max(capacity);
        let min_entries = meta.config.min_entries(max_entries);
        let config = meta.config;
        Ok(Self {
            store,
            meta: RwLock::new(meta),
            config,
            writer: Mutex::new(()),
            epochs: Epochs::default(),
            max_entries,
            min_entries,
        })
    }

    /// The page id of the tree's meta page (pass to [`RTree::open`]).
    pub fn meta_page(&self) -> PageId {
        self.store.meta_page()
    }

    /// The buffer pool this tree lives on.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.store.pool()
    }

    /// Sets the WAL group-commit window in microseconds (`0` syncs the
    /// journal on every commit). See [`PagedStore::set_group_commit_us`].
    pub fn set_group_commit_us(&self, us: u64) {
        self.store.set_group_commit_us(us);
    }
}

impl<const D: usize> MemRTree<D> {
    /// Creates an empty in-memory tree with the default configuration and
    /// fanout ([`MemStore::DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_config(RTreeConfig::default(), MemStore::<D>::DEFAULT_CAPACITY)
    }

    /// Creates an empty in-memory tree with an explicit configuration and
    /// node fanout.
    pub fn with_config(config: RTreeConfig, fanout: usize) -> Self {
        Self::empty_on(MemStore::new(fanout), config)
    }
}

impl<const D: usize> Default for MemRTree<D> {
    fn default() -> Self {
        Self::new()
    }
}

/// A copy-on-write transaction: the private working state of one mutation.
///
/// `root`/`height`/`count` are the transaction's view of the tree;
/// nothing becomes visible to readers until [`RTree::commit`] publishes
/// them. `fresh` pages were allocated by this transaction — they are
/// invisible to readers, so the transaction may rewrite them in place
/// (one copy per page per transaction, not per touch). `retired` pages
/// belong to the committed tree and are handed to the epoch limbo at
/// commit (or simply kept, on abort).
struct Txn {
    root: PageId,
    height: u32,
    count: u64,
    fresh: HashSet<PageId>,
    retired: Vec<PageId>,
}

impl<const D: usize, S: NodeStore<D>> RTree<D, S> {
    // -- introspection -------------------------------------------------------

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of data entries in the tree.
    pub fn len(&self) -> u64 {
        self.meta.read().count
    }

    /// Whether the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height in levels (0 for an empty tree, 1 for a root-only leaf).
    pub fn height(&self) -> u32 {
        self.meta.read().height
    }

    /// The root handle, or [`PageId::INVALID`] when empty.
    pub fn root(&self) -> PageId {
        self.meta.read().root
    }

    /// Maximum entries per node.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Minimum entries per non-root node.
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// The storage backend (advanced use).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The MBR of the whole dataset ([`Rect::empty`] when the tree is
    /// empty).
    pub fn bounds(&self) -> Result<Rect<D>> {
        let root = self.root();
        if !root.is_valid() {
            return Ok(Rect::empty());
        }
        Ok(self.read_node(root)?.mbr())
    }

    /// Takes a consistent read view of the current committed state. Pages
    /// reachable from it stay live until the snapshot drops; see
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot<'_, D, S> {
        // Pin before reading the meta: a commit that publishes after the
        // pin retires its pages at an epoch >= ours, so they stay live.
        let epoch = self.epochs.pin();
        let meta = *self.meta.read();
        Snapshot {
            tree: self,
            meta,
            epoch,
        }
    }

    // -- node I/O ------------------------------------------------------------

    /// Reads the node under `page`, returning a shared [`NodeView`].
    ///
    /// On a paged tree every call counts as one logical page access in the
    /// pool's statistics — exactly the paper's cost unit — whether or not
    /// the decoded node was served from the node cache.
    pub fn read_node(&self, page: PageId) -> Result<NodeView<D>> {
        Ok(NodeView::new(page, self.store.read(page)?))
    }

    pub(crate) fn make_meta(&self, root: PageId, height: u32, count: u64) -> Meta {
        Meta {
            dims: D as u16,
            root,
            height,
            count,
            config: self.config,
        }
    }

    /// Installs the root pointer, height, and entry count after a bulk
    /// load (see `bulk.rs`).
    pub(crate) fn set_meta_after_bulk(&self, root: PageId, height: u32, count: u64) -> Result<()> {
        let meta = self.make_meta(root, height, count);
        self.store.write_meta(&meta)?;
        *self.meta.write() = meta;
        Ok(())
    }

    /// Constructs an empty tree over an existing store (bulk-load entry
    /// point).
    pub(crate) fn empty_on(store: S, config: RTreeConfig) -> Self {
        let capacity = store.node_capacity();
        let max_entries = config.effective_max(capacity);
        let min_entries = config.min_entries(max_entries);
        Self {
            store,
            meta: RwLock::new(Meta {
                dims: D as u16,
                root: PageId::INVALID,
                height: 0,
                count: 0,
                config,
            }),
            config,
            writer: Mutex::new(()),
            epochs: Epochs::default(),
            max_entries,
            min_entries,
        }
    }

    // -- copy-on-write transaction machinery ---------------------------------

    fn begin(&self) -> Txn {
        let meta = self.meta.read();
        Txn {
            root: meta.root,
            height: meta.height,
            count: meta.count,
            fresh: HashSet::new(),
            retired: Vec::new(),
        }
    }

    /// Publishes the transaction: journals + installs the new meta
    /// (readers switch roots here), then retires replaced pages into the
    /// epoch limbo, freeing whatever no snapshot can still reach.
    fn commit(&self, mut txn: Txn) -> Result<()> {
        let meta = self.make_meta(txn.root, txn.height, txn.count);
        let mut shadow: Vec<PageId> = txn.fresh.iter().copied().collect();
        shadow.sort_unstable(); // deterministic journal order
        if let Err(e) = self.store.publish(&meta, &shadow) {
            self.rollback(&mut txn);
            return Err(e);
        }
        *self.meta.write() = meta;
        for page in self.epochs.retire(std::mem::take(&mut txn.retired)) {
            self.store.free(page)?;
        }
        Ok(())
    }

    /// Releases a failed transaction's fresh pages; retired pages stay
    /// live (they are still referenced by the committed tree).
    fn rollback(&self, txn: &mut Txn) {
        for page in txn.fresh.drain() {
            let _ = self.store.free(page);
        }
    }

    /// Writes `entries` for the node currently stored at `page`,
    /// copy-on-write: a page this transaction allocated is rewritten in
    /// place (readers cannot see it yet); a committed page is left
    /// untouched — the new contents go to a fresh page and the old one is
    /// retired. Returns the page id now holding the node.
    fn cow_write(
        &self,
        txn: &mut Txn,
        page: PageId,
        level: u16,
        entries: &[Entry<D>],
    ) -> Result<PageId> {
        if txn.fresh.contains(&page) {
            self.store.write(page, level, entries)?;
            Ok(page)
        } else {
            let fresh = self.store.alloc(level, entries)?;
            txn.fresh.insert(fresh);
            txn.retired.push(page);
            Ok(fresh)
        }
    }

    /// Allocates a brand-new node owned by this transaction.
    fn cow_alloc(&self, txn: &mut Txn, level: u16, entries: &[Entry<D>]) -> Result<PageId> {
        let page = self.store.alloc(level, entries)?;
        txn.fresh.insert(page);
        Ok(page)
    }

    /// Discards the node at `page`: immediately if this transaction
    /// allocated it, else deferred to the commit's retirement batch.
    fn cow_free(&self, txn: &mut Txn, page: PageId) -> Result<()> {
        if txn.fresh.remove(&page) {
            self.store.free(page)
        } else {
            txn.retired.push(page);
            Ok(())
        }
    }

    /// Rewrites the ancestors along `path` (deepest last) after the node
    /// at the path's end moved from `old_child` to `new_child` with MBR
    /// `child_mbr`: each parent entry gets the child's new id and a tight
    /// MBR, and the parent itself is republished copy-on-write — so the
    /// whole ancestor chain (up to and including the root) is path-copied
    /// bottom-up. Stops early when neither the child id nor its MBR
    /// changed at some level (possible once pages are transaction-fresh
    /// and rewritten in place).
    fn replace_in_path(
        &self,
        txn: &mut Txn,
        path: &[(PageId, usize)],
        mut old_child: PageId,
        mut new_child: PageId,
        mut child_mbr: Rect<D>,
    ) -> Result<()> {
        for &(page, idx) in path.iter().rev() {
            let node = self.read_node(page)?;
            let mut entries = node.entries().to_vec();
            debug_assert_eq!(entries[idx].child(), old_child, "stale path");
            if new_child == old_child && entries[idx].mbr == child_mbr {
                return Ok(()); // nothing changed at this level or above
            }
            entries[idx] = Entry::for_child(child_mbr, new_child);
            let new_page = self.cow_write(txn, page, node.level(), &entries)?;
            old_child = page;
            new_child = new_page;
            child_mbr = entries_mbr(&entries);
        }
        if txn.root == old_child {
            txn.root = new_child;
        }
        Ok(())
    }

    /// Copy-on-write `clear`: publish an empty meta, retire every page of
    /// the old tree (see [`RTree::clear`] in `iter.rs` for the public
    /// docs).
    pub(crate) fn clear_cow(&self) -> Result<()> {
        let _writer = self.writer.lock();
        let root = self.root();
        if !root.is_valid() {
            return Ok(());
        }
        let mut stack = vec![root];
        let mut pages = Vec::new();
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if !node.is_leaf() {
                for e in node.entries() {
                    stack.push(e.child());
                }
            }
            pages.push(page);
        }
        let meta = self.make_meta(PageId::INVALID, 0, 0);
        self.store.publish(&meta, &[])?;
        *self.meta.write() = meta;
        for page in self.epochs.retire(pages) {
            self.store.free(page)?;
        }
        Ok(())
    }

    // -- insertion -----------------------------------------------------------

    /// Inserts a record with the given bounding rectangle.
    ///
    /// Both `insert` and [`RTree::delete`] take the rectangle by
    /// reference: `Rect<D>` is `Copy`, but the uniform `&Rect<D>` surface
    /// lets call sites iterate `&items` without copying out per call and
    /// keeps the two halves of the mutation API symmetric.
    ///
    /// Runs as one copy-on-write transaction: concurrent [`Snapshot`]
    /// readers see the tree either entirely without or entirely with the
    /// new record, never an intermediate state.
    ///
    /// # Panics
    /// Panics if `mbr` is not a valid finite rectangle.
    pub fn insert(&self, mbr: &Rect<D>, rid: RecordId) -> Result<()> {
        assert!(mbr.is_valid(), "cannot index an invalid rectangle");
        let _writer = self.writer.lock();
        let mut txn = self.begin();
        match self.insert_txn(&mut txn, Entry::for_record(*mbr, rid)) {
            Ok(()) => self.commit(txn),
            Err(e) => {
                self.rollback(&mut txn);
                Err(e)
            }
        }
    }

    /// Inserts a batch of records as **one** copy-on-write transaction.
    ///
    /// Structurally equivalent to calling [`RTree::insert`] per item in
    /// order, but the whole batch shares a single shadow-page set and a
    /// single WAL publish: pages copied for an early item are
    /// transaction-fresh for later items and rewritten in place, so an
    /// ingest of `n` clustered points pays one path copy per touched page
    /// instead of one per record. Readers see the batch atomically —
    /// either none of it or all of it.
    ///
    /// # Panics
    /// Panics if any rectangle is invalid; no item is inserted in that
    /// case.
    pub fn insert_many(&self, items: &[(Rect<D>, RecordId)]) -> Result<()> {
        for (mbr, _) in items {
            assert!(mbr.is_valid(), "cannot index an invalid rectangle");
        }
        if items.is_empty() {
            return Ok(());
        }
        let _writer = self.writer.lock();
        let mut txn = self.begin();
        for (mbr, rid) in items {
            if let Err(e) = self.insert_txn(&mut txn, Entry::for_record(*mbr, *rid)) {
                self.rollback(&mut txn);
                return Err(e);
            }
        }
        self.commit(txn)
    }

    fn insert_txn(&self, txn: &mut Txn, entry: Entry<D>) -> Result<()> {
        if txn.height == 0 {
            txn.root = self.cow_alloc(txn, 0, &[entry])?;
            txn.height = 1;
            txn.count = 1;
            return Ok(());
        }
        let mut reinserted = HashSet::new();
        self.insert_at(txn, entry, 0, &mut reinserted)?;
        txn.count += 1;
        Ok(())
    }

    /// Inserts `entry` into a node at `target_level`, splitting or
    /// (for R\*) force-reinserting on overflow. All node writes are
    /// copy-on-write against `txn`.
    fn insert_at(
        &self,
        txn: &mut Txn,
        entry: Entry<D>,
        target_level: u16,
        reinserted: &mut HashSet<u16>,
    ) -> Result<()> {
        let root_level = (txn.height - 1) as u16;
        debug_assert!(target_level <= root_level);

        // Descend from the root to a node at target_level, remembering the
        // path of (page, chosen child index).
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut page = txn.root;
        let mut node = self.read_node(page)?;
        while node.level() > target_level {
            let idx = self.choose_subtree(&node, &entry.mbr);
            path.push((page, idx));
            page = node.entries()[idx].child();
            node = self.read_node(page)?;
        }

        let mut level = node.level();
        let mut entries = node.entries().to_vec();
        entries.push(entry);

        loop {
            if entries.len() <= self.max_entries {
                let new_page = self.cow_write(txn, page, level, &entries)?;
                return self.replace_in_path(txn, &path, page, new_page, entries_mbr(&entries));
            }

            // Overflow. R* first tries forced reinsertion, once per level
            // per top-level insert, and never at the root.
            let is_root = path.is_empty();
            if self.config.split == SplitStrategy::RStar && !is_root && !reinserted.contains(&level)
            {
                reinserted.insert(level);
                let p = self.config.reinsert_count(self.max_entries);
                let victims = take_reinsert_victims(&mut entries, p);
                let new_page = self.cow_write(txn, page, level, &entries)?;
                self.replace_in_path(txn, &path, page, new_page, entries_mbr(&entries))?;
                for v in victims {
                    self.insert_at(txn, v, level, reinserted)?;
                }
                return Ok(());
            }

            // Split: the left half replaces the node copy-on-write, the
            // right half is a brand-new transaction-owned page.
            let (left, right) = split_entries(self.config.split, entries, self.min_entries);
            let left_page = self.cow_write(txn, page, level, &left)?;
            let right_page = self.cow_alloc(txn, level, &right)?;
            let left_mbr = entries_mbr(&left);
            let right_mbr = entries_mbr(&right);

            match path.pop() {
                None => {
                    // Root split: grow the tree by one level.
                    txn.root = self.cow_alloc(
                        txn,
                        level + 1,
                        &[
                            Entry::for_child(left_mbr, left_page),
                            Entry::for_child(right_mbr, right_page),
                        ],
                    )?;
                    txn.height += 1;
                    return Ok(());
                }
                Some((parent_page, idx)) => {
                    let parent = self.read_node(parent_page)?;
                    let mut parent_entries = parent.entries().to_vec();
                    parent_entries[idx] = Entry::for_child(left_mbr, left_page);
                    parent_entries.push(Entry::for_child(right_mbr, right_page));
                    page = parent_page;
                    level = parent.level();
                    entries = parent_entries;
                }
            }
        }
    }

    /// Picks the child of `node` to descend into for an entry with MBR `mbr`.
    fn choose_subtree(&self, node: &NodeView<D>, mbr: &Rect<D>) -> usize {
        debug_assert!(!node.is_leaf());
        let rstar_leaf_parent = self.config.split == SplitStrategy::RStar && node.level() == 1;
        if rstar_leaf_parent {
            // R* rule for nodes pointing at leaves: minimum *overlap*
            // enlargement, ties by area enlargement then area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries().iter().enumerate() {
                let enlarged = e.mbr.union(mbr);
                let mut overlap_now = 0.0;
                let mut overlap_then = 0.0;
                for (j, o) in node.entries().iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    overlap_now += e.mbr.overlap_area(&o.mbr);
                    overlap_then += enlarged.overlap_area(&o.mbr);
                }
                let key = (
                    overlap_then - overlap_now,
                    e.mbr.enlargement(mbr),
                    e.mbr.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            // Guttman's rule: minimum area enlargement, ties by area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries().iter().enumerate() {
                let key = (e.mbr.enlargement(mbr), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    // -- deletion ------------------------------------------------------------

    /// Removes the entry with exactly this bounding rectangle and record id.
    ///
    /// Runs as one copy-on-write transaction (see [`RTree::insert`]).
    /// Returns [`RTreeError::NotFound`] if no such entry exists.
    pub fn delete(&self, mbr: &Rect<D>, rid: RecordId) -> Result<()> {
        let _writer = self.writer.lock();
        let mut txn = self.begin();
        match self.delete_txn(&mut txn, mbr, rid) {
            Ok(()) => self.commit(txn),
            Err(e) => {
                self.rollback(&mut txn);
                Err(e)
            }
        }
    }

    fn delete_txn(&self, txn: &mut Txn, mbr: &Rect<D>, rid: RecordId) -> Result<()> {
        if txn.height == 0 {
            return Err(RTreeError::NotFound);
        }
        // Find the leaf containing the entry, with the root-to-leaf path.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let leaf = self
            .find_leaf(txn.root, mbr, rid, &mut path)?
            .ok_or(RTreeError::NotFound)?;

        let node = self.read_node(leaf)?;
        let mut entries = node.entries().to_vec();
        let pos = entries
            .iter()
            .position(|e| e.mbr == *mbr && e.record() == rid)
            .expect("find_leaf returned a leaf without the entry");
        entries.remove(pos);
        txn.count -= 1;

        // CondenseTree: walk up, dissolving underfull nodes.
        let mut orphans: Vec<(u16, Vec<Entry<D>>)> = Vec::new();
        let mut page = leaf;
        let mut level = 0u16;
        loop {
            let is_root = path.is_empty();
            if is_root {
                let new_page = self.cow_write(txn, page, level, &entries)?;
                txn.root = new_page;
                break;
            }
            if entries.len() < self.min_entries {
                // Dissolve this node; its entries get reinserted later.
                let (parent_page, idx) = path.pop().expect("non-root has a parent");
                if !entries.is_empty() {
                    orphans.push((level, std::mem::take(&mut entries)));
                }
                self.cow_free(txn, page)?;
                let parent = self.read_node(parent_page)?;
                let mut parent_entries = parent.entries().to_vec();
                parent_entries.remove(idx);
                page = parent_page;
                level = parent.level();
                entries = parent_entries;
            } else {
                let new_page = self.cow_write(txn, page, level, &entries)?;
                self.replace_in_path(txn, &path, page, new_page, entries_mbr(&entries))?;
                break;
            }
        }

        // Shrink the root while it is an internal node with a single child.
        loop {
            let root = self.read_node(txn.root)?;
            if !root.is_leaf() && root.entries().len() == 1 {
                let child = root.entries()[0].child();
                self.cow_free(txn, txn.root)?;
                txn.root = child;
                txn.height -= 1;
            } else if root.is_leaf() && root.entries().is_empty() {
                self.cow_free(txn, txn.root)?;
                txn.root = PageId::INVALID;
                txn.height = 0;
                break;
            } else {
                break;
            }
        }

        // Reinsert orphans, highest levels first so their target levels
        // still exist.
        orphans.sort_by_key(|(level, _)| std::cmp::Reverse(*level));
        for (orphan_level, orphan_entries) in orphans {
            for e in orphan_entries {
                self.reinsert_orphan(txn, e, orphan_level)?;
            }
        }
        Ok(())
    }

    /// Reinserts an entry orphaned by CondenseTree at `level`. If the tree
    /// has shrunk below that level, the orphan's subtree is dismantled and
    /// its data entries inserted individually.
    fn reinsert_orphan(&self, txn: &mut Txn, entry: Entry<D>, level: u16) -> Result<()> {
        if txn.height == 0 {
            if level == 0 {
                txn.root = self.cow_alloc(txn, 0, &[entry])?;
                txn.height = 1;
                return Ok(());
            }
            // Orphaned subtree becomes the new root.
            txn.root = entry.child();
            txn.height = u32::from(level);
            return Ok(());
        }
        let root_level = (txn.height - 1) as u16;
        if level <= root_level {
            let mut reinserted = HashSet::new();
            return self.insert_at(txn, entry, level, &mut reinserted);
        }
        // Pathological: the orphan is taller than the current tree.
        // Dismantle it into data entries.
        let mut data = Vec::new();
        self.collect_and_free(txn, entry.child(), &mut data)?;
        for e in data {
            let mut reinserted = HashSet::new();
            self.insert_at(txn, e, 0, &mut reinserted)?;
        }
        Ok(())
    }

    /// Collects all data entries beneath `page`, discarding the visited
    /// nodes (copy-on-write: committed pages are retired, fresh ones
    /// freed).
    fn collect_and_free(&self, txn: &mut Txn, page: PageId, out: &mut Vec<Entry<D>>) -> Result<()> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            out.extend_from_slice(node.entries());
        } else {
            for e in node.entries().to_vec() {
                self.collect_and_free(txn, e.child(), out)?;
            }
        }
        self.cow_free(txn, page)
    }

    /// Depth-first search for the leaf holding `(mbr, rid)`; fills `path`
    /// with (page, child index) pairs from the root to the leaf's parent.
    fn find_leaf(
        &self,
        page: PageId,
        mbr: &Rect<D>,
        rid: RecordId,
        path: &mut Vec<(PageId, usize)>,
    ) -> Result<Option<PageId>> {
        let node = self.read_node(page)?;
        if node.is_leaf() {
            if node
                .entries()
                .iter()
                .any(|e| e.mbr == *mbr && e.record() == rid)
            {
                return Ok(Some(page));
            }
            return Ok(None);
        }
        for (idx, e) in node.entries().iter().enumerate() {
            if e.mbr.contains_rect(mbr) {
                path.push((page, idx));
                if let Some(leaf) = self.find_leaf(e.child(), mbr, rid, path)? {
                    return Ok(Some(leaf));
                }
                path.pop();
            }
        }
        Ok(None)
    }

    // -- queries -------------------------------------------------------------

    /// Returns all `(mbr, record)` pairs whose MBR intersects `window`.
    pub fn window(&self, window: &Rect<D>) -> Result<Vec<(Rect<D>, RecordId)>> {
        let mut out = Vec::new();
        let root = self.root();
        if !root.is_valid() {
            return Ok(out);
        }
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page)?;
            if node.is_leaf() {
                for e in node.entries() {
                    if e.mbr.intersects(window) {
                        out.push((e.mbr, e.record()));
                    }
                }
            } else {
                for e in node.entries() {
                    if e.mbr.intersects(window) {
                        stack.push(e.child());
                    }
                }
            }
        }
        Ok(out)
    }

    /// Returns all `(mbr, record)` pairs whose MBR contains the point.
    pub fn point_query(&self, p: &Point<D>) -> Result<Vec<(Rect<D>, RecordId)>> {
        self.window(&Rect::from_point(*p))
    }

    /// Returns every data entry in the tree (in unspecified order).
    pub fn scan(&self) -> Result<Vec<(Rect<D>, RecordId)>> {
        self.window(&Rect::from_sorted(
            Point::new([f64::NEG_INFINITY; D]),
            Point::new([f64::INFINITY; D]),
        ))
    }
}

impl<const D: usize, S: NodeStore<D>> std::fmt::Debug for RTree<D, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let meta = *self.meta.read();
        f.debug_struct("RTree")
            .field("dims", &D)
            .field("count", &meta.count)
            .field("height", &meta.height)
            .field("max_entries", &self.max_entries)
            .field("split", &self.config.split)
            .finish()
    }
}
