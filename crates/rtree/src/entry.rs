//! Node entries: the `(MBR, pointer)` pairs R-tree nodes are made of.

use nnq_geom::Rect;
use nnq_storage::PageId;

/// Identifier of an indexed record.
///
/// The R-tree stores no payloads; a leaf entry carries the record's MBR and
/// this opaque id, which callers resolve against their own record storage
/// (e.g. an array of segments).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RecordId(pub u64);

/// An entry of an R-tree node.
///
/// In an internal node, `ptr` is the page id of the child node and `mbr`
/// tightly bounds everything below it. In a leaf, `ptr` is the
/// [`RecordId`] of the indexed object and `mbr` is the object's bounding
/// rectangle (degenerate for points).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// Minimum bounding rectangle of the child subtree or data object.
    pub mbr: Rect<D>,
    /// Child page id (internal nodes) or record id (leaves), as raw bits.
    pub ptr: u64,
}

impl<const D: usize> Entry<D> {
    /// Creates an internal-node entry pointing at a child page.
    #[inline]
    pub fn for_child(mbr: Rect<D>, child: PageId) -> Self {
        Self { mbr, ptr: child.0 }
    }

    /// Creates a leaf entry pointing at a data record.
    #[inline]
    pub fn for_record(mbr: Rect<D>, rid: RecordId) -> Self {
        Self { mbr, ptr: rid.0 }
    }

    /// Interprets the pointer as a child page id.
    #[inline]
    pub fn child(&self) -> PageId {
        PageId(self.ptr)
    }

    /// Interprets the pointer as a record id.
    #[inline]
    pub fn record(&self) -> RecordId {
        RecordId(self.ptr)
    }
}

/// Computes the tight MBR of a slice of entries
/// ([`Rect::empty`] if the slice is empty).
pub(crate) fn entries_mbr<const D: usize>(entries: &[Entry<D>]) -> Rect<D> {
    let mut mbr = Rect::empty();
    for e in entries {
        mbr.union_in_place(&e.mbr);
    }
    mbr
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_geom::Point;

    fn rect(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn entry_pointer_views() {
        let e = Entry::for_child(rect([0.0, 0.0], [1.0, 1.0]), PageId(7));
        assert_eq!(e.child(), PageId(7));
        let e = Entry::for_record(rect([0.0, 0.0], [1.0, 1.0]), RecordId(9));
        assert_eq!(e.record(), RecordId(9));
    }

    #[test]
    fn entries_mbr_is_tight_union() {
        let es = [
            Entry::for_record(rect([0.0, 0.0], [1.0, 1.0]), RecordId(0)),
            Entry::for_record(rect([5.0, -2.0], [6.0, 0.5]), RecordId(1)),
        ];
        assert_eq!(entries_mbr(&es), rect([0.0, -2.0], [6.0, 1.0]));
        assert!(entries_mbr::<2>(&[]).is_empty());
    }
}
