//! Property tests for the write-ahead log: any crash point (byte-level
//! truncation or tail corruption) leaves a replayable prefix of the
//! append history.

use nnq_storage::{DiskManager, MemDisk, PageId, Wal};
use proptest::prelude::*;
use std::collections::HashMap;

const PAGE: usize = 64;

fn tmp(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nnq-walprop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn truncated_log_replays_a_prefix(
        appends in proptest::collection::vec((0u64..8, any::<u8>()), 1..40),
        cut in any::<u16>(),
        tag in any::<u64>(),
    ) {
        let path = tmp(tag);
        {
            let wal = Wal::create(&path).unwrap();
            for (page, byte) in &appends {
                wal.append(PageId(*page), &[*byte; PAGE]).unwrap();
            }
            wal.sync().unwrap();
        }
        // Crash: truncate the file at an arbitrary byte offset.
        let len = std::fs::metadata(&path).unwrap().len();
        let cut_at = u64::from(cut) % (len + 1);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut_at).unwrap();
        drop(f);

        // Recovery: the surviving records are exactly a prefix of the
        // append history.
        let wal = Wal::open(&path).unwrap();
        let surviving = wal.record_count().unwrap() as usize;
        prop_assert!(surviving <= appends.len());

        let disk = MemDisk::new(PAGE);
        let applied = wal.replay(&disk).unwrap();
        prop_assert_eq!(applied as usize, surviving);

        // Final state per page equals the last surviving append for it.
        let mut expect: HashMap<u64, u8> = HashMap::new();
        for (page, byte) in appends.iter().take(surviving) {
            expect.insert(*page, *byte);
        }
        for (page, byte) in expect {
            let mut buf = [0u8; PAGE];
            disk.read_page(PageId(page), &mut buf).unwrap();
            prop_assert_eq!(buf, [byte; PAGE]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_never_panics_and_keeps_a_prefix(
        appends in proptest::collection::vec((0u64..4, any::<u8>()), 1..20),
        flip_pos in any::<u16>(),
        tag in any::<u64>(),
    ) {
        let path = tmp(tag ^ 0xF11B);
        {
            let wal = Wal::create(&path).unwrap();
            for (page, byte) in &appends {
                wal.append(PageId(*page), &[*byte; PAGE]).unwrap();
            }
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = usize::from(flip_pos) % bytes.len();
        bytes[pos] ^= 0xA5;
        std::fs::write(&path, &bytes).unwrap();

        let wal = Wal::open(&path).unwrap();
        let surviving = wal.record_count().unwrap() as usize;
        prop_assert!(surviving <= appends.len());
        let disk = MemDisk::new(PAGE);
        // Replay must not fail: the log was truncated to valid records.
        let applied = wal.replay(&disk).unwrap();
        prop_assert_eq!(applied as usize, surviving);
        std::fs::remove_file(&path).ok();
    }
}
