//! Property tests: the buffer pool over a device must behave exactly like
//! a plain map of page contents, under any operation interleaving and any
//! pool size.

use nnq_storage::{BufferPool, DiskManager, MemDisk, PageId};
use proptest::prelude::*;
use std::collections::HashMap;

const PAGE: usize = 128;

#[derive(Clone, Debug)]
enum Op {
    New(u8),
    Write { slot: usize, byte: u8 },
    Read { slot: usize },
    Delete { slot: usize },
    FlushAll,
    ClearCache,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u8>().prop_map(Op::New),
        3 => (0usize..64, any::<u8>()).prop_map(|(slot, byte)| Op::Write { slot, byte }),
        3 => (0usize..64).prop_map(|slot| Op::Read { slot }),
        1 => (0usize..64).prop_map(|slot| Op::Delete { slot }),
        1 => Just(Op::FlushAll),
        1 => Just(Op::ClearCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pool_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        frames in 1usize..12,
    ) {
        let pool = BufferPool::new(Box::new(MemDisk::new(PAGE)), frames);
        // Model: live pages and their first byte.
        let mut model: Vec<PageId> = Vec::new();
        let mut contents: HashMap<PageId, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::New(byte) => {
                    let (id, mut guard) = pool.new_page().unwrap();
                    guard[0] = byte;
                    drop(guard);
                    model.push(id);
                    contents.insert(id, byte);
                }
                Op::Write { slot, byte } => {
                    if !model.is_empty() {
                        let id = model[slot % model.len()];
                        let mut guard = pool.fetch_write(id).unwrap();
                        guard[0] = byte;
                        drop(guard);
                        contents.insert(id, byte);
                    }
                }
                Op::Read { slot } => {
                    if !model.is_empty() {
                        let id = model[slot % model.len()];
                        let guard = pool.fetch(id).unwrap();
                        prop_assert_eq!(guard[0], contents[&id], "read of {}", id);
                    }
                }
                Op::Delete { slot } => {
                    if !model.is_empty() {
                        let id = model.swap_remove(slot % model.len());
                        pool.delete_page(id).unwrap();
                        contents.remove(&id);
                        prop_assert!(pool.fetch(id).is_err());
                    }
                }
                Op::FlushAll => pool.flush_all().unwrap(),
                Op::ClearCache => pool.clear_cache().unwrap(),
            }
            prop_assert_eq!(pool.live_pages(), model.len() as u64);
        }
        // Final sweep: every live page readable with the right contents.
        for id in &model {
            let guard = pool.fetch(*id).unwrap();
            prop_assert_eq!(guard[0], contents[id]);
        }
        // Accounting sanity.
        let s = pool.stats();
        prop_assert!(s.hits + s.physical_reads <= s.logical_reads + s.hits);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    #[test]
    fn eviction_never_loses_data(
        writes in proptest::collection::vec(any::<u8>(), 1..80),
        frames in 1usize..4,
    ) {
        // A pool far smaller than the working set must still round-trip
        // every page through eviction and reload.
        let pool = BufferPool::new(Box::new(MemDisk::new(PAGE)), frames);
        let mut ids = Vec::new();
        for (i, byte) in writes.iter().enumerate() {
            let (id, mut guard) = pool.new_page().unwrap();
            guard[0] = *byte;
            guard[PAGE - 1] = i as u8;
            drop(guard);
            ids.push(id);
        }
        for (i, (id, byte)) in ids.iter().zip(&writes).enumerate() {
            let guard = pool.fetch(*id).unwrap();
            prop_assert_eq!(guard[0], *byte);
            prop_assert_eq!(guard[PAGE - 1], i as u8);
        }
        // With a tiny pool there must have been evictions and writebacks.
        if writes.len() > frames {
            let s = pool.stats();
            prop_assert!(s.evictions > 0);
            prop_assert!(s.writebacks > 0);
        }
    }

    #[test]
    fn disk_allocation_reuses_freed_slots(
        n_alloc in 1usize..40,
        free_mask in any::<u64>(),
    ) {
        let disk = MemDisk::new(PAGE);
        let mut live = Vec::new();
        for _ in 0..n_alloc {
            live.push(disk.allocate().unwrap());
        }
        let mut freed = 0u64;
        for (i, id) in live.clone().into_iter().enumerate() {
            if free_mask & (1 << (i % 64)) != 0 {
                disk.deallocate(id).unwrap();
                freed += 1;
            }
        }
        prop_assert_eq!(disk.live_pages(), n_alloc as u64 - freed);
        // Reallocating `freed` pages must not grow the address space
        // beyond the original high-water mark.
        for _ in 0..freed {
            let id = disk.allocate().unwrap();
            prop_assert!(id.0 < n_alloc as u64, "allocated beyond high water: {id}");
        }
    }
}
