//! A physical-redo write-ahead log for crash-safe checkpointing.
//!
//! The paged store's durability story is deliberately simple, in the
//! spirit of the systems the paper ran on:
//!
//! * Every page write-back first appends the full page image to the WAL
//!   (`append`), so a crash between "WAL appended" and "page written"
//!   loses nothing: recovery replays images forward (physical redo is
//!   idempotent).
//! * A **checkpoint** ([`crate::BufferPool::checkpoint`]) flushes all
//!   dirty pages, syncs the device, then truncates the log — after which
//!   the device alone is the state of record.
//! * On open, [`Wal::replay`] applies any images found in the log (a torn
//!   tail — partial record or bad checksum — marks the end of the log and
//!   is ignored, exactly like ARIES' end-of-log detection).
//!
//! Records are `[magic u32][page_id u64][len u32][payload][crc32 u32]`
//! with the CRC covering page id, length, and payload.

use crate::{DiskManager, PageId, Result, StorageError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const REC_MAGIC: u32 = 0x574A_4C31; // "WJL1"

/// A write-ahead log over a single append-only file.
pub struct Wal {
    inner: Mutex<File>,
}

impl Wal {
    /// Creates a fresh (truncated) log file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            inner: Mutex::new(file),
        })
    }

    /// Opens an existing log file (or creates an empty one), positioning
    /// appends after the last complete record.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let wal = Self {
            inner: Mutex::new(file),
        };
        // Position the write cursor after the last valid record.
        let valid_end = {
            let mut file = wal.inner.lock();
            scan_valid(&mut file)?
        };
        let file = wal.inner.lock();
        file.set_len(valid_end)?; // drop any torn tail
        drop(file);
        Ok(wal)
    }

    /// Appends one page image. Not yet durable until [`Wal::sync`].
    pub fn append(&self, page: PageId, payload: &[u8]) -> Result<()> {
        let mut file = self.inner.lock();
        file.seek(SeekFrom::End(0))?;
        let mut buf = Vec::with_capacity(payload.len() + 20);
        buf.extend_from_slice(&REC_MAGIC.to_le_bytes());
        buf.extend_from_slice(&page.0.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[4..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&buf)?;
        Ok(())
    }

    /// Makes all appended records durable.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().sync_data()?;
        Ok(())
    }

    /// Truncates the log (checkpoint completion).
    pub fn reset(&self) -> Result<()> {
        let file = self.inner.lock();
        file.set_len(0)?;
        file.sync_data()?;
        Ok(())
    }

    /// Number of complete records currently in the log.
    pub fn record_count(&self) -> Result<u64> {
        let mut file = self.inner.lock();
        let mut count = 0;
        file.seek(SeekFrom::Start(0))?;
        while read_record(&mut file)?.is_some() {
            count += 1;
        }
        Ok(count)
    }

    /// Replays every complete record onto `disk` (idempotent physical
    /// redo), re-materializing pages the device does not know yet (they
    /// were allocated after the last durable device state). Returns the
    /// number of records applied.
    pub fn replay(&self, disk: &dyn DiskManager) -> Result<u64> {
        let mut file = self.inner.lock();
        file.seek(SeekFrom::Start(0))?;
        let mut applied = 0;
        while let Some((page, payload)) = read_record(&mut file)? {
            if payload.len() != disk.page_size() {
                return Err(StorageError::Corrupt {
                    page,
                    reason: format!(
                        "WAL image is {} bytes but device pages are {}",
                        payload.len(),
                        disk.page_size()
                    ),
                });
            }
            disk.ensure_allocated(page)?;
            disk.write_page(page, &payload)?;
            applied += 1;
        }
        Ok(applied)
    }
}

/// Reads one record at the current position; `None` on clean EOF or a
/// torn/corrupt tail.
fn read_record(file: &mut File) -> Result<Option<(PageId, Vec<u8>)>> {
    let mut header = [0u8; 16];
    match file.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != REC_MAGIC {
        return Ok(None);
    }
    let page = PageId(u64::from_le_bytes(
        header[4..12].try_into().expect("8 bytes"),
    ));
    let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    if len > 1 << 26 {
        return Ok(None); // implausible length: torn tail
    }
    let mut payload = vec![0u8; len];
    if file.read_exact(&mut payload).is_err() {
        return Ok(None);
    }
    let mut crc_bytes = [0u8; 4];
    if file.read_exact(&mut crc_bytes).is_err() {
        return Ok(None);
    }
    let mut covered = Vec::with_capacity(12 + len);
    covered.extend_from_slice(&header[4..16]);
    covered.extend_from_slice(&payload);
    if crc32(&covered) != u32::from_le_bytes(crc_bytes) {
        return Ok(None);
    }
    Ok(Some((page, payload)))
}

/// Byte offset just past the last complete, checksummed record.
fn scan_valid(file: &mut File) -> Result<u64> {
    file.seek(SeekFrom::Start(0))?;
    let mut end = 0u64;
    while read_record(file)?.is_some() {
        end = file.stream_position()?;
    }
    Ok(end)
}

/// CRC-32 (IEEE 802.3, reflected), table-free bitwise form — slow-ish but
/// dependency-free and only on the write-back path.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nnq-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let path = tmp("roundtrip.wal");
        let disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();

        let wal = Wal::create(&path).unwrap();
        wal.append(a, &[1u8; 64]).unwrap();
        wal.append(b, &[2u8; 64]).unwrap();
        wal.append(a, &[3u8; 64]).unwrap(); // later image wins
        wal.sync().unwrap();
        assert_eq!(wal.record_count().unwrap(), 3);

        let applied = wal.replay(&disk).unwrap();
        assert_eq!(applied, 3);
        let mut buf = [0u8; 64];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset.wal");
        let wal = Wal::create(&path).unwrap();
        wal.append(PageId(0), &[9u8; 32]).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.record_count().unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(5), &[7u8; 64]).unwrap();
            wal.append(PageId(6), &[8u8; 64]).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.record_count().unwrap(), 1); // only the first survives
        let disk = MemDisk::new(64);
        // Replay re-materializes page 5 and applies its image; the torn
        // second record is gone.
        assert_eq!(wal.replay(&disk).unwrap(), 1);
        let mut buf = [0u8; 64];
        disk.read_page(PageId(5), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let path = tmp("corrupt.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(0), &[1u8; 64]).unwrap();
            wal.append(PageId(1), &[2u8; 64]).unwrap();
            wal.append(PageId(2), &[3u8; 64]).unwrap();
            wal.sync().unwrap();
        }
        // Flip a payload byte in the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_size = 16 + 64 + 4;
        bytes[record_size + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let wal = Wal::open(&path).unwrap();
        // Records after the corruption are unreachable (physical log).
        assert_eq!(wal.record_count().unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_valid_records() {
        let path = tmp("reopen.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(0), &[1u8; 32]).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(PageId(1), &[2u8; 32]).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.record_count().unwrap(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_wrong_page_size() {
        let path = tmp("wrongsize.wal");
        let wal = Wal::create(&path).unwrap();
        wal.append(PageId(0), &[1u8; 32]).unwrap();
        let disk = MemDisk::new(64);
        disk.allocate().unwrap();
        assert!(matches!(
            wal.replay(&disk),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
