//! A physical-redo write-ahead log for crash-safe checkpointing and
//! copy-on-write commits.
//!
//! The paged store's durability story is deliberately simple, in the
//! spirit of the systems the paper ran on:
//!
//! * Every page write-back first appends the full page image to the WAL
//!   (`append`), so a crash between "WAL appended" and "page written"
//!   loses nothing: recovery replays images forward (physical redo is
//!   idempotent).
//! * The copy-on-write update path appends its freshly built shadow pages
//!   as a **commit group** ([`Wal::append_txn_image`] for each page,
//!   sealed by [`Wal::append_commit`]). Replay applies a group only if
//!   its commit record made it to the log: a crash mid-publish — after
//!   some shadow images but before the commit record — leaves an
//!   unterminated group that replay discards, so a partially-published
//!   root swap rolls forward to the last committed root.
//! * Durability is batched by **group commit** ([`Wal::group_sync`]):
//!   the log is `sync`ed at most once per commit window, so a burst of
//!   small transactions shares one device sync. A window of zero syncs
//!   every commit.
//! * A **checkpoint** ([`crate::BufferPool::checkpoint`]) flushes all
//!   dirty pages, syncs the device, then truncates the log — after which
//!   the device alone is the state of record.
//! * On open, [`Wal::replay`] applies any images found in the log (a torn
//!   tail — partial record or bad checksum — marks the end of the log and
//!   is ignored, exactly like ARIES' end-of-log detection).
//!
//! Records are
//! `[magic u32][kind u8][lsn u64][txn u64][page_id u64][len u32][payload][crc32 u32]`
//! with the CRC covering everything from the kind byte through the
//! payload. LSNs are assigned monotonically per log and survive reopen
//! (the next LSN continues after the highest valid record).

use crate::{DiskManager, PageId, Result, StorageError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const REC_MAGIC: u32 = 0x574A_4C31; // "WJL1"
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8 + 4;

/// Record kinds (the byte after the magic).
const KIND_IMAGE: u8 = 1;
const KIND_TXN_IMAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// One decoded log record.
struct Record {
    kind: u8,
    #[allow(dead_code)]
    lsn: u64,
    txn: u64,
    page: PageId,
    payload: Vec<u8>,
}

struct WalState {
    file: File,
    /// LSN the next appended record will carry.
    next_lsn: u64,
    /// Records appended since the last sync.
    pending: bool,
    /// When the log was last made durable (for the group-commit window).
    last_sync: Option<Instant>,
}

/// A write-ahead log over a single append-only file.
pub struct Wal {
    state: Mutex<WalState>,
    syncs: AtomicU64,
}

impl Wal {
    /// Creates a fresh (truncated) log file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            state: Mutex::new(WalState {
                file,
                next_lsn: 1,
                pending: false,
                last_sync: None,
            }),
            syncs: AtomicU64::new(0),
        })
    }

    /// Opens an existing log file (or creates an empty one), positioning
    /// appends after the last complete record and continuing its LSN
    /// sequence.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let (valid_end, max_lsn) = scan_valid(&mut file)?;
        file.set_len(valid_end)?; // drop any torn tail
        Ok(Self {
            state: Mutex::new(WalState {
                file,
                next_lsn: max_lsn + 1,
                pending: false,
                last_sync: None,
            }),
            syncs: AtomicU64::new(0),
        })
    }

    fn append_record(&self, kind: u8, txn: u64, page: PageId, payload: &[u8]) -> Result<u64> {
        let mut st = self.state.lock();
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.file.seek(SeekFrom::End(0))?;
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        buf.extend_from_slice(&REC_MAGIC.to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(&lsn.to_le_bytes());
        buf.extend_from_slice(&txn.to_le_bytes());
        buf.extend_from_slice(&page.0.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[4..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        st.file.write_all(&buf)?;
        st.pending = true;
        Ok(lsn)
    }

    /// Appends one page image, applied unconditionally on replay (the
    /// buffer pool's write-back journal). Not yet durable until
    /// [`Wal::sync`]. Returns the record's LSN.
    pub fn append(&self, page: PageId, payload: &[u8]) -> Result<u64> {
        self.append_record(KIND_IMAGE, 0, page, payload)
    }

    /// Appends one page image belonging to commit group `txn`. Replay
    /// holds the image back until the group's [`Wal::append_commit`]
    /// record is found; unterminated groups are discarded. Returns the
    /// record's LSN.
    pub fn append_txn_image(&self, txn: u64, page: PageId, payload: &[u8]) -> Result<u64> {
        self.append_record(KIND_TXN_IMAGE, txn, page, payload)
    }

    /// Seals commit group `txn`: on replay, every buffered image of the
    /// group becomes applicable. Returns the record's LSN.
    pub fn append_commit(&self, txn: u64) -> Result<u64> {
        self.append_record(KIND_COMMIT, txn, PageId::INVALID, &[])
    }

    /// Makes all appended records durable.
    pub fn sync(&self) -> Result<()> {
        let mut st = self.state.lock();
        st.file.sync_data()?;
        st.pending = false;
        st.last_sync = Some(Instant::now());
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Group commit: syncs the log only if there are unsynced records
    /// *and* at least `window` has elapsed since the last sync (a zero
    /// window always syncs). Commits landing inside the window are
    /// published in memory but ride the next sync — the classic
    /// async-group-commit trade of bounded durability lag for one device
    /// sync per window. Returns whether a sync happened.
    pub fn group_sync(&self, window: Duration) -> Result<bool> {
        let mut st = self.state.lock();
        if !st.pending {
            return Ok(false);
        }
        if !window.is_zero() {
            if let Some(at) = st.last_sync {
                if at.elapsed() < window {
                    return Ok(false);
                }
            }
        }
        st.file.sync_data()?;
        st.pending = false;
        st.last_sync = Some(Instant::now());
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Number of device syncs this log has performed (observability for
    /// group-commit tests and benches).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Truncates the log (checkpoint completion). LSNs keep counting
    /// upward — a truncation never reissues an LSN.
    pub fn reset(&self) -> Result<()> {
        let mut st = self.state.lock();
        st.file.set_len(0)?;
        st.file.sync_data()?;
        st.pending = false;
        st.last_sync = Some(Instant::now());
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of complete records currently in the log (all kinds).
    pub fn record_count(&self) -> Result<u64> {
        let mut st = self.state.lock();
        st.file.seek(SeekFrom::Start(0))?;
        let mut count = 0;
        while read_record(&mut st.file)?.is_some() {
            count += 1;
        }
        Ok(count)
    }

    /// Replays the log onto `disk` (idempotent physical redo),
    /// re-materializing pages the device does not know yet (they were
    /// allocated after the last durable device state).
    ///
    /// Plain images apply in log order. Commit-group images are buffered
    /// until the group's commit record, then applied in append order; a
    /// group whose commit record never made it (crash mid-publish) is
    /// discarded entirely, which is what rolls a partially published
    /// copy-on-write root swap forward to the last committed root.
    /// Returns the number of page images applied.
    pub fn replay(&self, disk: &dyn DiskManager) -> Result<u64> {
        let mut st = self.state.lock();
        st.file.seek(SeekFrom::Start(0))?;
        let mut applied = 0;
        let mut staged: HashMap<u64, Vec<(PageId, Vec<u8>)>> = HashMap::new();
        while let Some(rec) = read_record(&mut st.file)? {
            match rec.kind {
                KIND_IMAGE => {
                    apply_image(disk, rec.page, &rec.payload)?;
                    applied += 1;
                }
                KIND_TXN_IMAGE => {
                    staged
                        .entry(rec.txn)
                        .or_default()
                        .push((rec.page, rec.payload));
                }
                KIND_COMMIT => {
                    if let Some(images) = staged.remove(&rec.txn) {
                        for (page, payload) in images {
                            apply_image(disk, page, &payload)?;
                            applied += 1;
                        }
                    }
                }
                _ => break, // unknown kind: treat as end of log
            }
        }
        // Whatever remains staged belongs to groups whose commit record
        // never hit the log: the crash happened before their publish
        // completed, so their images must not reach the device.
        Ok(applied)
    }
}

fn apply_image(disk: &dyn DiskManager, page: PageId, payload: &[u8]) -> Result<()> {
    if payload.len() != disk.page_size() {
        return Err(StorageError::Corrupt {
            page,
            reason: format!(
                "WAL image is {} bytes but device pages are {}",
                payload.len(),
                disk.page_size()
            ),
        });
    }
    disk.ensure_allocated(page)?;
    disk.write_page(page, payload)
}

/// Reads one record at the current position; `None` on clean EOF or a
/// torn/corrupt tail.
fn read_record(file: &mut File) -> Result<Option<Record>> {
    let mut header = [0u8; HEADER_LEN];
    match file.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != REC_MAGIC {
        return Ok(None);
    }
    let kind = header[4];
    let lsn = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
    let txn = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    let page = PageId(u64::from_le_bytes(
        header[21..29].try_into().expect("8 bytes"),
    ));
    let len = u32::from_le_bytes(header[29..33].try_into().expect("4 bytes")) as usize;
    if len > 1 << 26 {
        return Ok(None); // implausible length: torn tail
    }
    let mut payload = vec![0u8; len];
    if file.read_exact(&mut payload).is_err() {
        return Ok(None);
    }
    let mut crc_bytes = [0u8; 4];
    if file.read_exact(&mut crc_bytes).is_err() {
        return Ok(None);
    }
    let mut covered = Vec::with_capacity(HEADER_LEN - 4 + len);
    covered.extend_from_slice(&header[4..HEADER_LEN]);
    covered.extend_from_slice(&payload);
    if crc32(&covered) != u32::from_le_bytes(crc_bytes) {
        return Ok(None);
    }
    if !(KIND_IMAGE..=KIND_COMMIT).contains(&kind) {
        return Ok(None);
    }
    Ok(Some(Record {
        kind,
        lsn,
        txn,
        page,
        payload,
    }))
}

/// Byte offset just past the last complete, checksummed record, and the
/// highest LSN seen among them.
fn scan_valid(file: &mut File) -> Result<(u64, u64)> {
    file.seek(SeekFrom::Start(0))?;
    let mut end = 0u64;
    let mut max_lsn = 0u64;
    while let Some(rec) = read_record(file)? {
        end = file.stream_position()?;
        max_lsn = max_lsn.max(rec.lsn);
    }
    Ok((end, max_lsn))
}

/// CRC-32 (IEEE 802.3, reflected), table-free bitwise form — slow-ish but
/// dependency-free and only on the write-back path.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nnq-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let path = tmp("roundtrip.wal");
        let disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();

        let wal = Wal::create(&path).unwrap();
        wal.append(a, &[1u8; 64]).unwrap();
        wal.append(b, &[2u8; 64]).unwrap();
        wal.append(a, &[3u8; 64]).unwrap(); // later image wins
        wal.sync().unwrap();
        assert_eq!(wal.record_count().unwrap(), 3);

        let applied = wal.replay(&disk).unwrap();
        assert_eq!(applied, 3);
        let mut buf = [0u8; 64];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lsns_are_monotonic_and_survive_reopen() {
        let path = tmp("lsn.wal");
        {
            let wal = Wal::create(&path).unwrap();
            assert_eq!(wal.append(PageId(0), &[1u8; 16]).unwrap(), 1);
            assert_eq!(wal.append(PageId(1), &[2u8; 16]).unwrap(), 2);
            wal.sync().unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.append(PageId(2), &[3u8; 16]).unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn committed_group_applies_uncommitted_group_does_not() {
        let path = tmp("group.wal");
        let disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();

        let wal = Wal::create(&path).unwrap();
        // Committed group 1 touches page a.
        wal.append_txn_image(1, a, &[0xAA; 64]).unwrap();
        wal.append_commit(1).unwrap();
        // Group 2 touches both pages but never commits (crash mid-publish).
        wal.append_txn_image(2, a, &[0xBB; 64]).unwrap();
        wal.append_txn_image(2, b, &[0xBB; 64]).unwrap();
        wal.sync().unwrap();

        assert_eq!(wal.replay(&disk).unwrap(), 1);
        let mut buf = [0u8; 64];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [0xAA; 64], "committed image must land");
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64], "uncommitted image must not");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_window_batches_syncs() {
        let path = tmp("groupsync.wal");
        let wal = Wal::create(&path).unwrap();
        // Zero window: every group_sync with pending records syncs.
        wal.append(PageId(0), &[1u8; 16]).unwrap();
        assert!(wal.group_sync(Duration::ZERO).unwrap());
        // Nothing pending: no sync.
        assert!(!wal.group_sync(Duration::ZERO).unwrap());
        let base = wal.sync_count();
        // A wide window right after a sync: the record rides the window.
        wal.append(PageId(1), &[2u8; 16]).unwrap();
        assert!(!wal.group_sync(Duration::from_secs(3600)).unwrap());
        assert_eq!(wal.sync_count(), base);
        // An explicit sync always drains.
        wal.sync().unwrap();
        assert_eq!(wal.sync_count(), base + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_on_empty_log_is_a_noop() {
        let path = tmp("empty.wal");
        let wal = Wal::create(&path).unwrap();
        let disk = MemDisk::new(64);
        assert_eq!(wal.replay(&disk).unwrap(), 0);
        assert_eq!(wal.record_count().unwrap(), 0);
        // Opening a nonexistent path also yields an empty, replayable log.
        let fresh = Wal::open(tmp("never-written.wal")).unwrap();
        assert_eq!(fresh.replay(&disk).unwrap(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp("never-written.wal")).ok();
    }

    #[test]
    fn replay_on_truncated_log_applies_the_intact_prefix() {
        let path = tmp("trunc-replay.wal");
        let disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(a, &[5u8; 64]).unwrap();
            wal.append(b, &[6u8; 64]).unwrap();
            wal.sync().unwrap();
        }
        // Chop into the middle of the second record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 30).unwrap();
        drop(f);

        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay(&disk).unwrap(), 1);
        let mut buf = [0u8; 64];
        disk.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 64]);
        disk.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_count_is_zero_after_reset() {
        let path = tmp("reset.wal");
        let wal = Wal::create(&path).unwrap();
        wal.append(PageId(0), &[9u8; 32]).unwrap();
        wal.append_txn_image(1, PageId(1), &[8u8; 32]).unwrap();
        wal.append_commit(1).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.record_count().unwrap(), 3);
        wal.reset().unwrap();
        assert_eq!(wal.record_count().unwrap(), 0);
        // And the truncated log replays as empty.
        assert_eq!(wal.replay(&MemDisk::new(64)).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_replay_is_idempotent() {
        let path = tmp("idem.wal");
        let disk = MemDisk::new(64);
        let a = disk.allocate().unwrap();
        let wal = Wal::create(&path).unwrap();
        wal.append(a, &[4u8; 64]).unwrap();
        wal.append_txn_image(7, a, &[5u8; 64]).unwrap();
        wal.append_commit(7).unwrap();
        wal.sync().unwrap();

        let first = wal.replay(&disk).unwrap();
        let mut after_first = [0u8; 64];
        disk.read_page(a, &mut after_first).unwrap();
        let second = wal.replay(&disk).unwrap();
        let mut after_second = [0u8; 64];
        disk.read_page(a, &mut after_second).unwrap();
        assert_eq!(first, second);
        assert_eq!(after_first, after_second);
        assert_eq!(after_first, [5u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(5), &[7u8; 64]).unwrap();
            wal.append(PageId(6), &[8u8; 64]).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.record_count().unwrap(), 1); // only the first survives
        let disk = MemDisk::new(64);
        // Replay re-materializes page 5 and applies its image; the torn
        // second record is gone.
        assert_eq!(wal.replay(&disk).unwrap(), 1);
        let mut buf = [0u8; 64];
        disk.read_page(PageId(5), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let path = tmp("corrupt.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(0), &[1u8; 64]).unwrap();
            wal.append(PageId(1), &[2u8; 64]).unwrap();
            wal.append(PageId(2), &[3u8; 64]).unwrap();
            wal.sync().unwrap();
        }
        // Flip a payload byte in the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_size = HEADER_LEN + 64 + 4;
        bytes[record_size + HEADER_LEN + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let wal = Wal::open(&path).unwrap();
        // Records after the corruption are unreachable (physical log).
        assert_eq!(wal.record_count().unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_valid_records() {
        let path = tmp("reopen.wal");
        {
            let wal = Wal::create(&path).unwrap();
            wal.append(PageId(0), &[1u8; 32]).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(PageId(1), &[2u8; 32]).unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.record_count().unwrap(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_wrong_page_size() {
        let path = tmp("wrongsize.wal");
        let wal = Wal::create(&path).unwrap();
        wal.append(PageId(0), &[1u8; 32]).unwrap();
        let disk = MemDisk::new(64);
        disk.allocate().unwrap();
        assert!(matches!(
            wal.replay(&disk),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
