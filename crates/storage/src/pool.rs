//! A fixed-capacity buffer pool with LRU eviction and pin/unpin semantics,
//! optionally sharded for concurrent readers, with an optional background
//! prefetch pipeline.
//!
//! The pool is split into `S` sub-pools ("shards", `S` a power of two),
//! each with its own mutex, frame table, free list, and LRU clock. A page
//! lives in the shard selected by the low bits of its [`PageId`], so two
//! threads fetching pages in different shards never touch the same lock.
//! `S = 1` (the default) is byte-for-byte the classic single-latch pool:
//! one global LRU order, one mutex.
//!
//! Accounting invariant: every fetch increments exactly one shard's
//! `logical_reads` cell, so the aggregate [`PoolStats`] — and therefore
//! the paper's "pages accessed" figure — is identical for every shard
//! count. Eviction order (and hence `physical_reads` under a *finite*
//! buffer) is per-shard LRU, which only coincides with global LRU at
//! `S = 1`; experiments that reproduce the paper's buffering curves use a
//! single shard.
//!
//! # Prefetch
//!
//! [`BufferPool::prefetch`] enqueues a page id to a small pool of
//! background I/O workers (started with [`BufferPool::start_prefetch`]).
//! Hints are deduplicated against resident, queued, and in-flight pages
//! and dropped when the bounded queue is full; a frame being filled by a
//! prefetch is pinned and exclusively latched for the duration of the
//! device read, so LRU cannot evict it mid-read and a racing demand fetch
//! blocks on the latch instead of observing stale bytes.
//!
//! Prefetch accounting is kept strictly separate from [`PoolStats`] in
//! [`PrefetchStats`]: issuing or completing a hint never moves
//! `logical_reads`, so the paper's page-access figures are bit-identical
//! with prefetch on, off, or compiled out (disable the crate's `prefetch`
//! feature). After [`BufferPool::prefetch_quiesce`] plus
//! [`BufferPool::clear_cache`], `useful + wasted + dropped == issued`.

use crate::wal::Wal;
use crate::{DiskManager, DiskStats, PageId, Result, StorageError};
use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RawRwLock, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type FrameData = Arc<RwLock<Vec<u8>>>;
type ReadGuardInner = ArcRwLockReadGuard<RawRwLock, Vec<u8>>;
type WriteGuardInner = ArcRwLockWriteGuard<RawRwLock, Vec<u8>>;

/// Access counters maintained by a [`BufferPool`].
///
/// * `logical_reads` is the paper's **"pages accessed"** figure: every page
///   the algorithm touches, whether or not it was cached.
/// * `physical_reads` (misses) is the **disk I/O** figure under a finite
///   buffer, the quantity RKV'95's buffering experiments vary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total page fetches (read or write intent).
    pub logical_reads: u64,
    /// Fetches satisfied from the cache.
    pub hits: u64,
    /// Fetches that had to read from the device.
    pub physical_reads: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to the device on eviction or flush.
    pub writebacks: u64,
}

impl PoolStats {
    /// Cache hit rate in `[0, 1]`.
    ///
    /// An untouched pool (`logical_reads == 0`) reports `0.0`, not NaN:
    /// callers format this directly into reports, and "no fetches" renders
    /// most honestly as a 0% hit rate. The rtree node cache's
    /// `NodeCacheStats::hit_rate` follows the same convention.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }

    /// Fraction of fetches that missed the cache, in `[0, 1]` (`0.0` for
    /// an untouched pool, same convention as [`PoolStats::hit_rate`]).
    /// This is the signal the adaptive prefetch policy keys on.
    pub fn miss_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Adds `other` counter-wise — how per-shard stats sum to the pool
    /// aggregate, and how a partitioned tree's per-partition pools sum to
    /// one dataset-wide figure.
    pub fn accumulate(&mut self, other: PoolStats) {
        self.logical_reads += other.logical_reads;
        self.hits += other.hits;
        self.physical_reads += other.physical_reads;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }
}

/// Counters of the asynchronous prefetch pipeline.
///
/// Kept strictly separate from [`PoolStats`]: prefetch activity never moves
/// `logical_reads`, the paper's "pages accessed" figure. Every issued hint
/// is eventually classified exactly once:
///
/// * `useful` — the frame a prefetch loaded was later claimed by a demand
///   fetch (which counts as a pool *hit*).
/// * `wasted` — the frame was evicted, cleared, or deleted before any
///   demand fetch touched it (the device read bought nothing).
/// * `dropped` — the hint never performed a device read: deduplicated
///   against a resident/queued/in-flight page, bounced off a full queue,
///   cancelled, or failed.
///
/// So after the queue drains and the cache is cleared,
/// `useful + wasted + dropped == issued`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Hints passed to [`BufferPool::prefetch`] while a prefetcher was
    /// running.
    pub issued: u64,
    /// Prefetched frames later claimed by a demand fetch.
    pub useful: u64,
    /// Prefetched frames evicted/cleared/deleted untouched.
    pub wasted: u64,
    /// Hints that never reached the device (dedup, full queue, cancel).
    pub dropped: u64,
}

impl PrefetchStats {
    /// Fraction of issued hints that turned into demand hits, in `[0, 1]`
    /// (`0.0` when nothing was issued).
    pub fn useful_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

#[derive(Default)]
struct StatCells {
    logical_reads: AtomicU64,
    hits: AtomicU64,
    physical_reads: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }
}

struct Frame {
    page: PageId,
    data: FrameData,
    dirty: bool,
    pins: u32,
    /// Recency stamp for LRU: larger = more recently used.
    tick: u64,
    /// Loaded by a prefetch and not yet claimed by a demand fetch. The
    /// first demand hit clears the flag and counts `prefetch_useful`;
    /// eviction/clear/delete of a flagged frame counts `prefetch_wasted`.
    prefetched: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    free: Vec<usize>,
    tick: u64,
}

/// One sub-pool: its own latch, frame table, free list, LRU clock, and
/// stat cells. Pages are assigned to shards by `page_id & shard_mask`.
struct Shard {
    inner: Mutex<Inner>,
    stats: StatCells,
}

impl Shard {
    fn new(frames: usize, page_size: usize) -> Self {
        let frames = (0..frames)
            .map(|_| Frame {
                page: PageId::INVALID,
                data: Arc::new(RwLock::new(vec![0u8; page_size])),
                dirty: false,
                pins: 0,
                tick: 0,
                prefetched: false,
            })
            .collect::<Vec<_>>();
        let capacity = frames.len();
        Self {
            inner: Mutex::new(Inner {
                frames,
                map: HashMap::with_capacity(capacity),
                free: (0..capacity).rev().collect(),
                tick: 0,
            }),
            stats: StatCells::default(),
        }
    }
}

/// Queue shared between [`BufferPool::prefetch`] and the background I/O
/// workers. Uses `std::sync` primitives because the queue pairs a mutex
/// with a condition variable.
struct PrefetchState {
    queue: VecDeque<PageId>,
    queued: HashSet<PageId>,
    in_flight: HashSet<PageId>,
    cap: usize,
    shutdown: bool,
    /// Threads spawned by [`BufferPool::start_prefetch`] (their indices are
    /// `0..spawned`).
    spawned: usize,
    /// Workers with index `< active_workers` service the queue; the rest
    /// park on the condvar. Runtime-adjustable via
    /// [`BufferPool::set_prefetch_workers`] — never below 1 while spawned
    /// threads exist, so queued hints always drain and
    /// [`BufferPool::prefetch_quiesce`] cannot hang.
    active_workers: usize,
}

struct PrefetchShared {
    state: std::sync::Mutex<PrefetchState>,
    cvar: std::sync::Condvar,
    /// Set once a prefetcher is started; the hot paths early-out on it.
    active: AtomicBool,
    issued: AtomicU64,
    useful: AtomicU64,
    wasted: AtomicU64,
    dropped: AtomicU64,
}

impl PrefetchShared {
    fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(PrefetchState {
                queue: VecDeque::new(),
                queued: HashSet::new(),
                in_flight: HashSet::new(),
                cap: 0,
                shutdown: false,
                spawned: 0,
                active_workers: 0,
            }),
            cvar: std::sync::Condvar::new(),
            active: AtomicBool::new(false),
            issued: AtomicU64::new(0),
            useful: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.issued.load(Ordering::Relaxed),
            useful: self.useful.load(Ordering::Relaxed),
            wasted: self.wasted.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.issued.store(0, Ordering::Relaxed);
        self.useful.store(0, Ordering::Relaxed);
        self.wasted.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// The shareable interior of a [`BufferPool`]: everything except the
/// worker join handles, so background prefetch threads can hold an `Arc`
/// of it without the pool becoming self-referential.
struct PoolCore {
    disk: Box<dyn DiskManager>,
    shards: Vec<Shard>,
    shard_mask: u64,
    wal: Option<Wal>,
    prefetch: PrefetchShared,
}

/// A page cache over a [`DiskManager`].
///
/// * Fixed number of frames, chosen at construction, split across one or
///   more shards; LRU eviction among unpinned frames of the page's shard.
/// * [`BufferPool::fetch`] / [`BufferPool::fetch_write`] return RAII guards
///   that pin the page (pinned pages are never evicted) and latch its
///   contents for shared or exclusive access.
/// * All methods take `&self`; the pool is internally synchronized and can
///   be shared across threads. With `shards > 1`
///   ([`BufferPool::with_shards`]) concurrent fetches of pages in
///   different shards do not contend on any lock.
/// * [`BufferPool::start_prefetch`] attaches background I/O workers that
///   service [`BufferPool::prefetch`] hints without touching the demand
///   counters.
///
/// Callers must not fetch a page while holding a *write* guard on that same
/// page from the same thread (the per-frame latch is not reentrant).
pub struct BufferPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl BufferPool {
    /// Creates a single-shard pool with `capacity` frames over `disk`
    /// (one global latch and one global LRU order — the paper's buffering
    /// model).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize) -> Self {
        Self::with_shards(disk, capacity, 1)
    }

    /// Creates a pool with `capacity` frames split across `shards`
    /// sub-pools. `shards` is rounded up to a power of two and clamped so
    /// every shard owns at least one frame.
    ///
    /// Aggregate `logical_reads` is identical for every shard count;
    /// eviction (and so `physical_reads` under a finite buffer) is
    /// per-shard LRU. Size `capacity ≫ shards` for sensible behavior.
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero.
    pub fn with_shards(disk: Box<dyn DiskManager>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        let mut shards = shards.next_power_of_two();
        while shards > capacity {
            shards /= 2; // stay a power of two, every shard gets ≥ 1 frame
        }
        let page_size = disk.page_size();
        let base = capacity / shards;
        let rem = capacity % shards;
        let shard_vec = (0..shards)
            .map(|i| Shard::new(base + usize::from(i < rem), page_size))
            .collect::<Vec<_>>();
        Self {
            core: Arc::new(PoolCore {
                disk,
                shard_mask: (shards - 1) as u64,
                shards: shard_vec,
                wal: None,
                prefetch: PrefetchShared::new(),
            }),
            workers: Vec::new(),
        }
    }

    /// Shard count sized for a thread hint: the next power of two at or
    /// above `threads` (so each worker of a `threads`-wide batch tends to
    /// land on its own latch).
    pub fn shards_for_threads(threads: usize) -> usize {
        threads.max(1).next_power_of_two()
    }

    /// Creates a pool whose page write-backs are journaled to `wal`
    /// first, enabling crash-safe checkpointing (see [`Wal`] and
    /// [`BufferPool::checkpoint`]).
    ///
    /// Recovery protocol for the caller on startup: open the device, open
    /// the WAL, call [`Wal::replay`] on the device, then build the pool
    /// with both.
    pub fn with_wal(disk: Box<dyn DiskManager>, capacity: usize, wal: Wal) -> Self {
        let mut pool = Self::new(disk, capacity);
        Arc::get_mut(&mut pool.core)
            .expect("pool not yet shared")
            .wal = Some(wal);
        pool
    }

    /// Starts `workers` background prefetch threads servicing a bounded
    /// queue of `queue_cap` hints. Must be called before the pool is
    /// shared (it takes `&mut self`); calling it more than once adds
    /// workers to the same queue. A zero worker count or queue capacity
    /// leaves the prefetcher off.
    ///
    /// With the crate's `prefetch` feature disabled this is a no-op and
    /// [`BufferPool::prefetch`] hints are ignored — the compile-time "off"
    /// the accounting contract promises.
    #[allow(unused_variables)]
    pub fn start_prefetch(&mut self, workers: usize, queue_cap: usize) {
        #[cfg(feature = "prefetch")]
        {
            if workers == 0 || queue_cap == 0 {
                return;
            }
            let first = {
                let mut st = self.core.prefetch.state.lock().unwrap();
                st.cap = queue_cap;
                st.shutdown = false;
                let first = st.spawned;
                st.spawned += workers;
                st.active_workers = st.spawned;
                first
            };
            self.core.prefetch.active.store(true, Ordering::Relaxed);
            for i in first..first + workers {
                let core = Arc::clone(&self.core);
                let handle = std::thread::Builder::new()
                    .name(format!("nnq-prefetch-{i}"))
                    .spawn(move || prefetch_worker(core, i))
                    .expect("failed to spawn prefetch worker");
                self.workers.push(handle);
            }
        }
    }

    /// Whether a prefetcher is attached and running.
    pub fn prefetch_active(&self) -> bool {
        self.core.prefetch.active.load(Ordering::Relaxed)
    }

    /// Hints that `id` will likely be fetched soon. Non-blocking: the page
    /// is queued for a background read and the hint is dropped if it is
    /// already resident, queued, in flight, or the queue is full. A no-op
    /// (not even counted) unless [`BufferPool::start_prefetch`] ran.
    ///
    /// Never touches [`PoolStats`]: the demand-path `logical_reads` /
    /// `physical_reads` accounting is identical with prefetch on or off.
    pub fn prefetch(&self, id: PageId) {
        self.core.prefetch_enqueue(id);
    }

    /// Snapshot of the prefetch counters.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.core.prefetch.snapshot()
    }

    /// Blocks until the prefetch queue is empty and no read is in flight.
    /// Used by experiments before reading counters, so every issued hint
    /// has been classified (or is resident awaiting `useful`/`wasted`
    /// classification by [`BufferPool::clear_cache`]).
    pub fn prefetch_quiesce(&self) {
        self.core.quiesce_prefetch();
    }

    /// Sets how many of the spawned prefetch threads actively service the
    /// queue; the rest park on the condvar. Clamped to `[1, spawned]` — a
    /// floor of one keeps queued hints draining so
    /// [`BufferPool::prefetch_quiesce`] can never hang (prefetch "off" is
    /// expressed by issuing no hints, i.e. depth 0, not by zero workers).
    /// Returns the active count after clamping; 0 if no prefetcher was
    /// ever started (or the `prefetch` feature is compiled out).
    ///
    /// Accounting-neutral by construction: workers only serve hints, which
    /// never touch [`PoolStats`].
    #[allow(unused_variables)]
    pub fn set_prefetch_workers(&self, n: usize) -> usize {
        #[cfg(feature = "prefetch")]
        {
            let mut st = self.core.prefetch.state.lock().unwrap();
            if st.spawned == 0 {
                return 0;
            }
            st.active_workers = n.clamp(1, st.spawned);
            let active = st.active_workers;
            drop(st);
            // Parked workers past the old active count may need waking.
            self.core.prefetch.cvar.notify_all();
            active
        }
        #[cfg(not(feature = "prefetch"))]
        0
    }

    /// Number of prefetch threads currently servicing the queue (0 when no
    /// prefetcher is attached or the `prefetch` feature is compiled out).
    pub fn prefetch_workers(&self) -> usize {
        #[cfg(feature = "prefetch")]
        {
            return self.core.prefetch.state.lock().unwrap().active_workers;
        }
        #[cfg(not(feature = "prefetch"))]
        0
    }

    /// Journals a page image before it is written back to the device
    /// (no-op without a WAL).
    fn log_writeback(&self, page: PageId, image: &[u8]) -> Result<()> {
        self.core.log_writeback(page, image)
    }

    /// The journal this pool appends write-backs to, if any. The
    /// copy-on-write publish path drives its commit groups through this
    /// handle so tree commits and pool write-backs share one log.
    pub fn wal(&self) -> Option<&Wal> {
        self.core.wal.as_ref()
    }

    /// Copies the current contents of `id` without touching the pool's
    /// logical/physical read counters: served from the resident frame when
    /// one exists, read straight from the device otherwise. This is the
    /// side door the publish path uses to capture shadow-page images for
    /// the journal — capturing an image is not a page access in the
    /// paper's accounting.
    pub fn page_image(&self, id: PageId) -> Result<Vec<u8>> {
        let shard = self.core.shard_of(id);
        let resident = {
            let mut inner = shard.inner.lock();
            if let Some(&frame_idx) = inner.map.get(&id) {
                // Pin so the frame cannot be evicted or repurposed while
                // we copy outside the shard lock.
                inner.frames[frame_idx].pins += 1;
                Some((frame_idx, Arc::clone(&inner.frames[frame_idx].data)))
            } else {
                None
            }
        };
        if let Some((frame_idx, data)) = resident {
            let image = data.read().to_vec();
            let mut inner = shard.inner.lock();
            inner.frames[frame_idx].pins -= 1;
            return Ok(image);
        }
        let mut image = vec![0u8; self.core.disk.page_size()];
        self.core.disk.read_page(id, &mut image)?;
        Ok(image)
    }

    /// Crash-consistent checkpoint: journals and writes back every dirty
    /// page, syncs the device, then truncates the journal. After a
    /// successful checkpoint the device alone holds the state of record;
    /// after a crash at any point, [`Wal::replay`] restores it.
    pub fn checkpoint(&self) -> Result<()> {
        self.flush_all()?;
        if let Some(wal) = &self.core.wal {
            wal.sync()?;
            // Device is durably up to date (flush_all syncs); the journal
            // has served its purpose.
            wal.reset()?;
        }
        Ok(())
    }

    /// The page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.core.disk.page_size()
    }

    /// The total number of frames across all shards.
    pub fn capacity(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.inner.lock().frames.len())
            .sum()
    }

    /// The number of shards (a power of two; `1` for the default pool).
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Aggregate access counters: the per-shard atomics summed. With one
    /// shard this is exactly the classic pool's counters; with many, the
    /// sum is still one increment per fetch, so `logical_reads` is
    /// shard-count-independent.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for shard in &self.core.shards {
            total.accumulate(shard.stats.snapshot());
        }
        total
    }

    /// Per-shard counter snapshots, indexed by shard. Summing them equals
    /// [`BufferPool::stats`].
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.core
            .shards
            .iter()
            .map(|s| s.stats.snapshot())
            .collect()
    }

    /// Counters of the underlying device.
    pub fn disk_stats(&self) -> DiskStats {
        self.core.disk.stats()
    }

    /// Number of live pages on the underlying device.
    pub fn live_pages(&self) -> u64 {
        self.core.disk.live_pages()
    }

    /// Resets pool, prefetch, and device counters (used between experiment
    /// phases). For the prefetch-classification invariant to hold across a
    /// reset, quiesce and clear the cache first so no frame still carries
    /// an unclassified prefetch.
    pub fn reset_stats(&self) {
        for shard in &self.core.shards {
            shard.stats.reset();
        }
        self.core.prefetch.reset();
        self.core.disk.reset_stats();
    }

    /// Drops every unpinned clean frame from the cache (writes back dirty
    /// ones first), so the next fetches are cold. Used by experiments that
    /// measure cold-cache I/O.
    ///
    /// Queued prefetch hints are cancelled (counted `dropped`) and
    /// in-flight reads drained first; prefetched frames that were never
    /// claimed by a demand fetch are counted `wasted` as they go.
    pub fn clear_cache(&self) -> Result<()> {
        self.core.drain_prefetch();
        for shard in &self.core.shards {
            let mut inner = shard.inner.lock();
            let mut idx = 0;
            while idx < inner.frames.len() {
                let (page, dirty, pins) = {
                    let f = &inner.frames[idx];
                    (f.page, f.dirty, f.pins)
                };
                if page.is_valid() && pins == 0 {
                    if dirty {
                        let data = Arc::clone(&inner.frames[idx].data);
                        let buf = data.read();
                        self.log_writeback(page, &buf)?;
                        self.core.disk.write_page(page, &buf)?;
                        shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                    inner.map.remove(&page);
                    let f = &mut inner.frames[idx];
                    if f.prefetched {
                        f.prefetched = false;
                        self.core.prefetch.wasted.fetch_add(1, Ordering::Relaxed);
                    }
                    f.page = PageId::INVALID;
                    f.dirty = false;
                    inner.free.push(idx);
                }
                idx += 1;
            }
        }
        Ok(())
    }

    /// Fetches a page for shared (read) access.
    pub fn fetch(&self, id: PageId) -> Result<PageReadGuard<'_>> {
        let (shard_idx, frame_idx, data) = self.core.pin_frame(id, false)?;
        let guard = RwLock::read_arc(&data);
        Ok(PageReadGuard {
            pool: self,
            shard: shard_idx,
            frame: frame_idx,
            guard,
        })
    }

    /// Fetches a page for exclusive (write) access and marks it dirty.
    pub fn fetch_write(&self, id: PageId) -> Result<PageWriteGuard<'_>> {
        let (shard_idx, frame_idx, data) = self.core.pin_frame(id, true)?;
        let guard = RwLock::write_arc(&data);
        Ok(PageWriteGuard {
            pool: self,
            shard: shard_idx,
            frame: frame_idx,
            guard,
        })
    }

    /// Allocates a fresh zeroed page on the device and returns it pinned for
    /// writing.
    pub fn new_page(&self) -> Result<(PageId, PageWriteGuard<'_>)> {
        let id = self.core.disk.allocate()?;
        // The device can re-issue a freed id; make sure no stale hint for
        // it is queued or being read before mapping the fresh page.
        self.core.cancel_prefetch(id);
        let shard_idx = (id.0 & self.core.shard_mask) as usize;
        let shard = &self.core.shards[shard_idx];
        // The page is zeroed on the device; cache it without a device read.
        let mut inner = shard.inner.lock();
        let frame_idx = self.core.acquire_frame(shard, &mut inner)?;
        inner.map.insert(id, frame_idx);
        inner.tick += 1;
        let tick = inner.tick;
        let f = &mut inner.frames[frame_idx];
        f.page = id;
        f.dirty = true;
        f.pins = 1;
        f.tick = tick;
        let data = Arc::clone(&f.data);
        drop(inner);
        let mut guard = RwLock::write_arc(&data);
        guard.fill(0);
        Ok((
            id,
            PageWriteGuard {
                pool: self,
                shard: shard_idx,
                frame: frame_idx,
                guard,
            },
        ))
    }

    /// Deletes a page: removes it from the cache and frees it on the device.
    ///
    /// A queued prefetch of the page is cancelled and an in-flight one
    /// drained first, so a background read cannot resurrect the freed page
    /// into a frame. Fails with [`StorageError::PoolExhausted`] if the
    /// page is currently pinned by a demand guard.
    pub fn delete_page(&self, id: PageId) -> Result<()> {
        self.core.cancel_prefetch(id);
        let shard = self.core.shard_of(id);
        let mut inner = shard.inner.lock();
        if let Some(&frame_idx) = inner.map.get(&id) {
            if inner.frames[frame_idx].pins > 0 {
                return Err(StorageError::PoolExhausted {
                    frames: inner.frames.len(),
                });
            }
            inner.map.remove(&id);
            let f = &mut inner.frames[frame_idx];
            if f.prefetched {
                f.prefetched = false;
                self.core.prefetch.wasted.fetch_add(1, Ordering::Relaxed);
            }
            f.page = PageId::INVALID;
            f.dirty = false;
            inner.free.push(frame_idx);
        }
        drop(inner);
        self.core.disk.deallocate(id)
    }

    /// Writes all dirty frames back to the device and syncs it.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.core.shards {
            let inner = shard.inner.lock();
            // Collect (page, data) pairs first so the device I/O happens
            // with a consistent view; frames stay resident, become clean.
            let mut to_write = Vec::new();
            for f in &inner.frames {
                if f.page.is_valid() && f.dirty {
                    to_write.push((f.page, Arc::clone(&f.data)));
                }
            }
            drop(inner);
            for (page, data) in to_write {
                let buf = data.read();
                self.log_writeback(page, &buf)?;
                self.core.disk.write_page(page, &buf)?;
                shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            let mut inner = shard.inner.lock();
            for f in &mut inner.frames {
                if f.page.is_valid() {
                    f.dirty = false;
                }
            }
        }
        self.core.disk.sync()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.core.prefetch.active.store(false, Ordering::Relaxed);
        {
            let mut st = self.core.prefetch.state.lock().unwrap();
            st.shutdown = true;
            st.queue.clear();
            st.queued.clear();
        }
        self.core.prefetch.cvar.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Background prefetch worker: pops hints off the shared queue and loads
/// them into frames until shutdown.
fn prefetch_worker(core: Arc<PoolCore>, index: usize) {
    loop {
        let id = {
            let mut st = core.prefetch.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                // Workers past the active count park until re-enabled by
                // `set_prefetch_workers` (or shutdown).
                if index < st.active_workers {
                    if let Some(id) = st.queue.pop_front() {
                        st.queued.remove(&id);
                        st.in_flight.insert(id);
                        break id;
                    }
                }
                st = core.prefetch.cvar.wait(st).unwrap();
            }
        };
        core.prefetch_read(id);
        let mut st = core.prefetch.state.lock().unwrap();
        st.in_flight.remove(&id);
        drop(st);
        // Wake cancel/drain/quiesce waiters (and idle workers).
        core.prefetch.cvar.notify_all();
    }
}

impl PoolCore {
    #[inline]
    fn shard_of(&self, id: PageId) -> &Shard {
        &self.shards[(id.0 & self.shard_mask) as usize]
    }

    fn log_writeback(&self, page: PageId, image: &[u8]) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.append(page, image)?;
        }
        Ok(())
    }

    // -- demand path -------------------------------------------------------

    /// Pins the frame holding `id` in its shard, loading it from the device
    /// on a miss. Returns the shard index, frame index, and its data cell.
    fn pin_frame(&self, id: PageId, write_intent: bool) -> Result<(usize, usize, FrameData)> {
        if !id.is_valid() {
            return Err(StorageError::InvalidPage(id));
        }
        let shard_idx = (id.0 & self.shard_mask) as usize;
        let shard = &self.shards[shard_idx];
        let mut inner = shard.inner.lock();
        shard.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&frame_idx) = inner.map.get(&id) {
            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
            let f = &mut inner.frames[frame_idx];
            if f.prefetched {
                // First demand claim of a prefetched frame: the hint paid
                // off. (If the background read is still running, the latch
                // acquired by the caller after this returns will block
                // until the bytes are in place.)
                f.prefetched = false;
                self.prefetch.useful.fetch_add(1, Ordering::Relaxed);
            }
            f.pins += 1;
            f.tick = tick;
            if write_intent {
                f.dirty = true;
            }
            return Ok((shard_idx, frame_idx, Arc::clone(&f.data)));
        }

        // Miss: find a frame, read from device.
        shard.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        let frame_idx = self.acquire_frame(shard, &mut inner)?;
        {
            let data = Arc::clone(&inner.frames[frame_idx].data);
            let mut buf = data.write();
            if let Err(e) = self.disk.read_page(id, &mut buf) {
                // Leave the frame on the free list on failure.
                inner.free.push(frame_idx);
                return Err(e);
            }
        }
        inner.map.insert(id, frame_idx);
        let f = &mut inner.frames[frame_idx];
        f.page = id;
        f.dirty = write_intent;
        f.pins = 1;
        f.tick = tick;
        Ok((shard_idx, frame_idx, Arc::clone(&f.data)))
    }

    /// Gets a free frame in `shard`, evicting its least-recently-used
    /// unpinned frame if necessary. The returned frame is unmapped and
    /// unpinned.
    fn acquire_frame(&self, shard: &Shard, inner: &mut Inner) -> Result<usize> {
        if let Some(idx) = inner.free.pop() {
            return Ok(idx);
        }
        // LRU scan over unpinned frames.
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0 && f.page.is_valid())
            .min_by_key(|(_, f)| f.tick)
            .map(|(i, _)| i)
            .ok_or(StorageError::PoolExhausted {
                frames: inner.frames.len(),
            })?;
        let (page, dirty) = {
            let f = &inner.frames[victim];
            (f.page, f.dirty)
        };
        if dirty {
            let data = Arc::clone(&inner.frames[victim].data);
            let buf = data.read();
            self.log_writeback(page, &buf)?;
            self.disk.write_page(page, &buf)?;
            shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.remove(&page);
        let f = &mut inner.frames[victim];
        if f.prefetched {
            // Evicted before any demand fetch touched it: the device read
            // bought nothing.
            f.prefetched = false;
            self.prefetch.wasted.fetch_add(1, Ordering::Relaxed);
        }
        f.page = PageId::INVALID;
        f.dirty = false;
        shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(victim)
    }

    fn unpin(&self, shard_idx: usize, frame_idx: usize) {
        let mut inner = self.shards[shard_idx].inner.lock();
        let f = &mut inner.frames[frame_idx];
        debug_assert!(f.pins > 0, "unpin of unpinned frame");
        f.pins -= 1;
        if f.pins == 0 && !f.page.is_valid() {
            // The frame was unmapped while pinned (a failed prefetch read
            // raced with demand readers); the last unpin reclaims it.
            inner.free.push(frame_idx);
        }
    }

    // -- prefetch path -----------------------------------------------------

    /// Foreground half of a prefetch: classify-or-enqueue, never blocking
    /// on I/O.
    #[allow(unused_variables)]
    fn prefetch_enqueue(&self, id: PageId) {
        #[cfg(feature = "prefetch")]
        {
            if !self.prefetch.active.load(Ordering::Relaxed) {
                return;
            }
            self.prefetch.issued.fetch_add(1, Ordering::Relaxed);
            if !id.is_valid() {
                self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Dedup against resident pages. Advisory only — the worker
            // re-checks under the shard lock before reading.
            let resident = { self.shard_of(id).inner.lock().map.contains_key(&id) };
            if resident {
                self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut st = self.prefetch.state.lock().unwrap();
            if st.shutdown
                || st.queued.contains(&id)
                || st.in_flight.contains(&id)
                || st.queue.len() >= st.cap
            {
                drop(st);
                self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            st.queue.push_back(id);
            st.queued.insert(id);
            drop(st);
            self.prefetch.cvar.notify_all();
        }
    }

    /// Background half of a prefetch: load `id` into a frame without
    /// touching the demand-path counters. The frame stays pinned and its
    /// contents exclusively latched for the duration of the device read,
    /// so LRU cannot evict it mid-read and a racing demand fetch blocks on
    /// the latch rather than observing stale bytes.
    fn prefetch_read(&self, id: PageId) {
        let shard_idx = (id.0 & self.shard_mask) as usize;
        let shard = &self.shards[shard_idx];
        let mut inner = shard.inner.lock();
        if inner.map.contains_key(&id) {
            // Demand-fetched since the hint was queued.
            self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let frame_idx = match self.acquire_frame(shard, &mut inner) {
            Ok(idx) => idx,
            Err(_) => {
                // Every frame pinned (or the write-back failed): give up
                // on the hint rather than stall the worker.
                self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        inner.map.insert(id, frame_idx);
        inner.tick += 1;
        let tick = inner.tick;
        let f = &mut inner.frames[frame_idx];
        f.page = id;
        f.dirty = false;
        f.pins = 1;
        f.tick = tick;
        f.prefetched = true;
        let data = Arc::clone(&f.data);
        // Latch the contents before the mapping becomes visible (the shard
        // lock is still held): a concurrent demand fetch will find the
        // mapping, pin, and then block on this latch until the read below
        // has filled the frame.
        let mut buf = RwLock::write_arc(&data);
        drop(inner);
        let read = self.disk.read_page(id, &mut buf);
        if read.is_err() {
            buf.fill(0);
        }
        drop(buf);
        let mut inner = shard.inner.lock();
        inner.frames[frame_idx].pins -= 1;
        if read.is_err() {
            // Unreachable for hints derived from live tree nodes; unmap so
            // future fetches fail cleanly instead of serving zeroes.
            if inner.frames[frame_idx].prefetched {
                inner.frames[frame_idx].prefetched = false;
                self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
            }
            inner.map.remove(&id);
            let f = &mut inner.frames[frame_idx];
            f.page = PageId::INVALID;
            f.dirty = false;
            if f.pins == 0 {
                inner.free.push(frame_idx);
            }
            // else: racing demand readers still hold pins; the last unpin
            // reclaims the frame (see `unpin`).
        }
    }

    /// Removes any queued prefetch of `id` and waits out an in-flight one,
    /// so the caller can free or re-allocate the page without a background
    /// read racing the operation.
    fn cancel_prefetch(&self, id: PageId) {
        if !self.prefetch.active.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.prefetch.state.lock().unwrap();
        if st.queued.remove(&id) {
            st.queue.retain(|&p| p != id);
            self.prefetch.dropped.fetch_add(1, Ordering::Relaxed);
        }
        while st.in_flight.contains(&id) {
            st = self.prefetch.cvar.wait(st).unwrap();
        }
    }

    /// Cancels every queued hint (counted `dropped`) and waits for all
    /// in-flight reads to finish.
    fn drain_prefetch(&self) {
        if !self.prefetch.active.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.prefetch.state.lock().unwrap();
        let n = st.queue.len() as u64;
        if n > 0 {
            self.prefetch.dropped.fetch_add(n, Ordering::Relaxed);
            st.queue.clear();
            st.queued.clear();
        }
        while !st.in_flight.is_empty() {
            st = self.prefetch.cvar.wait(st).unwrap();
        }
    }

    /// Waits until the queue is empty and nothing is in flight, without
    /// cancelling anything.
    fn quiesce_prefetch(&self) {
        if !self.prefetch.active.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.prefetch.state.lock().unwrap();
        while !st.queue.is_empty() || !st.in_flight.is_empty() {
            st = self.prefetch.cvar.wait(st).unwrap();
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity())
            .field("shards", &self.shard_count())
            .field("page_size", &self.page_size())
            .field("stats", &self.stats())
            .field("prefetch", &self.prefetch_stats())
            .finish()
    }
}

/// RAII shared-access guard over a cached page. Pins the page for its
/// lifetime; dereferences to the page bytes.
pub struct PageReadGuard<'a> {
    pool: &'a BufferPool,
    shard: usize,
    frame: usize,
    guard: ReadGuardInner,
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageReadGuard<'_> {
    fn drop(&mut self) {
        self.pool.core.unpin(self.shard, self.frame);
    }
}

/// RAII exclusive-access guard over a cached page. Pins the page and marks
/// it dirty for its lifetime; dereferences to the mutable page bytes.
pub struct PageWriteGuard<'a> {
    pool: &'a BufferPool,
    shard: usize,
    frame: usize,
    guard: WriteGuardInner,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        self.pool.core.unpin(self.shard, self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatencyDisk, LatencyProfile, MemDisk};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new(128)), frames)
    }

    fn sharded(frames: usize, shards: usize) -> BufferPool {
        BufferPool::with_shards(Box::new(MemDisk::new(128)), frames, shards)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let p = pool(4);
        let (id, mut w) = p.new_page().unwrap();
        w[0] = 42;
        w[127] = 7;
        drop(w);
        let r = p.fetch(id).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[127], 7);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(4);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.reset_stats();
        let _ = p.fetch(id).unwrap(); // hit: still cached
        let s = p.stats();
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.physical_reads, 0);
        assert_eq!(s.hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_of_untouched_pool_is_zero() {
        // No fetches must report 0.0 (not NaN) — stats formatters divide
        // by logical_reads and print the rate unconditionally.
        let p = pool(4);
        let s = p.stats();
        assert_eq!(s.logical_reads, 0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);

        // Same after a reset wipes earlier activity.
        let (id, w) = p.new_page().unwrap();
        drop(w);
        let _ = p.fetch(id).unwrap();
        p.reset_stats();
        assert_eq!(p.stats().hit_rate(), 0.0);
    }

    #[test]
    fn eviction_is_lru_and_writes_back_dirty_pages() {
        let p = pool(2);
        let (a, mut wa) = p.new_page().unwrap();
        wa[0] = 1;
        drop(wa);
        let (b, mut wb) = p.new_page().unwrap();
        wb[0] = 2;
        drop(wb);
        // Touch `a` so `b` is the LRU victim.
        drop(p.fetch(a).unwrap());
        let (c, mut wc) = p.new_page().unwrap(); // evicts b
        wc[0] = 3;
        drop(wc);
        let s = p.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.writebacks, 1); // b was dirty
                                     // All three pages still readable with correct contents.
        assert_eq!(p.fetch(a).unwrap()[0], 1);
        assert_eq!(p.fetch(b).unwrap()[0], 2);
        assert_eq!(p.fetch(c).unwrap()[0], 3);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let (a, wa) = p.new_page().unwrap();
        let (_b, wb) = p.new_page().unwrap();
        // Both frames pinned: a third page cannot enter the pool.
        let err = p.new_page();
        assert!(matches!(err, Err(StorageError::PoolExhausted { .. })));
        drop(wa);
        drop(wb);
        // Now there is room again.
        assert!(p.new_page().is_ok());
        let _ = a;
    }

    #[test]
    fn multiple_read_pins_share_a_frame() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        let r1 = p.fetch(id).unwrap();
        let r2 = p.fetch(id).unwrap();
        assert_eq!(&r1[..], &r2[..]);
        drop(r1);
        drop(r2);
    }

    #[test]
    fn delete_page_removes_from_cache_and_disk() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.delete_page(id).unwrap();
        assert!(p.fetch(id).is_err());
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn delete_of_pinned_page_fails() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        assert!(p.delete_page(id).is_err());
        drop(w);
        assert!(p.delete_page(id).is_ok());
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let p = pool(4);
        let (id, mut w) = p.new_page().unwrap();
        w[5] = 99;
        drop(w);
        p.flush_all().unwrap();
        // Drop from cache and re-read from the device.
        p.clear_cache().unwrap();
        let r = p.fetch(id).unwrap();
        assert_eq!(r[5], 99);
        let s = p.stats();
        assert!(s.physical_reads >= 1);
    }

    #[test]
    fn clear_cache_makes_fetches_cold() {
        let p = pool(8);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        p.reset_stats();
        drop(p.fetch(id).unwrap());
        assert_eq!(p.stats().physical_reads, 1);
        drop(p.fetch(id).unwrap());
        assert_eq!(p.stats().physical_reads, 1); // second is a hit
    }

    #[test]
    fn fetch_invalid_page_fails_cleanly() {
        let p = pool(2);
        assert!(p.fetch(PageId::INVALID).is_err());
        assert!(p.fetch(PageId(12345)).is_err());
        // Failed miss must not leak the frame.
        for _ in 0..10 {
            assert!(p.fetch(PageId(12345)).is_err());
        }
        assert!(p.new_page().is_ok());
    }

    #[test]
    fn stats_reset_clears_everything() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        drop(p.fetch(id).unwrap());
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
        assert_eq!(p.disk_stats(), DiskStats::default());
        assert_eq!(p.prefetch_stats(), PrefetchStats::default());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::sync::Arc;
        let p = Arc::new(BufferPool::new(Box::new(MemDisk::new(128)), 16));
        let mut ids = Vec::new();
        for i in 0..8u8 {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i;
            ids.push(id);
            drop(w);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let id = ids[(t + round) % ids.len()];
                        let g = p.fetch(id).unwrap();
                        let v = g[0];
                        assert!((v as usize) < 8);
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    // -- sharded pools -----------------------------------------------------

    #[test]
    fn shard_count_is_pow2_and_clamped() {
        assert_eq!(sharded(64, 1).shard_count(), 1);
        assert_eq!(sharded(64, 3).shard_count(), 4);
        assert_eq!(sharded(64, 8).shard_count(), 8);
        // More shards than frames: clamped so each shard has ≥ 1 frame.
        assert_eq!(sharded(2, 8).shard_count(), 2);
        assert_eq!(sharded(3, 8).shard_count(), 2);
    }

    #[test]
    fn sharded_capacity_is_preserved() {
        for (frames, shards) in [(64, 4), (65, 4), (7, 8), (100, 16)] {
            let p = sharded(frames, shards);
            assert_eq!(p.capacity(), frames, "frames={frames} shards={shards}");
        }
    }

    #[test]
    fn shards_for_threads_rounds_up() {
        assert_eq!(BufferPool::shards_for_threads(0), 1);
        assert_eq!(BufferPool::shards_for_threads(1), 1);
        assert_eq!(BufferPool::shards_for_threads(3), 4);
        assert_eq!(BufferPool::shards_for_threads(8), 8);
    }

    #[test]
    fn sharded_roundtrip_and_aggregate_stats() {
        let p = sharded(32, 4);
        let mut ids = Vec::new();
        for i in 0..16u8 {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i;
            ids.push(id);
            drop(w);
        }
        p.reset_stats();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.fetch(id).unwrap()[0], i as u8);
        }
        let total = p.stats();
        assert_eq!(total.logical_reads, 16);
        assert_eq!(total.hits, 16);
        // Per-shard counters sum to the aggregate.
        let per_shard = p.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let mut summed = PoolStats::default();
        for s in per_shard {
            summed.accumulate(s);
        }
        assert_eq!(summed, total);
    }

    #[test]
    fn logical_reads_identical_across_shard_counts() {
        // The same fetch sequence produces the same aggregate
        // logical_reads for every shard count — the paper's "pages
        // accessed" cannot depend on the latch layout.
        let mut per_config = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let p = sharded(16, shards);
            let mut ids = Vec::new();
            for _ in 0..12 {
                let (id, w) = p.new_page().unwrap();
                ids.push(id);
                drop(w);
            }
            p.reset_stats();
            for round in 0..5 {
                for &id in ids.iter().skip(round % 3) {
                    drop(p.fetch(id).unwrap());
                }
            }
            per_config.push(p.stats().logical_reads);
        }
        assert!(
            per_config.windows(2).all(|w| w[0] == w[1]),
            "{per_config:?}"
        );
    }

    #[test]
    fn sharded_flush_clear_and_delete() {
        let p = sharded(16, 4);
        let mut ids = Vec::new();
        for i in 0..8u8 {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i + 1;
            ids.push(id);
            drop(w);
        }
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        p.reset_stats();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.fetch(id).unwrap()[0], i as u8 + 1);
        }
        assert_eq!(p.stats().physical_reads, 8); // all cold
        p.delete_page(ids[0]).unwrap();
        assert!(p.fetch(ids[0]).is_err());
    }

    #[test]
    fn sharded_concurrent_fetches() {
        use std::sync::Arc;
        let p = Arc::new(sharded(64, 8));
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i;
            ids.push(id);
            drop(w);
        }
        std::thread::scope(|scope| {
            for t in 0..8 {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                scope.spawn(move || {
                    for round in 0..500 {
                        let i = (t * 7 + round) % ids.len();
                        let g = p.fetch(ids[i]).unwrap();
                        assert_eq!(g[0] as usize, i);
                    }
                });
            }
        });
        assert_eq!(p.stats().logical_reads, 8 * 500);
    }

    // -- prefetch ----------------------------------------------------------

    /// A pool with a running prefetcher over a zero-latency MemDisk.
    #[cfg(feature = "prefetch")]
    fn prefetch_pool(frames: usize) -> BufferPool {
        let mut p = BufferPool::new(Box::new(MemDisk::new(128)), frames);
        p.start_prefetch(2, 16);
        p
    }

    /// Creates `n` flushed pages (payload = index + 1) and clears the
    /// cache, so every page is cold on the device.
    fn cold_pages(p: &BufferPool, n: u8) -> Vec<PageId> {
        let mut ids = Vec::new();
        for i in 0..n {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i + 1;
            ids.push(id);
            drop(w);
        }
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        p.reset_stats();
        ids
    }

    #[test]
    fn prefetch_without_prefetcher_is_a_silent_noop() {
        let p = pool(4);
        let ids = cold_pages(&p, 2);
        p.prefetch(ids[0]);
        p.prefetch_quiesce();
        assert_eq!(p.prefetch_stats(), PrefetchStats::default());
        assert_eq!(p.stats(), PoolStats::default());
        // The page is still cold.
        drop(p.fetch(ids[0]).unwrap());
        assert_eq!(p.stats().physical_reads, 1);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn prefetch_loads_page_without_touching_demand_counters() {
        let p = prefetch_pool(8);
        let ids = cold_pages(&p, 3);
        p.prefetch(ids[0]);
        p.prefetch_quiesce();
        // The background read moved no demand counter.
        assert_eq!(p.stats(), PoolStats::default());
        let pf = p.prefetch_stats();
        assert_eq!(pf.issued, 1);
        assert_eq!(pf.useful + pf.wasted + pf.dropped, 0); // unclassified: resident
                                                           // Demand fetch now hits and classifies the frame useful.
        let g = p.fetch(ids[0]).unwrap();
        assert_eq!(g[0], 1);
        drop(g);
        let s = p.stats();
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.physical_reads, 0);
        let pf = p.prefetch_stats();
        assert_eq!(pf.useful, 1);
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued);
        assert_eq!(pf.useful_rate(), 1.0);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn prefetch_dedups_resident_queued_and_invalid() {
        let p = prefetch_pool(8);
        let ids = cold_pages(&p, 2);
        // Resident page: dropped.
        drop(p.fetch(ids[0]).unwrap());
        p.prefetch(ids[0]);
        // Invalid id: dropped.
        p.prefetch(PageId::INVALID);
        p.prefetch_quiesce();
        let pf = p.prefetch_stats();
        assert_eq!(pf.issued, 2);
        assert_eq!(pf.dropped, 2);
        assert_eq!(pf.useful, 0);
        assert_eq!(pf.wasted, 0);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn clear_cache_classifies_unclaimed_prefetches_as_wasted() {
        let p = prefetch_pool(8);
        let ids = cold_pages(&p, 4);
        for &id in &ids {
            p.prefetch(id);
        }
        p.prefetch_quiesce();
        p.clear_cache().unwrap();
        let pf = p.prefetch_stats();
        assert_eq!(pf.issued, 4);
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued);
        // Nothing demand-fetched them, so none were useful.
        assert_eq!(pf.useful, 0);
        assert!(pf.wasted > 0);
        // Demand counters never moved.
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn eviction_of_prefetched_frame_counts_wasted() {
        // 2 frames: prefetch two pages, then demand-fetch two others so
        // the prefetched frames get evicted untouched.
        let p = prefetch_pool(2);
        let ids = cold_pages(&p, 4);
        p.prefetch(ids[0]);
        p.prefetch(ids[1]);
        p.prefetch_quiesce();
        drop(p.fetch(ids[2]).unwrap());
        drop(p.fetch(ids[3]).unwrap());
        p.prefetch_quiesce();
        p.clear_cache().unwrap();
        let pf = p.prefetch_stats();
        assert_eq!(pf.issued, 2);
        assert_eq!(pf.useful, 0);
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued);
        // The demand fetches were honest cold misses.
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 2);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn queue_overflow_drops_hints() {
        // One worker, tiny queue, slow device: most hints must bounce.
        let disk = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(500));
        let mut p = BufferPool::new(Box::new(disk), 64);
        p.start_prefetch(1, 2);
        let ids = cold_pages(&p, 32);
        for &id in &ids {
            p.prefetch(id);
        }
        p.prefetch_quiesce();
        p.clear_cache().unwrap();
        let pf = p.prefetch_stats();
        assert_eq!(pf.issued, 32);
        assert!(pf.dropped > 0, "{pf:?}");
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn delete_while_prefetching_does_not_resurrect_the_page() {
        // Regression test: a freed page must not reappear in a frame via a
        // background read that was queued or in flight when it was freed.
        let disk = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(200));
        let mut p = BufferPool::new(Box::new(disk), 8);
        p.start_prefetch(2, 16);
        for round in 0..20 {
            let ids = cold_pages(&p, 3);
            let victim = ids[round % ids.len()];
            for &id in &ids {
                p.prefetch(id);
            }
            // Delete while hints are queued/in flight.
            p.delete_page(victim).unwrap();
            p.prefetch_quiesce();
            assert!(
                p.fetch(victim).is_err(),
                "freed page served from cache (round {round})"
            );
            // Survivors are intact, and the pool still works end to end.
            for &id in ids.iter().filter(|&&id| id != victim) {
                let g = p.fetch(id).unwrap();
                assert!(g[0] >= 1);
                drop(g);
            }
            for &id in ids.iter().filter(|&&id| id != victim) {
                p.delete_page(id).unwrap();
            }
        }
        p.prefetch_quiesce();
        p.clear_cache().unwrap();
        let pf = p.prefetch_stats();
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued, "{pf:?}");
        assert_eq!(p.live_pages(), 0);
        // Allocation still hands out clean pages afterwards.
        let (_, mut w) = p.new_page().unwrap();
        assert!(w.iter().all(|&b| b == 0));
        w[0] = 1;
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn concurrent_demand_and_prefetch_agree() {
        use std::sync::Arc;
        let disk = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(50));
        let mut p = BufferPool::new(Box::new(disk), 16);
        p.start_prefetch(2, 32);
        let p = Arc::new(p);
        let ids = cold_pages(&p, 12);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                scope.spawn(move || {
                    for round in 0..100 {
                        let i = (t * 5 + round) % ids.len();
                        p.prefetch(ids[(i + 1) % ids.len()]);
                        let g = p.fetch(ids[i]).unwrap();
                        assert_eq!(g[0] as usize, i + 1, "wrong bytes for page {i}");
                    }
                });
            }
        });
        p.prefetch_quiesce();
        p.clear_cache().unwrap();
        let pf = p.prefetch_stats();
        assert_eq!(pf.useful + pf.wasted + pf.dropped, pf.issued, "{pf:?}");
        assert_eq!(p.stats().logical_reads, 4 * 100);
    }

    #[cfg(feature = "prefetch")]
    #[test]
    fn logical_reads_identical_with_and_without_prefetch() {
        // The same fetch sequence, one pool hinting ahead, one not: the
        // paper's page-access counter must not move by a single unit.
        let run = |use_prefetch: bool| -> (u64, PoolStats) {
            let mut p = BufferPool::new(Box::new(MemDisk::new(128)), 4);
            if use_prefetch {
                p.start_prefetch(2, 16);
            }
            let ids = cold_pages(&p, 12);
            for round in 0..6 {
                for (i, &id) in ids.iter().enumerate().skip(round % 2) {
                    if use_prefetch {
                        for &next in ids.iter().skip(i + 1).take(3) {
                            p.prefetch(next);
                        }
                    }
                    drop(p.fetch(id).unwrap());
                }
            }
            p.prefetch_quiesce();
            (p.stats().logical_reads, p.stats())
        };
        let (without, _) = run(false);
        let (with, _) = run(true);
        assert_eq!(without, with);
    }
}
