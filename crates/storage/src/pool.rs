//! A fixed-capacity buffer pool with LRU eviction and pin/unpin semantics.

use crate::wal::Wal;
use crate::{DiskManager, DiskStats, PageId, Result, StorageError};
use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type FrameData = Arc<RwLock<Vec<u8>>>;
type ReadGuardInner = ArcRwLockReadGuard<RawRwLock, Vec<u8>>;
type WriteGuardInner = ArcRwLockWriteGuard<RawRwLock, Vec<u8>>;

/// Access counters maintained by a [`BufferPool`].
///
/// * `logical_reads` is the paper's **"pages accessed"** figure: every page
///   the algorithm touches, whether or not it was cached.
/// * `physical_reads` (misses) is the **disk I/O** figure under a finite
///   buffer, the quantity RKV'95's buffering experiments vary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total page fetches (read or write intent).
    pub logical_reads: u64,
    /// Fetches satisfied from the cache.
    pub hits: u64,
    /// Fetches that had to read from the device.
    pub physical_reads: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to the device on eviction or flush.
    pub writebacks: u64,
}

impl PoolStats {
    /// Cache hit rate in `[0, 1]`.
    ///
    /// An untouched pool (`logical_reads == 0`) reports `0.0`, not NaN:
    /// callers format this directly into reports, and "no fetches" renders
    /// most honestly as a 0% hit rate. The rtree node cache's
    /// `NodeCacheStats::hit_rate` follows the same convention.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

#[derive(Default)]
struct StatCells {
    logical_reads: AtomicU64,
    hits: AtomicU64,
    physical_reads: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

struct Frame {
    page: PageId,
    data: FrameData,
    dirty: bool,
    pins: u32,
    /// Recency stamp for LRU: larger = more recently used.
    tick: u64,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    free: Vec<usize>,
    tick: u64,
}

/// A page cache over a [`DiskManager`].
///
/// * Fixed number of frames, chosen at construction; LRU eviction among
///   unpinned frames.
/// * [`BufferPool::fetch`] / [`BufferPool::fetch_write`] return RAII guards
///   that pin the page (pinned pages are never evicted) and latch its
///   contents for shared or exclusive access.
/// * All methods take `&self`; the pool is internally synchronized and can
///   be shared across threads.
///
/// Callers must not fetch a page while holding a *write* guard on that same
/// page from the same thread (the per-frame latch is not reentrant).
pub struct BufferPool {
    disk: Box<dyn DiskManager>,
    inner: Mutex<Inner>,
    stats: StatCells,
    wal: Option<Wal>,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let page_size = disk.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                page: PageId::INVALID,
                data: Arc::new(RwLock::new(vec![0u8; page_size])),
                dirty: false,
                pins: 0,
                tick: 0,
            })
            .collect();
        Self {
            disk,
            inner: Mutex::new(Inner {
                frames,
                map: HashMap::with_capacity(capacity),
                free: (0..capacity).rev().collect(),
                tick: 0,
            }),
            stats: StatCells::default(),
            wal: None,
        }
    }

    /// Creates a pool whose page write-backs are journaled to `wal`
    /// first, enabling crash-safe checkpointing (see [`Wal`] and
    /// [`BufferPool::checkpoint`]).
    ///
    /// Recovery protocol for the caller on startup: open the device, open
    /// the WAL, call [`Wal::replay`] on the device, then build the pool
    /// with both.
    pub fn with_wal(disk: Box<dyn DiskManager>, capacity: usize, wal: Wal) -> Self {
        let mut pool = Self::new(disk, capacity);
        pool.wal = Some(wal);
        pool
    }

    /// Journals a page image before it is written back to the device
    /// (no-op without a WAL).
    fn log_writeback(&self, page: PageId, image: &[u8]) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.append(page, image)?;
        }
        Ok(())
    }

    /// Crash-consistent checkpoint: journals and writes back every dirty
    /// page, syncs the device, then truncates the journal. After a
    /// successful checkpoint the device alone holds the state of record;
    /// after a crash at any point, [`Wal::replay`] restores it.
    pub fn checkpoint(&self) -> Result<()> {
        self.flush_all()?;
        if let Some(wal) = &self.wal {
            wal.sync()?;
            // Device is durably up to date (flush_all syncs); the journal
            // has served its purpose.
            wal.reset()?;
        }
        Ok(())
    }

    /// The page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// The number of frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Pool access counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            logical_reads: self.stats.logical_reads.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            physical_reads: self.stats.physical_reads.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            writebacks: self.stats.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Counters of the underlying device.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Number of live pages on the underlying device.
    pub fn live_pages(&self) -> u64 {
        self.disk.live_pages()
    }

    /// Resets pool and device counters (used between experiment phases).
    pub fn reset_stats(&self) {
        self.stats.logical_reads.store(0, Ordering::Relaxed);
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.physical_reads.store(0, Ordering::Relaxed);
        self.stats.evictions.store(0, Ordering::Relaxed);
        self.stats.writebacks.store(0, Ordering::Relaxed);
        self.disk.reset_stats();
    }

    /// Drops every unpinned clean frame from the cache (writes back dirty
    /// ones first), so the next fetches are cold. Used by experiments that
    /// measure cold-cache I/O.
    pub fn clear_cache(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut idx = 0;
        while idx < inner.frames.len() {
            let (page, dirty, pins) = {
                let f = &inner.frames[idx];
                (f.page, f.dirty, f.pins)
            };
            if page.is_valid() && pins == 0 {
                if dirty {
                    let data = Arc::clone(&inner.frames[idx].data);
                    let buf = data.read();
                    self.log_writeback(page, &buf)?;
                    self.disk.write_page(page, &buf)?;
                    self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                }
                inner.map.remove(&page);
                let f = &mut inner.frames[idx];
                f.page = PageId::INVALID;
                f.dirty = false;
                inner.free.push(idx);
            }
            idx += 1;
        }
        Ok(())
    }

    /// Fetches a page for shared (read) access.
    pub fn fetch(&self, id: PageId) -> Result<PageReadGuard<'_>> {
        let (frame_idx, data) = self.pin_frame(id, false)?;
        let guard = RwLock::read_arc(&data);
        Ok(PageReadGuard {
            pool: self,
            frame: frame_idx,
            guard,
        })
    }

    /// Fetches a page for exclusive (write) access and marks it dirty.
    pub fn fetch_write(&self, id: PageId) -> Result<PageWriteGuard<'_>> {
        let (frame_idx, data) = self.pin_frame(id, true)?;
        let guard = RwLock::write_arc(&data);
        Ok(PageWriteGuard {
            pool: self,
            frame: frame_idx,
            guard,
        })
    }

    /// Allocates a fresh zeroed page on the device and returns it pinned for
    /// writing.
    pub fn new_page(&self) -> Result<(PageId, PageWriteGuard<'_>)> {
        let id = self.disk.allocate()?;
        // The page is zeroed on the device; cache it without a device read.
        let mut inner = self.inner.lock();
        let frame_idx = self.acquire_frame(&mut inner)?;
        inner.map.insert(id, frame_idx);
        inner.tick += 1;
        let tick = inner.tick;
        let f = &mut inner.frames[frame_idx];
        f.page = id;
        f.dirty = true;
        f.pins = 1;
        f.tick = tick;
        let data = Arc::clone(&f.data);
        drop(inner);
        let mut guard = RwLock::write_arc(&data);
        guard.fill(0);
        Ok((
            id,
            PageWriteGuard {
                pool: self,
                frame: frame_idx,
                guard,
            },
        ))
    }

    /// Deletes a page: removes it from the cache and frees it on the device.
    ///
    /// Fails with [`StorageError::PoolExhausted`] if the page is currently
    /// pinned.
    pub fn delete_page(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(&frame_idx) = inner.map.get(&id) {
            if inner.frames[frame_idx].pins > 0 {
                return Err(StorageError::PoolExhausted {
                    frames: inner.frames.len(),
                });
            }
            inner.map.remove(&id);
            let f = &mut inner.frames[frame_idx];
            f.page = PageId::INVALID;
            f.dirty = false;
            inner.free.push(frame_idx);
        }
        drop(inner);
        self.disk.deallocate(id)
    }

    /// Writes all dirty frames back to the device and syncs it.
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        // Collect (page, data) pairs first so the device I/O happens with a
        // consistent view; frames stay resident and become clean.
        let mut to_write = Vec::new();
        for f in &inner.frames {
            if f.page.is_valid() && f.dirty {
                to_write.push((f.page, Arc::clone(&f.data)));
            }
        }
        drop(inner);
        for (page, data) in to_write {
            let buf = data.read();
            self.log_writeback(page, &buf)?;
            self.disk.write_page(page, &buf)?;
            self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = self.inner.lock();
        for f in &mut inner.frames {
            if f.page.is_valid() {
                f.dirty = false;
            }
        }
        drop(inner);
        self.disk.sync()
    }

    // -- internals ---------------------------------------------------------

    /// Pins the frame holding `id`, loading it from the device on a miss.
    /// Returns the frame index and its data cell.
    fn pin_frame(&self, id: PageId, write_intent: bool) -> Result<(usize, FrameData)> {
        if !id.is_valid() {
            return Err(StorageError::InvalidPage(id));
        }
        let mut inner = self.inner.lock();
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&frame_idx) = inner.map.get(&id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let f = &mut inner.frames[frame_idx];
            f.pins += 1;
            f.tick = tick;
            if write_intent {
                f.dirty = true;
            }
            return Ok((frame_idx, Arc::clone(&f.data)));
        }

        // Miss: find a frame, read from device.
        self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        let frame_idx = self.acquire_frame(&mut inner)?;
        {
            let data = Arc::clone(&inner.frames[frame_idx].data);
            let mut buf = data.write();
            if let Err(e) = self.disk.read_page(id, &mut buf) {
                // Leave the frame on the free list on failure.
                inner.free.push(frame_idx);
                return Err(e);
            }
        }
        inner.map.insert(id, frame_idx);
        let f = &mut inner.frames[frame_idx];
        f.page = id;
        f.dirty = write_intent;
        f.pins = 1;
        f.tick = tick;
        Ok((frame_idx, Arc::clone(&f.data)))
    }

    /// Gets a free frame, evicting the least-recently-used unpinned frame if
    /// necessary. The returned frame is unmapped and unpinned.
    fn acquire_frame(&self, inner: &mut Inner) -> Result<usize> {
        if let Some(idx) = inner.free.pop() {
            return Ok(idx);
        }
        // LRU scan over unpinned frames.
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0 && f.page.is_valid())
            .min_by_key(|(_, f)| f.tick)
            .map(|(i, _)| i)
            .ok_or(StorageError::PoolExhausted {
                frames: inner.frames.len(),
            })?;
        let (page, dirty) = {
            let f = &inner.frames[victim];
            (f.page, f.dirty)
        };
        if dirty {
            let data = Arc::clone(&inner.frames[victim].data);
            let buf = data.read();
            self.log_writeback(page, &buf)?;
            self.disk.write_page(page, &buf)?;
            self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        inner.map.remove(&page);
        let f = &mut inner.frames[victim];
        f.page = PageId::INVALID;
        f.dirty = false;
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(victim)
    }

    fn unpin(&self, frame_idx: usize) {
        let mut inner = self.inner.lock();
        let f = &mut inner.frames[frame_idx];
        debug_assert!(f.pins > 0, "unpin of unpinned frame");
        f.pins -= 1;
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity())
            .field("page_size", &self.page_size())
            .field("stats", &self.stats())
            .finish()
    }
}

/// RAII shared-access guard over a cached page. Pins the page for its
/// lifetime; dereferences to the page bytes.
pub struct PageReadGuard<'a> {
    pool: &'a BufferPool,
    frame: usize,
    guard: ReadGuardInner,
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageReadGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

/// RAII exclusive-access guard over a cached page. Pins the page and marks
/// it dirty for its lifetime; dereferences to the mutable page bytes.
pub struct PageWriteGuard<'a> {
    pool: &'a BufferPool,
    frame: usize,
    guard: WriteGuardInner,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new(128)), frames)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let p = pool(4);
        let (id, mut w) = p.new_page().unwrap();
        w[0] = 42;
        w[127] = 7;
        drop(w);
        let r = p.fetch(id).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[127], 7);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(4);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.reset_stats();
        let _ = p.fetch(id).unwrap(); // hit: still cached
        let s = p.stats();
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.physical_reads, 0);
        assert_eq!(s.hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_of_untouched_pool_is_zero() {
        // No fetches must report 0.0 (not NaN) — stats formatters divide
        // by logical_reads and print the rate unconditionally.
        let p = pool(4);
        let s = p.stats();
        assert_eq!(s.logical_reads, 0);
        assert_eq!(s.hit_rate(), 0.0);

        // Same after a reset wipes earlier activity.
        let (id, w) = p.new_page().unwrap();
        drop(w);
        let _ = p.fetch(id).unwrap();
        p.reset_stats();
        assert_eq!(p.stats().hit_rate(), 0.0);
    }

    #[test]
    fn eviction_is_lru_and_writes_back_dirty_pages() {
        let p = pool(2);
        let (a, mut wa) = p.new_page().unwrap();
        wa[0] = 1;
        drop(wa);
        let (b, mut wb) = p.new_page().unwrap();
        wb[0] = 2;
        drop(wb);
        // Touch `a` so `b` is the LRU victim.
        drop(p.fetch(a).unwrap());
        let (c, mut wc) = p.new_page().unwrap(); // evicts b
        wc[0] = 3;
        drop(wc);
        let s = p.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.writebacks, 1); // b was dirty
                                     // All three pages still readable with correct contents.
        assert_eq!(p.fetch(a).unwrap()[0], 1);
        assert_eq!(p.fetch(b).unwrap()[0], 2);
        assert_eq!(p.fetch(c).unwrap()[0], 3);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let (a, wa) = p.new_page().unwrap();
        let (_b, wb) = p.new_page().unwrap();
        // Both frames pinned: a third page cannot enter the pool.
        let err = p.new_page();
        assert!(matches!(err, Err(StorageError::PoolExhausted { .. })));
        drop(wa);
        drop(wb);
        // Now there is room again.
        assert!(p.new_page().is_ok());
        let _ = a;
    }

    #[test]
    fn multiple_read_pins_share_a_frame() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        let r1 = p.fetch(id).unwrap();
        let r2 = p.fetch(id).unwrap();
        assert_eq!(&r1[..], &r2[..]);
        drop(r1);
        drop(r2);
    }

    #[test]
    fn delete_page_removes_from_cache_and_disk() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.delete_page(id).unwrap();
        assert!(p.fetch(id).is_err());
        assert_eq!(p.live_pages(), 0);
    }

    #[test]
    fn delete_of_pinned_page_fails() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        assert!(p.delete_page(id).is_err());
        drop(w);
        assert!(p.delete_page(id).is_ok());
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let p = pool(4);
        let (id, mut w) = p.new_page().unwrap();
        w[5] = 99;
        drop(w);
        p.flush_all().unwrap();
        // Drop from cache and re-read from the device.
        p.clear_cache().unwrap();
        let r = p.fetch(id).unwrap();
        assert_eq!(r[5], 99);
        let s = p.stats();
        assert!(s.physical_reads >= 1);
    }

    #[test]
    fn clear_cache_makes_fetches_cold() {
        let p = pool(8);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        p.reset_stats();
        drop(p.fetch(id).unwrap());
        assert_eq!(p.stats().physical_reads, 1);
        drop(p.fetch(id).unwrap());
        assert_eq!(p.stats().physical_reads, 1); // second is a hit
    }

    #[test]
    fn fetch_invalid_page_fails_cleanly() {
        let p = pool(2);
        assert!(p.fetch(PageId::INVALID).is_err());
        assert!(p.fetch(PageId(12345)).is_err());
        // Failed miss must not leak the frame.
        for _ in 0..10 {
            assert!(p.fetch(PageId(12345)).is_err());
        }
        assert!(p.new_page().is_ok());
    }

    #[test]
    fn stats_reset_clears_everything() {
        let p = pool(2);
        let (id, w) = p.new_page().unwrap();
        drop(w);
        drop(p.fetch(id).unwrap());
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
        assert_eq!(p.disk_stats(), DiskStats::default());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::sync::Arc;
        let p = Arc::new(BufferPool::new(Box::new(MemDisk::new(128)), 16));
        let mut ids = Vec::new();
        for i in 0..8u8 {
            let (id, mut w) = p.new_page().unwrap();
            w[0] = i;
            ids.push(id);
            drop(w);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                let ids = ids.clone();
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let id = ids[(t + round) % ids.len()];
                        let g = p.fetch(id).unwrap();
                        let v = g[0];
                        assert!((v as usize) < 8);
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
