//! Paged storage substrate for the `nnq` spatial index.
//!
//! RKV'95 evaluates its nearest-neighbor algorithm by counting **disk page
//! accesses**, the canonical cost metric of 1990s database research. To
//! reproduce those measurements faithfully this crate provides a small but
//! complete paged storage stack:
//!
//! * [`DiskManager`] — the raw page device. Two implementations:
//!   [`MemDisk`] (an in-memory simulated disk with physical-I/O counters and
//!   an optional capacity limit for disk-full fault injection) and
//!   [`FileDisk`] (a real file, positioned reads/writes).
//! * [`BufferPool`] — a fixed-capacity page cache with LRU eviction,
//!   pin/unpin semantics, dirty tracking, and detailed [`PoolStats`]. The
//!   paper's "pages accessed" is [`PoolStats::logical_reads`]; with a finite
//!   pool, cold-cache behaviour is visible in
//!   [`PoolStats::physical_reads`].
//!
//! Pages are fixed-size byte arrays; interpreting their contents is the
//! caller's job (the `nnq-rtree` crate stores one R-tree node per page).
//!
//! # Example
//!
//! ```
//! use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
//!
//! let pool = BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 64);
//! let (id, mut guard) = pool.new_page().unwrap();
//! guard[0..4].copy_from_slice(&1234u32.to_le_bytes());
//! drop(guard);
//!
//! let guard = pool.fetch(id).unwrap();
//! assert_eq!(u32::from_le_bytes(guard[0..4].try_into().unwrap()), 1234);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod error;
mod heap;
mod pool;
mod wal;

pub use disk::{
    DiskManager, DiskStats, FileDisk, LatencyDisk, LatencyProfile, MemDisk, TornDisk, TornMode,
};
pub use error::{Result, StorageError};
pub use heap::{HeapFile, HeapRecordId};
pub use pool::{BufferPool, PageReadGuard, PageWriteGuard, PoolStats, PrefetchStats};
pub use wal::Wal;

/// The default page size in bytes (4 KiB, the classical database page).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a disk page.
///
/// Page ids are dense `u64`s handed out by [`DiskManager::allocate`];
/// [`PageId::INVALID`] is a sentinel that never refers to a real page (used
/// e.g. for "no child" slots in serialized tree nodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel value that never names a real page.
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Whether this id is a real page id (not the sentinel).
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "page#{}", self.0)
        } else {
            write!(f, "page#invalid")
        }
    }
}
