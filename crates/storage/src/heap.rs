//! A slotted-page heap file for variable-length records.
//!
//! The R-tree indexes `(MBR, record id)` pairs; the *objects themselves*
//! (segment geometry, POI attributes, …) live somewhere. In the paper's
//! systems that somewhere is a heap file on the same device, so a
//! filter-refine query pays real page accesses for refinement too. This
//! module provides that substrate: classic slotted pages with a
//! slot-directory growing from the page tail, records from the head.
//!
//! Record ids are `(page, slot)` packed into a `u64` (`HeapRecordId`),
//! stable across other records' deletion (slots are tombstoned, not
//! compacted across the directory).
//!
//! ```text
//! page layout:
//!   0..4    magic "NNQH"
//!   4..6    slot count
//!   6..8    free-space offset (start of unused gap)
//!   ...     record bytes, growing up
//!   tail    slot directory entries (offset u16, len u16), growing down
//! ```

use crate::{BufferPool, PageId, Result, StorageError};
use parking_lot::Mutex;
use std::sync::Arc;

const HEAP_MAGIC: u32 = 0x4E4E_5148;
const HEADER: usize = 8;
const SLOT: usize = 4;
/// Tombstone marker in a slot's length field.
const DEAD: u16 = u16::MAX;

/// Identifier of a heap record: page number in the high 48 bits, slot in
/// the low 16.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HeapRecordId(pub u64);

impl HeapRecordId {
    fn new(page: PageId, slot: u16) -> Self {
        Self((page.0 << 16) | u64::from(slot))
    }

    /// The page holding this record.
    pub fn page(self) -> PageId {
        PageId(self.0 >> 16)
    }

    /// The slot within the page.
    pub fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

/// A heap file of variable-length records over a buffer pool.
///
/// Appends fill the most recent page until a record no longer fits, then
/// allocate a new page (no free-space map — the classic "append heap"
/// that index experiments use).
pub struct HeapFile {
    pool: Arc<BufferPool>,
    state: Mutex<State>,
}

struct State {
    /// Page currently accepting appends ([`PageId::INVALID`] before the
    /// first insert).
    current: PageId,
    /// All pages of the file, in order (for scans and reopen).
    pages: Vec<PageId>,
}

impl HeapFile {
    /// Creates an empty heap file on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Self {
            pool,
            state: Mutex::new(State {
                current: PageId::INVALID,
                pages: Vec::new(),
            }),
        }
    }

    /// Reopens a heap file from its page list (callers persist the list —
    /// e.g. in their own metadata — or rebuild it from a directory).
    pub fn open(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Result<Self> {
        for &page in &pages {
            let guard = pool.fetch(page)?;
            let magic = u32::from_le_bytes(guard[0..4].try_into().expect("4 bytes"));
            if magic != HEAP_MAGIC {
                return Err(StorageError::Corrupt {
                    page,
                    reason: format!("bad heap magic {magic:#010x}"),
                });
            }
        }
        Ok(Self {
            pool,
            state: Mutex::new(State {
                current: pages.last().copied().unwrap_or(PageId::INVALID),
                pages,
            }),
        })
    }

    /// The pages of this file, in append order (persist these to reopen).
    pub fn pages(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// The largest record this file's page size can store.
    pub fn max_record_len(&self) -> usize {
        self.pool.page_size() - HEADER - SLOT
    }

    /// Appends a record, returning its stable id.
    pub fn insert(&self, record: &[u8]) -> Result<HeapRecordId> {
        if record.len() > self.max_record_len() {
            return Err(StorageError::Corrupt {
                page: PageId::INVALID,
                reason: format!(
                    "record of {} bytes exceeds page capacity {}",
                    record.len(),
                    self.max_record_len()
                ),
            });
        }
        let mut state = self.state.lock();
        // Try the current page.
        if state.current.is_valid() {
            if let Some(id) = self.try_insert_into(state.current, record)? {
                return Ok(id);
            }
        }
        // Start a new page.
        let (page, mut guard) = self.pool.new_page()?;
        guard[0..4].copy_from_slice(&HEAP_MAGIC.to_le_bytes());
        guard[4..6].copy_from_slice(&0u16.to_le_bytes());
        guard[6..8].copy_from_slice(&(HEADER as u16).to_le_bytes());
        drop(guard);
        state.current = page;
        state.pages.push(page);
        let id = self
            .try_insert_into(page, record)?
            .expect("fresh page must accept a fitting record");
        Ok(id)
    }

    fn try_insert_into(&self, page: PageId, record: &[u8]) -> Result<Option<HeapRecordId>> {
        let mut guard = self.pool.fetch_write(page)?;
        let slots = u16::from_le_bytes(guard[4..6].try_into().expect("2 bytes")) as usize;
        let free_off = u16::from_le_bytes(guard[6..8].try_into().expect("2 bytes")) as usize;
        let dir_start = guard.len() - (slots + 1) * SLOT;
        if free_off + record.len() + SLOT > guard.len() - slots * SLOT {
            return Ok(None); // does not fit
        }
        // Write the record and its slot entry.
        guard[free_off..free_off + record.len()].copy_from_slice(record);
        let slot_off = dir_start;
        guard[slot_off..slot_off + 2].copy_from_slice(&(free_off as u16).to_le_bytes());
        guard[slot_off + 2..slot_off + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        guard[4..6].copy_from_slice(&((slots + 1) as u16).to_le_bytes());
        guard[6..8].copy_from_slice(&((free_off + record.len()) as u16).to_le_bytes());
        Ok(Some(HeapRecordId::new(page, slots as u16)))
    }

    /// Reads a record into a fresh vector.
    pub fn get(&self, id: HeapRecordId) -> Result<Vec<u8>> {
        let guard = self.pool.fetch(id.page())?;
        let slots = u16::from_le_bytes(guard[4..6].try_into().expect("2 bytes"));
        if id.slot() >= slots {
            return Err(StorageError::Corrupt {
                page: id.page(),
                reason: format!("slot {} out of range ({slots} slots)", id.slot()),
            });
        }
        let slot_off = guard.len() - (id.slot() as usize + 1) * SLOT;
        let off = u16::from_le_bytes(guard[slot_off..slot_off + 2].try_into().expect("2 bytes"));
        let len = u16::from_le_bytes(
            guard[slot_off + 2..slot_off + 4]
                .try_into()
                .expect("2 bytes"),
        );
        if len == DEAD {
            return Err(StorageError::Corrupt {
                page: id.page(),
                reason: format!("slot {} is deleted", id.slot()),
            });
        }
        Ok(guard[off as usize..off as usize + len as usize].to_vec())
    }

    /// Tombstones a record. The space is not reclaimed (append heap).
    pub fn delete(&self, id: HeapRecordId) -> Result<()> {
        let mut guard = self.pool.fetch_write(id.page())?;
        let slots = u16::from_le_bytes(guard[4..6].try_into().expect("2 bytes"));
        if id.slot() >= slots {
            return Err(StorageError::Corrupt {
                page: id.page(),
                reason: format!("slot {} out of range ({slots} slots)", id.slot()),
            });
        }
        let slot_off = guard.len() - (id.slot() as usize + 1) * SLOT;
        let len = u16::from_le_bytes(
            guard[slot_off + 2..slot_off + 4]
                .try_into()
                .expect("2 bytes"),
        );
        if len == DEAD {
            return Err(StorageError::Corrupt {
                page: id.page(),
                reason: format!("slot {} already deleted", id.slot()),
            });
        }
        guard[slot_off + 2..slot_off + 4].copy_from_slice(&DEAD.to_le_bytes());
        Ok(())
    }

    /// Visits every live record in file order.
    pub fn scan(&self, mut f: impl FnMut(HeapRecordId, &[u8])) -> Result<()> {
        let pages = self.pages();
        for page in pages {
            let guard = self.pool.fetch(page)?;
            let slots = u16::from_le_bytes(guard[4..6].try_into().expect("2 bytes"));
            for slot in 0..slots {
                let slot_off = guard.len() - (slot as usize + 1) * SLOT;
                let off =
                    u16::from_le_bytes(guard[slot_off..slot_off + 2].try_into().expect("2 bytes"));
                let len = u16::from_le_bytes(
                    guard[slot_off + 2..slot_off + 4]
                        .try_into()
                        .expect("2 bytes"),
                );
                if len != DEAD {
                    f(
                        HeapRecordId::new(page, slot),
                        &guard[off as usize..off as usize + len as usize],
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(256)), 64));
        HeapFile::create(pool)
    }

    #[test]
    fn insert_get_round_trip() {
        let h = heap();
        let a = h.insert(b"hello").unwrap();
        let b = h.insert(b"world, but longer").unwrap();
        assert_eq!(h.get(a).unwrap(), b"hello");
        assert_eq!(h.get(b).unwrap(), b"world, but longer");
        assert_ne!(a, b);
    }

    #[test]
    fn records_spill_to_new_pages() {
        let h = heap();
        let payload = vec![7u8; 100];
        let ids: Vec<HeapRecordId> = (0..20).map(|_| h.insert(&payload).unwrap()).collect();
        assert!(
            h.pages().len() > 1,
            "100-byte records must overflow 256-byte pages"
        );
        for id in &ids {
            assert_eq!(h.get(*id).unwrap(), payload);
        }
    }

    #[test]
    fn record_ids_pack_page_and_slot() {
        let id = HeapRecordId::new(PageId(42), 7);
        assert_eq!(id.page(), PageId(42));
        assert_eq!(id.slot(), 7);
    }

    #[test]
    fn delete_tombstones_without_disturbing_neighbors() {
        let h = heap();
        let a = h.insert(b"aaa").unwrap();
        let b = h.insert(b"bbb").unwrap();
        let c = h.insert(b"ccc").unwrap();
        h.delete(b).unwrap();
        assert_eq!(h.get(a).unwrap(), b"aaa");
        assert_eq!(h.get(c).unwrap(), b"ccc");
        assert!(h.get(b).is_err());
        assert!(h.delete(b).is_err()); // double delete
                                       // Scan sees only the live ones.
        let mut seen = Vec::new();
        h.scan(|id, bytes| seen.push((id, bytes.to_vec()))).unwrap();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let h = heap();
        let too_big = vec![0u8; 300];
        assert!(h.insert(&too_big).is_err());
        // Exactly max fits.
        let max = vec![1u8; h.max_record_len()];
        let id = h.insert(&max).unwrap();
        assert_eq!(h.get(id).unwrap(), max);
    }

    #[test]
    fn empty_records_are_fine() {
        let h = heap();
        let id = h.insert(b"").unwrap();
        assert_eq!(h.get(id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reopen_from_page_list() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(256)), 64));
        let h = HeapFile::create(Arc::clone(&pool));
        let ids: Vec<HeapRecordId> = (0..30)
            .map(|i| h.insert(format!("record-{i}").as_bytes()).unwrap())
            .collect();
        let pages = h.pages();
        drop(h);
        let h = HeapFile::open(pool, pages).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.get(*id).unwrap(), format!("record-{i}").into_bytes());
        }
        // New inserts continue on the last page.
        let id = h.insert(b"after-reopen").unwrap();
        assert_eq!(h.get(id).unwrap(), b"after-reopen");
    }

    #[test]
    fn open_rejects_non_heap_pages() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(256)), 8));
        let (bogus, guard) = pool.new_page().unwrap();
        drop(guard);
        assert!(HeapFile::open(pool, vec![bogus]).is_err());
    }

    #[test]
    fn invalid_slot_access_is_an_error() {
        let h = heap();
        let id = h.insert(b"x").unwrap();
        let bogus = HeapRecordId::new(id.page(), 99);
        assert!(h.get(bogus).is_err());
        assert!(h.delete(bogus).is_err());
    }
}
