//! Error types for the storage layer.

use crate::PageId;
use std::fmt;

/// Convenience alias for storage-layer results.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by disk managers and the buffer pool.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error (file-backed disks only).
    Io(std::io::Error),
    /// A page id that the disk has never allocated, or that has been
    /// deallocated.
    InvalidPage(PageId),
    /// The disk refused to allocate another page (capacity limit reached).
    DiskFull {
        /// The configured capacity in pages.
        capacity: u64,
    },
    /// Every buffer frame is pinned; nothing can be evicted to make room.
    PoolExhausted {
        /// The pool's frame count.
        frames: usize,
    },
    /// A page's contents failed validation when interpreted by a caller
    /// (surfaced here so higher layers share one error type for I/O paths).
    Corrupt {
        /// The offending page.
        page: PageId,
        /// Human-readable description of what failed to parse.
        reason: String,
    },
    /// A buffer with the wrong length was passed to a raw disk read/write.
    BadPageSize {
        /// The disk's configured page size.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::InvalidPage(p) => write!(f, "invalid page id {p}"),
            StorageError::DiskFull { capacity } => {
                write!(f, "disk full (capacity {capacity} pages)")
            }
            StorageError::PoolExhausted { frames } => {
                write!(f, "buffer pool exhausted: all {frames} frames pinned")
            }
            StorageError::Corrupt { page, reason } => {
                write!(f, "corrupt contents on {page}: {reason}")
            }
            StorageError::BadPageSize { expected, got } => {
                write!(f, "bad page buffer size: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::DiskFull { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        let e = StorageError::InvalidPage(PageId(3));
        assert!(e.to_string().contains("page#3"));
        let e = StorageError::Corrupt {
            page: PageId(1),
            reason: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
