//! Disk managers: the raw page devices underneath the buffer pool.

use crate::{PageId, Result, StorageError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical I/O counters maintained by every disk manager.
///
/// These count *device* operations, i.e. buffer-pool misses and write-backs,
/// not logical page requests (see `PoolStats` for those).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of pages read from the device.
    pub reads: u64,
    /// Number of pages written to the device.
    pub writes: u64,
    /// Number of pages allocated over the device's lifetime.
    pub allocations: u64,
    /// Number of pages deallocated over the device's lifetime.
    pub deallocations: u64,
}

/// A fixed-page-size block device.
///
/// Implementations must be internally synchronized (`&self` methods), so a
/// single device can sit under a shared [`crate::BufferPool`].
pub trait DiskManager: Send + Sync {
    /// The page size in bytes. Constant over the device's lifetime.
    fn page_size(&self) -> usize;

    /// Reads page `id` into `buf` (`buf.len()` must equal
    /// [`DiskManager::page_size`]).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` to page `id` (`buf.len()` must equal the page size).
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> Result<PageId>;

    /// Returns page `id` to the free list. Reading a deallocated page is an
    /// error until it is re-allocated.
    fn deallocate(&self, id: PageId) -> Result<()>;

    /// Number of currently live (allocated, not freed) pages.
    fn live_pages(&self) -> u64;

    /// Physical I/O counters.
    fn stats(&self) -> DiskStats;

    /// Resets the physical I/O counters to zero.
    fn reset_stats(&self);

    /// Flushes device buffers (no-op for in-memory devices).
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Makes page `id` addressable (allocated, zeroed if new), growing the
    /// device if needed. Used by WAL recovery to re-materialize pages that
    /// were allocated after the last durable device state.
    fn ensure_allocated(&self, id: PageId) -> Result<()>;
}

/// Delegation impl so a single device can sit under several pools over its
/// lifetime (e.g. the buffer-size sweep of experiment E5 reopens the same
/// in-memory disk with pools of different capacities).
impl<T: DiskManager + ?Sized> DiskManager for std::sync::Arc<T> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        (**self).read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        (**self).write_page(id, buf)
    }
    fn allocate(&self) -> Result<PageId> {
        (**self).allocate()
    }
    fn deallocate(&self, id: PageId) -> Result<()> {
        (**self).deallocate(id)
    }
    fn live_pages(&self) -> u64 {
        (**self).live_pages()
    }
    fn stats(&self) -> DiskStats {
        (**self).stats()
    }
    fn reset_stats(&self) {
        (**self).reset_stats()
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn ensure_allocated(&self, id: PageId) -> Result<()> {
        (**self).ensure_allocated(id)
    }
}

#[derive(Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    deallocations: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            deallocations: self.deallocations.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.deallocations.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// MemDisk
// ---------------------------------------------------------------------------

struct MemInner {
    /// `None` marks a deallocated slot awaiting reuse.
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<u64>,
}

/// An in-memory simulated disk.
///
/// This is the device used by all experiments: it makes page accesses
/// observable and perfectly reproducible without actual I/O latency. An
/// optional capacity limit supports disk-full fault-injection tests.
pub struct MemDisk {
    page_size: usize,
    capacity: Option<u64>,
    inner: Mutex<MemInner>,
    counters: Counters,
}

impl MemDisk {
    /// Creates an unbounded in-memory disk with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to be useful");
        Self {
            page_size,
            capacity: None,
            inner: Mutex::new(MemInner {
                pages: Vec::new(),
                free: Vec::new(),
            }),
            counters: Counters::default(),
        }
    }

    /// Creates an in-memory disk that refuses to grow beyond
    /// `capacity_pages` live pages ([`StorageError::DiskFull`]).
    pub fn with_capacity(page_size: usize, capacity_pages: u64) -> Self {
        let mut d = Self::new(page_size);
        d.capacity = Some(capacity_pages);
        d
    }

    fn check_buf(&self, len: usize) -> Result<()> {
        if len != self.page_size {
            return Err(StorageError::BadPageSize {
                expected: self.page_size,
                got: len,
            });
        }
        Ok(())
    }
}

impl DiskManager for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.check_buf(buf.len())?;
        let inner = self.inner.lock();
        let slot = inner
            .pages
            .get(id.0 as usize)
            .and_then(|p| p.as_deref())
            .ok_or(StorageError::InvalidPage(id))?;
        buf.copy_from_slice(slot);
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.check_buf(buf.len())?;
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_deref_mut())
            .ok_or(StorageError::InvalidPage(id))?;
        slot.copy_from_slice(buf);
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let live = inner.pages.iter().filter(|p| p.is_some()).count() as u64;
        if let Some(cap) = self.capacity {
            if live >= cap {
                return Err(StorageError::DiskFull { capacity: cap });
            }
        }
        let zeroed = vec![0u8; self.page_size].into_boxed_slice();
        let id = if let Some(slot) = inner.free.pop() {
            inner.pages[slot as usize] = Some(zeroed);
            PageId(slot)
        } else {
            inner.pages.push(Some(zeroed));
            PageId(inner.pages.len() as u64 - 1)
        };
        self.counters.allocations.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    fn deallocate(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::InvalidPage(id))?;
        if slot.is_none() {
            return Err(StorageError::InvalidPage(id));
        }
        *slot = None;
        inner.free.push(id.0);
        self.counters.deallocations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        let inner = self.inner.lock();
        inner.pages.iter().filter(|p| p.is_some()).count() as u64
    }

    fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }

    fn ensure_allocated(&self, id: PageId) -> Result<()> {
        if !id.is_valid() {
            return Err(StorageError::InvalidPage(id));
        }
        let mut inner = self.inner.lock();
        while inner.pages.len() <= id.0 as usize {
            let slot = inner.pages.len() as u64;
            inner.pages.push(None);
            inner.free.push(slot);
        }
        if inner.pages[id.0 as usize].is_none() {
            if let Some(cap) = self.capacity {
                let live = inner.pages.iter().filter(|p| p.is_some()).count() as u64;
                if live >= cap {
                    return Err(StorageError::DiskFull { capacity: cap });
                }
            }
            inner.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            inner.free.retain(|&s| s != id.0);
            self.counters.allocations.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FileDisk
// ---------------------------------------------------------------------------

struct FileInner {
    num_pages: u64,
    free: Vec<u64>,
}

/// A file-backed disk using positioned reads and writes.
///
/// Layout: page `i` occupies bytes `[i * page_size, (i+1) * page_size)`.
/// The free list is kept in memory only; on reopen all pages up to the file
/// length are considered live (higher layers that need persistence of
/// free-space metadata store it in their own meta page).
pub struct FileDisk {
    file: File,
    page_size: usize,
    inner: Mutex<FileInner>,
    counters: Counters,
}

impl FileDisk {
    /// Creates a new file (truncating any existing one) as an empty disk.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        assert!(page_size >= 64, "page size too small to be useful");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            page_size,
            inner: Mutex::new(FileInner {
                num_pages: 0,
                free: Vec::new(),
            }),
            counters: Counters::default(),
        })
    }

    /// Opens an existing disk file. The page count is derived from the file
    /// length, which must be a multiple of `page_size`.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt {
                page: PageId::INVALID,
                reason: format!("file length {len} is not a multiple of page size {page_size}"),
            });
        }
        Ok(Self {
            file,
            page_size,
            inner: Mutex::new(FileInner {
                num_pages: len / page_size as u64,
                free: Vec::new(),
            }),
            counters: Counters::default(),
        })
    }

    fn offset(&self, id: PageId) -> u64 {
        id.0 * self.page_size as u64
    }

    fn check_id(&self, id: PageId) -> Result<()> {
        let inner = self.inner.lock();
        if !id.is_valid() || id.0 >= inner.num_pages || inner.free.contains(&id.0) {
            return Err(StorageError::InvalidPage(id));
        }
        Ok(())
    }
}

impl DiskManager for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check_id(id)?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, self.offset(id))?;
        }
        #[cfg(not(unix))]
        {
            compile_error!("FileDisk currently requires a Unix platform");
        }
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check_id(id)?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, self.offset(id))?;
        }
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = if let Some(slot) = inner.free.pop() {
            // Deliberately do NOT zero a recycled slot on the device: the
            // transaction that freed it may not be WAL-durable yet, and
            // recovery must still find the old bytes if that free is
            // rolled back by a crash. Newly extended pages below are
            // zero-filled by `set_len`; callers (the buffer pool) zero
            // fresh pages in memory themselves, so a recycled slot's
            // stale bytes are never observable through the pool.
            PageId(slot)
        } else {
            let id = PageId(inner.num_pages);
            inner.num_pages += 1;
            self.file.set_len(inner.num_pages * self.page_size as u64)?;
            id
        };
        self.counters.allocations.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    fn deallocate(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if !id.is_valid() || id.0 >= inner.num_pages || inner.free.contains(&id.0) {
            return Err(StorageError::InvalidPage(id));
        }
        inner.free.push(id.0);
        self.counters.deallocations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        let inner = self.inner.lock();
        inner.num_pages - inner.free.len() as u64
    }

    fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn ensure_allocated(&self, id: PageId) -> Result<()> {
        if !id.is_valid() {
            return Err(StorageError::InvalidPage(id));
        }
        let mut inner = self.inner.lock();
        if id.0 >= inner.num_pages {
            inner.num_pages = id.0 + 1;
            self.file.set_len(inner.num_pages * self.page_size as u64)?;
        }
        inner.free.retain(|&s| s != id.0);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LatencyDisk
// ---------------------------------------------------------------------------

/// Latency profile for a [`LatencyDisk`]: per-operation service times plus a
/// discount for sequential reads.
///
/// The discount models the seek-vs-transfer split of a spinning disk (the
/// hardware RKV'95 costs queries against): a read whose page id immediately
/// follows the previous read's id skips the "seek" and pays only
/// `sequential_discount` of the nominal read latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyProfile {
    /// Service time of a random page read.
    pub read: std::time::Duration,
    /// Service time of a page write.
    pub write: std::time::Duration,
    /// Fraction of `read` charged when the read is sequential (previous
    /// read was page `id - 1`). Clamped to `[0, 1]`.
    pub sequential_discount: f64,
}

impl LatencyProfile {
    /// A profile charging `us` microseconds for both reads and writes,
    /// with sequential reads at a quarter of that.
    pub fn symmetric_us(us: u64) -> Self {
        Self {
            read: std::time::Duration::from_micros(us),
            write: std::time::Duration::from_micros(us),
            sequential_discount: 0.25,
        }
    }

    /// Replaces the sequential-read discount factor.
    pub fn with_sequential_discount(mut self, discount: f64) -> Self {
        self.sequential_discount = discount.clamp(0.0, 1.0);
        self
    }
}

/// A [`DiskManager`] decorator that injects configurable service-time
/// latency into reads and writes, so I/O-overlap optimizations are
/// measurable on the otherwise-instant [`MemDisk`].
///
/// Latencies are runtime-adjustable ([`LatencyDisk::set_latency`]): build
/// the index at zero latency, then dial the device up for the query phase.
/// Keep a handle via the `Arc<T>: DiskManager` delegation impl:
///
/// ```
/// use nnq_storage::{BufferPool, DiskManager, LatencyDisk, LatencyProfile, MemDisk, PAGE_SIZE};
/// use std::sync::Arc;
///
/// let disk = Arc::new(LatencyDisk::new(MemDisk::new(PAGE_SIZE), LatencyProfile::symmetric_us(0)));
/// let pool = BufferPool::new(Box::new(Arc::clone(&disk)), 64);
/// // ... build ...
/// disk.set_latency(LatencyProfile::symmetric_us(200));
/// ```
///
/// Timing uses `thread::sleep` for latencies of 20 µs and above (yielding
/// the core, which matters on small hosts) and a spin-wait below that
/// (sleep granularity would swamp the target). Stats, allocation, and page
/// contents delegate unchanged to the inner device.
pub struct LatencyDisk<T: DiskManager> {
    inner: T,
    read_nanos: AtomicU64,
    write_nanos: AtomicU64,
    /// Discount in parts-per-million, stored atomically alongside the
    /// latencies so `set_latency` needs no lock.
    seq_discount_ppm: AtomicU64,
    /// Page id of the most recent read, for the sequential discount.
    last_read: AtomicU64,
    /// Total nanoseconds of latency injected (reads + writes).
    injected_nanos: AtomicU64,
}

impl<T: DiskManager> LatencyDisk<T> {
    /// Wraps `inner`, charging latencies per `profile`.
    pub fn new(inner: T, profile: LatencyProfile) -> Self {
        let d = Self {
            inner,
            read_nanos: AtomicU64::new(0),
            write_nanos: AtomicU64::new(0),
            seq_discount_ppm: AtomicU64::new(0),
            last_read: AtomicU64::new(u64::MAX),
            injected_nanos: AtomicU64::new(0),
        };
        d.set_latency(profile);
        d
    }

    /// Replaces the latency profile (takes effect on the next operation).
    pub fn set_latency(&self, profile: LatencyProfile) {
        self.read_nanos
            .store(profile.read.as_nanos() as u64, Ordering::Relaxed);
        self.write_nanos
            .store(profile.write.as_nanos() as u64, Ordering::Relaxed);
        let ppm = (profile.sequential_discount.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        self.seq_discount_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Total latency injected so far (reads + writes).
    pub fn injected(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.injected_nanos.load(Ordering::Relaxed))
    }

    /// The wrapped device.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn inject(&self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        self.injected_nanos.fetch_add(nanos, Ordering::Relaxed);
        // Sleep yields the core (essential when prefetch workers share a
        // small host with the query thread); spin only when the target is
        // finer than sleep granularity.
        if nanos >= 20_000 {
            std::thread::sleep(std::time::Duration::from_nanos(nanos));
        } else {
            let deadline = std::time::Instant::now() + std::time::Duration::from_nanos(nanos);
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    fn read_cost(&self, id: PageId) -> u64 {
        let nominal = self.read_nanos.load(Ordering::Relaxed);
        let prev = self.last_read.swap(id.0, Ordering::Relaxed);
        if prev != u64::MAX && id.0 == prev.wrapping_add(1) {
            let ppm = self.seq_discount_ppm.load(Ordering::Relaxed);
            nominal.saturating_mul(ppm) / 1_000_000
        } else {
            nominal
        }
    }
}

impl<T: DiskManager> DiskManager for LatencyDisk<T> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.inject(self.read_cost(id));
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.inject(self.write_nanos.load(Ordering::Relaxed));
        self.inner.write_page(id, buf)
    }

    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn deallocate(&self, id: PageId) -> Result<()> {
        self.inner.deallocate(id)
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn ensure_allocated(&self, id: PageId) -> Result<()> {
        self.inner.ensure_allocated(id)
    }
}

// ---------------------------------------------------------------------------
// TornDisk
// ---------------------------------------------------------------------------

/// What a [`TornDisk`] does to device writes once its budget is spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornMode {
    /// Drop the write entirely: the page keeps its previous contents, as
    /// if the write never reached the platter.
    Drop,
    /// Tear the write: only the first half of the buffer lands; the rest
    /// of the page keeps its previous contents (a classic torn page).
    Tear,
}

/// A [`DiskManager`] decorator that silently loses or tears page writes
/// after a configurable number of them — the crash-injection companion to
/// [`LatencyDisk`].
///
/// Arm it with [`TornDisk::arm`]: the next `n` writes pass through, then
/// every later `write_page` fails *silently* (returns `Ok`) in the chosen
/// [`TornMode`]. That models a machine losing power with writes still in
/// the device queue: the writer believes they landed. Reads, allocation,
/// stats, and sync delegate unchanged, so recovery code sees exactly the
/// device a crash would have left behind. Keep a handle via the
/// `Arc<T>: DiskManager` delegation impl, like `LatencyDisk`.
pub struct TornDisk<T: DiskManager> {
    inner: T,
    /// Writes remaining before the failure mode engages; `u64::MAX`
    /// means disarmed (all writes pass through).
    budget: AtomicU64,
    /// 0 = [`TornMode::Drop`], 1 = [`TornMode::Tear`].
    mode: AtomicU64,
    dropped: AtomicU64,
    torn: AtomicU64,
}

impl<T: DiskManager> TornDisk<T> {
    /// Wraps `inner`, initially disarmed (a transparent passthrough).
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            budget: AtomicU64::new(u64::MAX),
            mode: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            torn: AtomicU64::new(0),
        }
    }

    /// Lets the next `after_writes` page writes through, then applies
    /// `mode` to every write after that (until re-armed or disarmed).
    pub fn arm(&self, after_writes: u64, mode: TornMode) {
        self.mode.store(
            match mode {
                TornMode::Drop => 0,
                TornMode::Tear => 1,
            },
            Ordering::Relaxed,
        );
        self.budget.store(after_writes, Ordering::Relaxed);
    }

    /// Returns to transparent passthrough.
    pub fn disarm(&self) {
        self.budget.store(u64::MAX, Ordering::Relaxed);
    }

    /// Number of writes dropped entirely so far.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of writes torn in half so far.
    pub fn torn_writes(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consumes one unit of write budget; `true` means the write still
    /// passes through intact.
    fn consume(&self) -> bool {
        loop {
            let b = self.budget.load(Ordering::Relaxed);
            if b == u64::MAX {
                return true; // disarmed
            }
            if b == 0 {
                return false;
            }
            if self
                .budget
                .compare_exchange(b, b - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

impl<T: DiskManager> DiskManager for TornDisk<T> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        if self.consume() {
            return self.inner.write_page(id, buf);
        }
        match self.mode.load(Ordering::Relaxed) {
            0 => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(()) // silently lost
            }
            _ => {
                // Tear: first half new bytes, second half whatever the
                // device already held (zeros if it held nothing readable).
                let mut torn = vec![0u8; buf.len()];
                let _ = self.inner.read_page(id, &mut torn);
                let half = buf.len() / 2;
                torn[..half].copy_from_slice(&buf[..half]);
                self.torn.fetch_add(1, Ordering::Relaxed);
                self.inner.write_page(id, &torn)
            }
        }
    }

    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn deallocate(&self, id: PageId) -> Result<()> {
        self.inner.deallocate(id)
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn ensure_allocated(&self, id: PageId) -> Result<()> {
        self.inner.ensure_allocated(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let ps = disk.page_size();
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_ne!(a, b);

        let mut buf = vec![0xABu8; ps];
        buf[0] = 1;
        disk.write_page(a, &buf).unwrap();
        let mut out = vec![0u8; ps];
        disk.read_page(a, &mut out).unwrap();
        assert_eq!(buf, out);

        // Fresh pages read back as zeroes.
        disk.read_page(b, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        assert_eq!(disk.live_pages(), 2);
        disk.deallocate(a).unwrap();
        assert_eq!(disk.live_pages(), 1);
        assert!(disk.read_page(a, &mut out).is_err());

        // Reallocation reuses the slot. The recycled page's contents are
        // unspecified (FileDisk keeps the stale bytes for crash safety;
        // MemDisk hands back zeroes) — callers initialize fresh pages
        // themselves, so only assert it is readable again.
        let c = disk.allocate().unwrap();
        assert_eq!(c, a);
        disk.read_page(c, &mut out).unwrap();
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new(256));
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nnq-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.db");
        roundtrip(&FileDisk::create(&path, 256).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memdisk_counts_io() {
        let d = MemDisk::new(128);
        let id = d.allocate().unwrap();
        let buf = vec![0u8; 128];
        let mut out = vec![0u8; 128];
        d.write_page(id, &buf).unwrap();
        d.write_page(id, &buf).unwrap();
        d.read_page(id, &mut out).unwrap();
        let s = d.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn memdisk_capacity_limit() {
        let d = MemDisk::with_capacity(128, 2);
        let a = d.allocate().unwrap();
        let _b = d.allocate().unwrap();
        assert!(matches!(
            d.allocate(),
            Err(StorageError::DiskFull { capacity: 2 })
        ));
        // Freeing makes room again.
        d.deallocate(a).unwrap();
        assert!(d.allocate().is_ok());
    }

    #[test]
    fn bad_buffer_size_is_rejected() {
        let d = MemDisk::new(128);
        let id = d.allocate().unwrap();
        let mut small = vec![0u8; 64];
        assert!(matches!(
            d.read_page(id, &mut small),
            Err(StorageError::BadPageSize {
                expected: 128,
                got: 64
            })
        ));
        assert!(d.write_page(id, &small).is_err());
    }

    #[test]
    fn invalid_page_access_is_rejected() {
        let d = MemDisk::new(128);
        let mut buf = vec![0u8; 128];
        assert!(d.read_page(PageId(0), &mut buf).is_err());
        assert!(d.write_page(PageId(7), &buf).is_err());
        assert!(d.deallocate(PageId(7)).is_err());
        let id = d.allocate().unwrap();
        d.deallocate(id).unwrap();
        // Double free is an error.
        assert!(d.deallocate(id).is_err());
    }

    #[test]
    fn filedisk_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("nnq-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.db");
        let payload = {
            let d = FileDisk::create(&path, 256).unwrap();
            let id = d.allocate().unwrap();
            assert_eq!(id, PageId(0));
            let buf: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
            d.write_page(id, &buf).unwrap();
            d.sync().unwrap();
            buf
        };
        let d = FileDisk::open(&path, 256).unwrap();
        assert_eq!(d.live_pages(), 1);
        let mut out = vec![0u8; 256];
        d.read_page(PageId(0), &mut out).unwrap();
        assert_eq!(out, payload);
        std::fs::remove_file(&path).ok();
    }

    // -- LatencyDisk -------------------------------------------------------

    #[test]
    fn latency_disk_delegates_contents_and_stats() {
        let d = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(0));
        roundtrip(&d);
        // Counters come from the inner device, unchanged.
        assert_eq!(d.stats(), d.inner().stats());
        assert!(d.stats().reads >= 1);
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }

    #[test]
    fn latency_disk_injects_read_and_write_latency() {
        let d = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(100));
        let a = d.allocate().unwrap();
        let buf = vec![0u8; 128];
        let mut out = vec![0u8; 128];
        d.write_page(a, &buf).unwrap();
        d.read_page(a, &mut out).unwrap();
        d.read_page(a, &mut out).unwrap(); // same id again: random, full price
                                           // 1 write + 2 non-sequential reads at 100 µs nominal each.
        assert_eq!(d.injected(), std::time::Duration::from_micros(300));
    }

    #[test]
    fn latency_disk_discounts_sequential_reads() {
        let profile = LatencyProfile::symmetric_us(100).with_sequential_discount(0.25);
        let d = LatencyDisk::new(MemDisk::new(128), profile);
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_eq!(b.0, a.0 + 1);
        let mut out = vec![0u8; 128];
        d.read_page(a, &mut out).unwrap(); // random: 100 µs
        d.read_page(b, &mut out).unwrap(); // sequential: 25 µs
        d.read_page(a, &mut out).unwrap(); // backward jump: 100 µs
        assert_eq!(d.injected(), std::time::Duration::from_micros(225));
    }

    #[test]
    fn latency_disk_profile_is_runtime_adjustable() {
        let d = LatencyDisk::new(MemDisk::new(128), LatencyProfile::symmetric_us(500));
        let a = d.allocate().unwrap();
        d.set_latency(LatencyProfile::symmetric_us(0));
        let mut out = vec![0u8; 128];
        d.read_page(a, &mut out).unwrap();
        d.write_page(a, &out).unwrap();
        assert_eq!(d.injected(), std::time::Duration::ZERO);
    }

    // -- TornDisk ----------------------------------------------------------

    #[test]
    fn torn_disk_is_transparent_until_armed() {
        let d = TornDisk::new(MemDisk::new(64));
        let a = d.allocate().unwrap();
        d.write_page(a, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        d.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64]);
        assert_eq!(d.dropped_writes() + d.torn_writes(), 0);
    }

    #[test]
    fn torn_disk_drops_writes_after_budget() {
        let d = TornDisk::new(MemDisk::new(64));
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        d.arm(1, TornMode::Drop);
        d.write_page(a, &[1u8; 64]).unwrap(); // within budget: lands
        d.write_page(b, &[2u8; 64]).unwrap(); // silently lost
        let mut buf = [0u8; 64];
        d.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 64]);
        d.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64], "dropped write must not land");
        assert_eq!(d.dropped_writes(), 1);
        // Disarming restores the passthrough.
        d.disarm();
        d.write_page(b, &[3u8; 64]).unwrap();
        d.read_page(b, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
    }

    #[test]
    fn torn_disk_tears_writes_in_half() {
        let d = TornDisk::new(MemDisk::new(64));
        let a = d.allocate().unwrap();
        d.write_page(a, &[0xAAu8; 64]).unwrap();
        d.arm(0, TornMode::Tear);
        d.write_page(a, &[0xBBu8; 64]).unwrap();
        let mut buf = [0u8; 64];
        d.read_page(a, &mut buf).unwrap();
        assert_eq!(&buf[..32], &[0xBBu8; 32], "first half is the new write");
        assert_eq!(&buf[32..], &[0xAAu8; 32], "second half is the old page");
        assert_eq!(d.torn_writes(), 1);
    }

    #[test]
    fn filedisk_open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("nnq-disk3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.db");
        std::fs::write(&path, vec![0u8; 300]).unwrap();
        assert!(matches!(
            FileDisk::open(&path, 256),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
