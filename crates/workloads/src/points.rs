//! Point-data generators.

use nnq_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distributions::sample_normal;

/// `n` points distributed uniformly at random over `bounds`.
pub fn uniform_points(n: usize, bounds: &Rect<2>, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(bounds.lo()[0]..=bounds.hi()[0]),
                rng.random_range(bounds.lo()[1]..=bounds.hi()[1]),
            ])
        })
        .collect()
}

/// `n` points in `clusters` Gaussian clusters whose centers are uniform
/// over `bounds` and whose standard deviation is `sigma` (same unit as the
/// bounds). Points are clamped to the bounds, so mass piles up slightly at
/// the borders for large `sigma` — as it does with coastline-clipped
/// geographic data.
pub fn gaussian_clusters(
    n: usize,
    clusters: usize,
    sigma: f64,
    bounds: &Rect<2>,
    seed: u64,
) -> Vec<Point<2>> {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = draw_centers(&mut rng, clusters, bounds);
    (0..n)
        .map(|_| {
            let c = centers[rng.random_range(0..clusters)];
            let x = (c[0] + sigma * sample_normal(&mut rng)).clamp(bounds.lo()[0], bounds.hi()[0]);
            let y = (c[1] + sigma * sample_normal(&mut rng)).clamp(bounds.lo()[1], bounds.hi()[1]);
            Point::new([x, y])
        })
        .collect()
}

/// The cluster centers [`gaussian_clusters`] draws for `(clusters,
/// bounds, seed)` — the same RNG stream prefix, so query generators (e.g.
/// `zipf_cluster_queries`) can target exactly the clusters a generated
/// dataset actually has.
pub fn cluster_centers(clusters: usize, bounds: &Rect<2>, seed: u64) -> Vec<Point<2>> {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    draw_centers(&mut rng, clusters, bounds)
}

fn draw_centers(rng: &mut StdRng, clusters: usize, bounds: &Rect<2>) -> Vec<Point<2>> {
    (0..clusters)
        .map(|_| {
            Point::new([
                rng.random_range(bounds.lo()[0]..=bounds.hi()[0]),
                rng.random_range(bounds.lo()[1]..=bounds.hi()[1]),
            ])
        })
        .collect()
}

/// Minimal distribution sampling built on `rand`'s uniform source (keeps
/// the dependency surface to the crates allowed by DESIGN.md §6).
pub(crate) mod rand_distributions {
    use rand::Rng;

    /// Standard normal variate via Box–Muller.
    pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_bounds;

    #[test]
    fn uniform_points_stay_in_bounds_and_are_deterministic() {
        let b = default_bounds();
        let a = uniform_points(500, &b, 42);
        let c = uniform_points(500, &b, 42);
        assert_eq!(a, c);
        assert!(a.iter().all(|p| b.contains_point(p)));
        // Different seeds differ.
        assert_ne!(a, uniform_points(500, &b, 43));
    }

    #[test]
    fn uniform_points_cover_the_area() {
        let b = default_bounds();
        let pts = uniform_points(4000, &b, 1);
        // Each quadrant should hold roughly a quarter of the mass.
        let mid = b.center();
        let q1 = pts
            .iter()
            .filter(|p| p[0] < mid[0] && p[1] < mid[1])
            .count();
        assert!(
            (800..1200).contains(&q1),
            "quadrant has {q1} of 4000 points"
        );
    }

    #[test]
    fn clusters_are_clustered() {
        let b = default_bounds();
        let pts = gaussian_clusters(2000, 5, 800.0, &b, 7);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|p| b.contains_point(p)));
        // Mean nearest-cluster spread: points should concentrate, i.e. the
        // bounding box of a random 100-point sample is much smaller than
        // the world for at least some samples. Cheap proxy: average
        // pairwise distance of consecutive points is far below the uniform
        // expectation (~52k for a 100k square).
        let avg: f64 =
            pts.windows(2).map(|w| w[0].dist(&w[1])).sum::<f64>() / (pts.len() - 1) as f64;
        assert!(avg < 45_000.0, "avg consecutive distance {avg}");
    }

    #[test]
    fn cluster_centers_match_gaussian_clusters() {
        let b = default_bounds();
        let centers = cluster_centers(5, &b, 7);
        assert_eq!(centers.len(), 5);
        assert_eq!(centers, cluster_centers(5, &b, 7));
        // With a tiny sigma every generated point sits essentially on one
        // of the recovered centers — proving both share the RNG prefix.
        // The nearest-center scan is a plain indexed loop over `dist_sq`:
        // the previous `.map(dist).fold(INFINITY, f64::min)` chain
        // miscompiled under `-C target-cpu=native` on an AVX-512 host
        // (release only), reporting points ~0.7 units from a center as
        // farther than 10.
        let pts = gaussian_clusters(500, 5, 1.0, &b, 7);
        for p in &pts {
            let mut nearest_sq = f64::INFINITY;
            for c in &centers {
                let d = c.dist_sq(p);
                if d < nearest_sq {
                    nearest_sq = d;
                }
            }
            assert!(
                nearest_sq < 100.0,
                "point {p:?} far from every center {centers:?}"
            );
        }
    }

    #[test]
    fn normal_sampler_has_sane_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    use rand::SeedableRng;
    use rand_distributions::sample_normal;
}
