//! Query-point generators.

use crate::points::rand_distributions::sample_normal;
use nnq_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` query points uniform over `bounds` — the paper's query model for
/// evenly distributed workloads.
pub fn uniform_queries(n: usize, bounds: &Rect<2>, seed: u64) -> Vec<Point<2>> {
    crate::uniform_points(n, bounds, seed ^ 0x5155_4552)
}

/// `n` query points drawn near the data itself: each query picks a random
/// anchor from `anchors` and perturbs it with Gaussian noise of standard
/// deviation `jitter`. This models "user standing on the road network"
/// queries, where query density follows data density.
pub fn data_queries(
    n: usize,
    anchors: &[Point<2>],
    jitter: f64,
    bounds: &Rect<2>,
    seed: u64,
) -> Vec<Point<2>> {
    assert!(!anchors.is_empty(), "need at least one anchor point");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4441_5441);
    (0..n)
        .map(|_| {
            let a = anchors[rng.random_range(0..anchors.len())];
            Point::new([
                (a[0] + jitter * sample_normal(&mut rng)).clamp(bounds.lo()[0], bounds.hi()[0]),
                (a[1] + jitter * sample_normal(&mut rng)).clamp(bounds.lo()[1], bounds.hi()[1]),
            ])
        })
        .collect()
}

/// `n` query points zipfian-clustered over `centers`: cluster *i* (by the
/// given order) is chosen with probability ∝ `1 / (i+1)^theta`, then the
/// query is the center perturbed by Gaussian noise of standard deviation
/// `sigma`, clamped to `bounds`. With `theta = 0` this degenerates to
/// uniform cluster choice; `theta ≈ 1` is the classic web-style skew where
/// the first few clusters absorb most of the traffic — the "popular
/// neighborhood" query model the adaptive-tuning bench shifts into.
///
/// Deterministic for a fixed `(centers, n, theta, sigma, seed)`.
///
/// # Panics
/// Panics if `centers` is empty or `theta` is negative/non-finite.
pub fn zipf_cluster_queries(
    n: usize,
    centers: &[Point<2>],
    theta: f64,
    sigma: f64,
    bounds: &Rect<2>,
    seed: u64,
) -> Vec<Point<2>> {
    assert!(!centers.is_empty(), "need at least one cluster center");
    assert!(
        theta.is_finite() && theta >= 0.0,
        "theta must be finite and nonnegative"
    );
    // Cumulative zipf mass over the ranks; one inversion per query.
    let weights: Vec<f64> = (0..centers.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a49_5046); // "ZIPF"
    (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            let rank = cumulative
                .partition_point(|&c| c < u)
                .min(centers.len() - 1);
            let c = centers[rank];
            Point::new([
                (c[0] + sigma * sample_normal(&mut rng)).clamp(bounds.lo()[0], bounds.hi()[0]),
                (c[1] + sigma * sample_normal(&mut rng)).clamp(bounds.lo()[1], bounds.hi()[1]),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_bounds;

    #[test]
    fn uniform_queries_differ_from_uniform_points_with_same_seed() {
        let b = default_bounds();
        assert_ne!(uniform_queries(10, &b, 3), crate::uniform_points(10, &b, 3));
    }

    #[test]
    fn data_queries_stay_near_anchors() {
        let b = default_bounds();
        let anchors = vec![Point::new([50_000.0, 50_000.0])];
        let qs = data_queries(200, &anchors, 100.0, &b, 9);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert!(q.dist(&anchors[0]) < 1_000.0, "query strayed: {q:?}");
            assert!(b.contains_point(q));
        }
    }

    #[test]
    fn zipf_queries_are_deterministic_and_skewed() {
        let b = default_bounds();
        let centers: Vec<Point<2>> = (0..8)
            .map(|i| Point::new([10_000.0 * (i + 1) as f64, 50_000.0]))
            .collect();
        // Determinism pinned for a fixed seed, including exact values.
        let a = zipf_cluster_queries(500, &centers, 1.0, 200.0, &b, 42);
        let c = zipf_cluster_queries(500, &centers, 1.0, 200.0, &b, 42);
        assert_eq!(a, c);
        assert_ne!(a, zipf_cluster_queries(500, &centers, 1.0, 200.0, &b, 43));
        assert_eq!(a.len(), 500);
        for q in &a {
            assert!(b.contains_point(q));
        }
        // Skew: the rank-0 cluster absorbs the plurality of queries and
        // strictly more than the last rank.
        let near = |center: &Point<2>, qs: &[Point<2>]| {
            qs.iter().filter(|q| q.dist(center) < 2_000.0).count()
        };
        let first = near(&centers[0], &a);
        let last = near(&centers[7], &a);
        assert!(first > 100, "rank-0 cluster too cold: {first}/500");
        assert!(first > 2 * last, "skew missing: first={first} last={last}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform_over_clusters() {
        let b = default_bounds();
        let centers = vec![
            Point::new([10_000.0, 10_000.0]),
            Point::new([90_000.0, 90_000.0]),
        ];
        let qs = zipf_cluster_queries(400, &centers, 0.0, 10.0, &b, 7);
        let near_first = qs.iter().filter(|q| q.dist(&centers[0]) < 1_000.0).count();
        assert!(
            near_first > 140 && near_first < 260,
            "split {near_first}/400"
        );
    }

    #[test]
    fn data_queries_use_all_anchors() {
        let b = default_bounds();
        let anchors = vec![
            Point::new([10_000.0, 10_000.0]),
            Point::new([90_000.0, 90_000.0]),
        ];
        let qs = data_queries(100, &anchors, 10.0, &b, 11);
        let near_first = qs.iter().filter(|q| q.dist(&anchors[0]) < 1_000.0).count();
        assert!(near_first > 20 && near_first < 80, "split {near_first}/100");
    }
}
