//! Query-point generators.

use crate::points::rand_distributions::sample_normal;
use nnq_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` query points uniform over `bounds` — the paper's query model for
/// evenly distributed workloads.
pub fn uniform_queries(n: usize, bounds: &Rect<2>, seed: u64) -> Vec<Point<2>> {
    crate::uniform_points(n, bounds, seed ^ 0x5155_4552)
}

/// `n` query points drawn near the data itself: each query picks a random
/// anchor from `anchors` and perturbs it with Gaussian noise of standard
/// deviation `jitter`. This models "user standing on the road network"
/// queries, where query density follows data density.
pub fn data_queries(
    n: usize,
    anchors: &[Point<2>],
    jitter: f64,
    bounds: &Rect<2>,
    seed: u64,
) -> Vec<Point<2>> {
    assert!(!anchors.is_empty(), "need at least one anchor point");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4441_5441);
    (0..n)
        .map(|_| {
            let a = anchors[rng.random_range(0..anchors.len())];
            Point::new([
                (a[0] + jitter * sample_normal(&mut rng)).clamp(bounds.lo()[0], bounds.hi()[0]),
                (a[1] + jitter * sample_normal(&mut rng)).clamp(bounds.lo()[1], bounds.hi()[1]),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_bounds;

    #[test]
    fn uniform_queries_differ_from_uniform_points_with_same_seed() {
        let b = default_bounds();
        assert_ne!(uniform_queries(10, &b, 3), crate::uniform_points(10, &b, 3));
    }

    #[test]
    fn data_queries_stay_near_anchors() {
        let b = default_bounds();
        let anchors = vec![Point::new([50_000.0, 50_000.0])];
        let qs = data_queries(200, &anchors, 100.0, &b, 9);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert!(q.dist(&anchors[0]) < 1_000.0, "query strayed: {q:?}");
            assert!(b.contains_point(q));
        }
    }

    #[test]
    fn data_queries_use_all_anchors() {
        let b = default_bounds();
        let anchors = vec![
            Point::new([10_000.0, 10_000.0]),
            Point::new([90_000.0, 90_000.0]),
        ];
        let qs = data_queries(100, &anchors, 10.0, &b, 11);
        let near_first = qs.iter().filter(|q| q.dist(&anchors[0]) < 1_000.0).count();
        assert!(near_first > 20 && near_first < 80, "split {near_first}/100");
    }
}
