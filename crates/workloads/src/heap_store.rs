//! Disk-resident segment storage.
//!
//! In the paper's systems the indexed objects live in a heap file on the
//! same device as the index, so the *refinement* step of a filter-refine
//! query costs page accesses too. This module stores segments in an
//! `nnq-storage` [`HeapFile`] (32 bytes each: four little-endian `f64`s)
//! and hands back R-tree items whose [`RecordId`]s *are* the heap record
//! ids — so a query's refiner can fetch exact geometry with one buffered
//! page access:
//!
//! ```
//! use nnq_core::{FnRefiner, NnSearch};
//! use nnq_storage::{BufferPool, HeapRecordId, MemDisk, PAGE_SIZE};
//! use nnq_rtree::{RTree, RTreeConfig, RecordId};
//! use nnq_workloads::{segments_to_heap, read_segment, tiger_like_segments, TigerParams};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1024));
//! let segments = tiger_like_segments(&TigerParams { segments: 500, ..TigerParams::default() });
//! let (heap, items) = segments_to_heap(Arc::clone(&pool), &segments).unwrap();
//!
//! let mut tree = RTree::<2>::create(pool, RTreeConfig::default()).unwrap();
//! for (mbr, rid) in &items { tree.insert(mbr, *rid).unwrap(); }
//!
//! // Refinement now reads geometry from disk pages, not from a slice.
//! let refiner = FnRefiner::new(|rid: RecordId, _mbr: &_, q: &_| {
//!     read_segment(&heap, HeapRecordId(rid.0)).unwrap().dist_sq_to_point(q)
//! });
//! let (nn, _) = NnSearch::new(&tree)
//!     .query_refined(&nnq_geom::Point::new([50_000.0, 50_000.0]), 3, &refiner)
//!     .unwrap();
//! assert_eq!(nn.len(), 3);
//! ```

use nnq_geom::{Point, Rect, Segment};
use nnq_rtree::RecordId;
use nnq_storage::{HeapFile, HeapRecordId, Result, StorageError};
use std::sync::Arc;

/// Serialized size of one segment (four `f64` coordinates).
pub const SEGMENT_BYTES: usize = 32;

/// Encodes a segment as 32 little-endian bytes.
pub fn encode_segment(s: &Segment) -> [u8; SEGMENT_BYTES] {
    let mut out = [0u8; SEGMENT_BYTES];
    out[0..8].copy_from_slice(&s.a[0].to_le_bytes());
    out[8..16].copy_from_slice(&s.a[1].to_le_bytes());
    out[16..24].copy_from_slice(&s.b[0].to_le_bytes());
    out[24..32].copy_from_slice(&s.b[1].to_le_bytes());
    out
}

/// Decodes a segment from its 32-byte form.
pub fn decode_segment(bytes: &[u8]) -> std::result::Result<Segment, String> {
    if bytes.len() != SEGMENT_BYTES {
        return Err(format!(
            "segment record must be 32 bytes, got {}",
            bytes.len()
        ));
    }
    let f = |r: std::ops::Range<usize>| f64::from_le_bytes(bytes[r].try_into().expect("8 bytes"));
    let s = Segment::new(
        Point::new([f(0..8), f(8..16)]),
        Point::new([f(16..24), f(24..32)]),
    );
    if !(s.a.is_finite() && s.b.is_finite()) {
        return Err("segment record has non-finite coordinates".into());
    }
    Ok(s)
}

/// Stores `segments` in a fresh heap file on `pool`, returning the file
/// and R-tree items whose record ids are the heap record ids.
pub fn segments_to_heap(
    pool: Arc<nnq_storage::BufferPool>,
    segments: &[Segment],
) -> Result<(HeapFile, Vec<(Rect<2>, RecordId)>)> {
    let heap = HeapFile::create(pool);
    let mut items = Vec::with_capacity(segments.len());
    for s in segments {
        let id = heap.insert(&encode_segment(s))?;
        items.push((s.mbr(), RecordId(id.0)));
    }
    Ok((heap, items))
}

/// Fetches and decodes one segment from the heap (one buffered page
/// access).
pub fn read_segment(heap: &HeapFile, id: HeapRecordId) -> Result<Segment> {
    let bytes = heap.get(id)?;
    decode_segment(&bytes).map_err(|reason| StorageError::Corrupt {
        page: id.page(),
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tiger_like_segments, TigerParams};
    use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};

    #[test]
    fn encode_decode_round_trip() {
        let s = Segment::new(Point::new([1.5, -2.25]), Point::new([1e9, 1e-9]));
        let bytes = encode_segment(&s);
        assert_eq!(decode_segment(&bytes).unwrap(), s);
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode_segment(&[0u8; 31]).is_err());
        let mut bytes = encode_segment(&Segment::new(
            Point::new([0.0, 0.0]),
            Point::new([1.0, 1.0]),
        ));
        bytes[0..8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_segment(&bytes).is_err());
    }

    #[test]
    fn heap_round_trips_a_road_network() {
        let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 256));
        let segments = tiger_like_segments(&TigerParams {
            segments: 2_000,
            ..TigerParams::default()
        });
        let (heap, items) = segments_to_heap(pool, &segments).unwrap();
        assert_eq!(items.len(), segments.len());
        for (s, (mbr, rid)) in segments.iter().zip(&items) {
            assert_eq!(*mbr, s.mbr());
            let back = read_segment(&heap, HeapRecordId(rid.0)).unwrap();
            assert_eq!(back, *s);
        }
        // ~2000 * 36 bytes / 4 KiB pages: a couple dozen pages.
        let n_pages = heap.pages().len();
        assert!((15..=25).contains(&n_pages), "{n_pages} heap pages");
    }
}
