//! A synthetic TIGER-like road network.
//!
//! RKV'95 uses real TIGER/Line files (road segments of US counties). This
//! generator substitutes a synthetic network that preserves the properties
//! an R-tree experiment is sensitive to:
//!
//! * **spatial clustering** — most segments concentrate in "towns" whose
//!   sizes follow a heavy-tailed distribution, with empty countryside in
//!   between (this is what separates TIGER behaviour from uniform data);
//! * **length skew** — many short local streets, few long arterial
//!   stretches;
//! * **connectivity texture** — local streets form jittered Manhattan
//!   grids; arterials are polylines connecting towns, subdivided into
//!   segments of roughly constant length.
//!
//! The generator is deterministic for a given [`TigerParams`].

use crate::points::rand_distributions::sample_normal;
use nnq_geom::{Point, Rect, Segment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic road network.
#[derive(Clone, Debug)]
pub struct TigerParams {
    /// Approximate number of segments to produce (the output length is
    /// exactly this value; generation over-produces then truncates).
    pub segments: usize,
    /// Number of towns. More towns with the same segment budget means
    /// smaller, more scattered clusters.
    pub towns: usize,
    /// Fraction of the segment budget spent on arterials (0..1).
    pub arterial_fraction: f64,
    /// World rectangle.
    pub bounds: Rect<2>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TigerParams {
    fn default() -> Self {
        Self {
            segments: 50_000,
            towns: 24,
            arterial_fraction: 0.08,
            bounds: crate::default_bounds(),
            seed: 0x71_6E_71,
        }
    }
}

struct Town {
    center: Point<2>,
    /// Street-grid half-extent.
    radius: f64,
    /// Grid pitch (block size).
    pitch: f64,
    /// Share of the local-street budget.
    weight: f64,
}

/// Generates the road network; see the module docs.
pub fn tiger_like_segments(params: &TigerParams) -> Vec<Segment> {
    assert!(params.towns > 0, "need at least one town");
    assert!(
        (0.0..1.0).contains(&params.arterial_fraction),
        "arterial_fraction must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let b = &params.bounds;
    let world = (b.extent(0).min(b.extent(1))).max(f64::MIN_POSITIVE);

    // Towns: centers uniform, sizes heavy-tailed (Pareto-ish via inverse
    // uniform), pitch a few hundred "meters" scaled to the world.
    let towns: Vec<Town> = (0..params.towns)
        .map(|_| {
            let u: f64 = rng.random_range(0.02..1.0);
            let size_factor = (1.0 / u).min(25.0); // heavy tail, capped
            let radius = world * 0.01 * size_factor.sqrt();
            Town {
                center: Point::new([
                    rng.random_range(b.lo()[0] + radius..b.hi()[0] - radius),
                    rng.random_range(b.lo()[1] + radius..b.hi()[1] - radius),
                ]),
                radius,
                pitch: world * 0.001 * rng.random_range(0.8..1.6),
                weight: size_factor,
            }
        })
        .collect();
    let total_weight: f64 = towns.iter().map(|t| t.weight).sum();

    let arterial_budget = ((params.segments as f64) * params.arterial_fraction).round() as usize;
    let local_budget = params.segments.saturating_sub(arterial_budget);

    let mut segments = Vec::with_capacity(params.segments + 64);

    // Arterials: polylines between random town pairs; segment length about
    // 1% of the world with perpendicular jitter.
    let arterial_step = world * 0.01;
    while segments.len() < arterial_budget && towns.len() >= 2 {
        let i = rng.random_range(0..towns.len());
        let mut j = rng.random_range(0..towns.len());
        if i == j {
            j = (j + 1) % towns.len();
        }
        let from = towns[i].center;
        let to = towns[j].center;
        let dist = from.dist(&to);
        let steps = ((dist / arterial_step).ceil() as usize).max(1);
        let mut prev = from;
        for s in 1..=steps {
            let t = s as f64 / steps as f64;
            let mut next = from.lerp(&to, t);
            if s != steps {
                // Perpendicular jitter makes arterials gently wind.
                let dx = to[0] - from[0];
                let dy = to[1] - from[1];
                let len = (dx * dx + dy * dy).sqrt().max(f64::MIN_POSITIVE);
                let off = sample_normal(&mut rng) * arterial_step * 0.15;
                next = Point::new([next[0] - dy / len * off, next[1] + dx / len * off]);
            }
            next = clamp_point(&next, b);
            segments.push(Segment::new(prev, next));
            prev = next;
            if segments.len() >= arterial_budget {
                break;
            }
        }
    }

    // Local streets: jittered Manhattan grid blocks around each town
    // center, denser near the center (Gaussian radial falloff).
    for town in &towns {
        let share = ((local_budget as f64) * town.weight / total_weight).round() as usize;
        for _ in 0..share {
            // Block anchor: Gaussian around the center, clipped to radius.
            let ax = town.center[0] + sample_normal(&mut rng) * town.radius * 0.5;
            let ay = town.center[1] + sample_normal(&mut rng) * town.radius * 0.5;
            // Snap to the street grid, then jitter a little.
            let gx = (ax / town.pitch).round() * town.pitch;
            let gy = (ay / town.pitch).round() * town.pitch;
            let jitter = town.pitch * 0.05;
            let x0 = gx + rng.random_range(-jitter..jitter);
            let y0 = gy + rng.random_range(-jitter..jitter);
            // One block edge, horizontal or vertical.
            let len = town.pitch * rng.random_range(0.7..1.0);
            let (x1, y1) = if rng.random_bool(0.5) {
                (x0 + len, y0)
            } else {
                (x0, y0 + len)
            };
            let a = clamp_point(&Point::new([x0, y0]), b);
            let c = clamp_point(&Point::new([x1, y1]), b);
            segments.push(Segment::new(a, c));
        }
    }

    // Over/under-production from rounding: trim or top up with extra local
    // streets in the largest town.
    segments.truncate(params.segments);
    let biggest = towns
        .iter()
        .max_by(|a, b| a.weight.total_cmp(&b.weight))
        .expect("at least one town");
    while segments.len() < params.segments {
        let ax = biggest.center[0] + sample_normal(&mut rng) * biggest.radius * 0.5;
        let ay = biggest.center[1] + sample_normal(&mut rng) * biggest.radius * 0.5;
        let a = clamp_point(&Point::new([ax, ay]), b);
        let c = clamp_point(&Point::new([ax + biggest.pitch, ay]), b);
        segments.push(Segment::new(a, c));
    }
    segments
}

fn clamp_point(p: &Point<2>, b: &Rect<2>) -> Point<2> {
    Point::new([
        p[0].clamp(b.lo()[0], b.hi()[0]),
        p[1].clamp(b.lo()[1], b.hi()[1]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exactly_the_requested_count() {
        for n in [100usize, 1000, 12_345] {
            let params = TigerParams {
                segments: n,
                ..TigerParams::default()
            };
            assert_eq!(tiger_like_segments(&params).len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TigerParams {
            segments: 2000,
            ..TigerParams::default()
        };
        assert_eq!(tiger_like_segments(&p), tiger_like_segments(&p));
        let p2 = TigerParams { seed: 1, ..p };
        assert_ne!(tiger_like_segments(&p), tiger_like_segments(&p2));
    }

    #[test]
    fn segments_stay_in_bounds() {
        let p = TigerParams {
            segments: 5000,
            ..TigerParams::default()
        };
        let b = p.bounds;
        for s in tiger_like_segments(&p) {
            assert!(b.contains_point(&s.a), "{:?}", s.a);
            assert!(b.contains_point(&s.b), "{:?}", s.b);
        }
    }

    #[test]
    fn length_distribution_is_skewed() {
        let p = TigerParams {
            segments: 20_000,
            ..TigerParams::default()
        };
        let mut lengths: Vec<f64> = tiger_like_segments(&p)
            .iter()
            .map(Segment::length)
            .collect();
        lengths.sort_by(f64::total_cmp);
        let median = lengths[lengths.len() / 2];
        let p99 = lengths[lengths.len() * 99 / 100];
        // Roads: the 99th-percentile segment is much longer than the
        // median local street.
        assert!(
            p99 > 3.0 * median,
            "p99 {p99} vs median {median} — no length skew"
        );
    }

    #[test]
    fn network_is_spatially_clustered() {
        // Compare the occupancy of a coarse grid: a clustered network
        // leaves many cells empty; uniform data would fill nearly all.
        let p = TigerParams {
            segments: 20_000,
            ..TigerParams::default()
        };
        let segs = tiger_like_segments(&p);
        let b = p.bounds;
        let n_cells = 32usize;
        let mut occupied = vec![false; n_cells * n_cells];
        for s in &segs {
            let m = s.midpoint();
            let cx = (((m[0] - b.lo()[0]) / b.extent(0)) * n_cells as f64) as usize;
            let cy = (((m[1] - b.lo()[1]) / b.extent(1)) * n_cells as f64) as usize;
            occupied[cx.min(n_cells - 1) * n_cells + cy.min(n_cells - 1)] = true;
        }
        let filled = occupied.iter().filter(|&&o| o).count();
        assert!(
            filled < n_cells * n_cells * 7 / 10,
            "{filled}/{} cells occupied — not clustered",
            n_cells * n_cells
        );
        // ...but the network is not degenerate either.
        assert!(filled > 30, "only {filled} cells occupied");
    }

    #[test]
    fn arterial_fraction_zero_means_local_only() {
        let p = TigerParams {
            segments: 3000,
            arterial_fraction: 0.0,
            ..TigerParams::default()
        };
        let segs = tiger_like_segments(&p);
        assert_eq!(segs.len(), 3000);
        // Local streets are short: no segment should approach arterial
        // step length times several.
        let max_len = segs.iter().map(Segment::length).fold(0.0, f64::max);
        assert!(max_len < 1000.0, "max local street length {max_len}");
    }
}
