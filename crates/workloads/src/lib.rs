//! Deterministic workload generators for the `nnq` experiments.
//!
//! RKV'95 evaluates on real TIGER/Line census road files (e.g. the Long
//! Beach, CA segments) plus synthetic data. The real files are not
//! available in this environment, so this crate provides:
//!
//! * [`uniform_points`] — uniform random points (the classical synthetic
//!   workload);
//! * [`gaussian_clusters`] — skewed, clustered points (stresses the index
//!   the way real geography does);
//! * [`tiger_like_segments`] — a synthetic road network with the
//!   statistical properties that matter for R-tree experiments: a town
//!   hierarchy (dense local grids of short segments), arterial roads
//!   (long polylines connecting towns), spatial clustering, and a skewed
//!   segment-length distribution. See `DESIGN.md` §4 for the substitution
//!   rationale;
//! * query-point generators ([`uniform_queries`], [`data_queries`]);
//! * tiny CSV-style persistence for reproducing a dataset outside the
//!   process.
//!
//! Every generator takes an explicit seed and is fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap_store;
mod io;
mod points;
mod queries;
mod tiger;

pub use heap_store::{
    decode_segment, encode_segment, read_segment, segments_to_heap, SEGMENT_BYTES,
};
pub use io::{load_segments_csv, save_segments_csv};
pub use points::{cluster_centers, gaussian_clusters, uniform_points};
pub use queries::{data_queries, uniform_queries, zipf_cluster_queries};
pub use tiger::{tiger_like_segments, TigerParams};

use nnq_geom::{Point, Rect, Segment};
use nnq_rtree::RecordId;

/// Converts points into the `(MBR, record)` items an R-tree indexes,
/// numbering records by position.
pub fn points_to_items(points: &[Point<2>]) -> Vec<(Rect<2>, RecordId)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (Rect::from_point(*p), RecordId(i as u64)))
        .collect()
}

/// Converts segments into `(MBR, record)` items, numbering records by
/// position (the record id indexes back into the segment slice for exact
/// distance refinement).
pub fn segments_to_items(segments: &[Segment]) -> Vec<(Rect<2>, RecordId)> {
    segments
        .iter()
        .enumerate()
        .map(|(i, s)| (s.mbr(), RecordId(i as u64)))
        .collect()
}

/// The square world all default workloads live in: `[0, 100_000]²`
/// ("meters", so a TIGER-like county is 100 km across).
pub fn default_bounds() -> Rect<2> {
    Rect::new(Point::new([0.0, 0.0]), Point::new([100_000.0, 100_000.0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_are_numbered_by_position() {
        let pts = vec![Point::new([1.0, 2.0]), Point::new([3.0, 4.0])];
        let items = points_to_items(&pts);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, RecordId(0));
        assert_eq!(items[1].1, RecordId(1));
        assert!(items[0].0.contains_point(&pts[0]));
    }

    #[test]
    fn segment_items_carry_mbrs() {
        let segs = vec![Segment::new(Point::new([0.0, 0.0]), Point::new([2.0, 1.0]))];
        let items = segments_to_items(&segs);
        assert_eq!(items[0].0, segs[0].mbr());
    }
}
