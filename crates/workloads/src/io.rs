//! Minimal CSV-style persistence so a generated dataset can be inspected
//! or reproduced outside the process.
//!
//! Format: one segment per line, `ax,ay,bx,by`, full `f64` round-trip
//! precision. Lines starting with `#` are comments.

use nnq_geom::{Point, Segment};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Writes segments to `path`, one `ax,ay,bx,by` line each.
pub fn save_segments_csv<P: AsRef<Path>>(path: P, segments: &[Segment]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# nnq segments v1: ax,ay,bx,by")?;
    for s in segments {
        writeln!(w, "{:?},{:?},{:?},{:?}", s.a[0], s.a[1], s.b[0], s.b[1])?;
    }
    w.flush()
}

/// Reads segments written by [`save_segments_csv`].
pub fn load_segments_csv<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<Segment>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let mut next = || -> std::io::Result<f64> {
            parts
                .next()
                .ok_or_else(|| bad_line(lineno, "too few fields"))?
                .trim()
                .parse::<f64>()
                .map_err(|e| bad_line(lineno, &e.to_string()))
        };
        let (ax, ay, bx, by) = (next()?, next()?, next()?, next()?);
        if parts.next().is_some() {
            return Err(bad_line(lineno, "too many fields"));
        }
        out.push(Segment::new(Point::new([ax, ay]), Point::new([bx, by])));
    }
    Ok(out)
}

fn bad_line(lineno: usize, msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("line {}: {msg}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tiger_like_segments, TigerParams};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nnq-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_exact_coordinates() {
        let params = TigerParams {
            segments: 500,
            ..TigerParams::default()
        };
        let segs = tiger_like_segments(&params);
        let path = tmp("roundtrip.csv");
        save_segments_csv(&path, &segs).unwrap();
        let back = load_segments_csv(&path).unwrap();
        assert_eq!(segs, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.5,2.5,3.5,4.5\n").unwrap();
        let segs = load_segments_csv(&path).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].a[0], 1.5);
        assert_eq!(segs[0].b[1], 4.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "1,2,3\n").unwrap();
        let err = load_segments_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::write(&path, "1,2,3,4,5\n").unwrap();
        assert!(load_segments_csv(&path).is_err());
        std::fs::write(&path, "1,2,x,4\n").unwrap();
        assert!(load_segments_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
