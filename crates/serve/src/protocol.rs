//! The `nnq serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a little-endian `u32` payload length followed by that
//! many payload bytes; the first payload byte is the message opcode. All
//! multi-byte integers are little-endian, and distances travel as raw
//! `f64` bits (`to_bits`/`from_bits`), so a response is **byte-identical**
//! across server configurations whenever the underlying query results are
//! bit-identical — the repo-wide accounting contract extends over the
//! wire.
//!
//! Responses carry the request's client-chosen `id`; correlation is by id,
//! not arrival order, because overload rejections are written from the
//! connection's reader thread the moment admission fails, while accepted
//! requests answer later from the batcher. Within the accepted stream,
//! responses preserve admission order.

use std::io::{self, Read, Write};

/// Upper bound on a request frame (bad input must not allocate a page's
/// worth of RAM, let alone gigabytes).
pub const MAX_REQUEST_FRAME: usize = 4 * 1024;

/// Upper bound on a response frame (a radius query can legitimately
/// return the whole dataset; 64 MiB ≈ 4M hits).
pub const MAX_RESPONSE_FRAME: usize = 64 * 1024 * 1024;

/// Fixed bytes of an OK response before the hit rows: opcode + id +
/// logical reads + hit count.
const OK_HEADER_BYTES: usize = 1 + 8 + 8 + 4;

/// Bytes per hit row: record id + distance bits.
const HIT_BYTES: usize = 8 + 8;

/// Most hit rows an OK response can carry within [`MAX_RESPONSE_FRAME`].
pub const MAX_RESULT_HITS: usize = (MAX_RESPONSE_FRAME - OK_HEADER_BYTES) / HIT_BYTES;

/// Largest admissible `k`: a kNN answer with more hits could not be
/// framed, and the executor preallocates its result heap from `k`, so an
/// unbounded `k` is also an unbounded allocation. Enforced by
/// [`Request::validate`] before admission.
pub const MAX_K: u32 = MAX_RESULT_HITS as u32;

const OP_KNN: u8 = 0x01;
const OP_RADIUS: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

const OP_OK: u8 = 0x81;
const OP_REJECTED: u8 = 0x82;
const OP_REJECTED_SHUTDOWN: u8 = 0x83;
const OP_ERROR: u8 = 0x84;
const OP_PONG: u8 = 0x85;
const OP_BYE: u8 = 0x86;

/// A client→server message. Queries are 2-D (the CLI's index format);
/// `id` is chosen by the client and echoed verbatim in the response.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// k-nearest-neighbor query.
    Knn {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Query point x.
        x: f64,
        /// Query point y.
        y: f64,
        /// Neighbors requested.
        k: u32,
    },
    /// Distance-range query (linear radius).
    Radius {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Query point x.
        x: f64,
        /// Query point y.
        y: f64,
        /// Inclusive distance cutoff; must be finite and nonnegative.
        radius: f64,
    },
    /// Liveness probe; answered immediately with [`Response::Pong`].
    Ping {
        /// Client-chosen correlation id.
        id: u64,
    },
    /// Graceful shutdown: the server stops admitting, drains every
    /// in-flight batch (all admitted requests still get responses),
    /// quiesces its I/O pipelines, and answers [`Response::Bye`].
    Shutdown,
}

/// One result row of an OK response.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// The matched record id.
    pub record: u64,
    /// Its exact squared distance from the query point.
    pub dist_sq: f64,
}

/// A server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The query ran; hits are sorted exactly as the sequential query
    /// sorts them.
    Ok {
        /// Echo of the request id.
        id: u64,
        /// Tree nodes this query read — its logical page accesses, the
        /// paper's cost unit, bit-identical to a sequential run.
        logical_reads: u64,
        /// Result rows.
        hits: Vec<Hit>,
    },
    /// Admission control turned the request away; nothing was queued.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Hint: how long to back off before retrying. Zero when the
        /// server is shutting down (don't retry this endpoint).
        retry_after_us: u32,
        /// `true` when the rejection is the shutdown gate rather than a
        /// full inbox.
        shutting_down: bool,
    },
    /// The request was malformed or failed during execution.
    Error {
        /// Echo of the request id.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// Answer to [`Request::Shutdown`], sent after the drain completes.
    Bye,
}

/// Protocol-level failures (distinct from transport `io::Error`s).
#[derive(Debug)]
pub enum ProtocolError {
    /// Frame length prefix exceeded the allowed maximum.
    FrameTooLarge(usize),
    /// Payload was empty, truncated, or had trailing bytes.
    Malformed(&'static str),
    /// Unknown opcode byte.
    UnknownOpcode(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds maximum"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Writes one frame: length prefix + payload, in a single `write_all`
/// (frames from concurrent writers must not interleave, so the caller
/// serializes on a per-connection lock and we hand the OS one buffer).
/// A payload too large for the `u32` prefix is refused — truncating the
/// length would corrupt the framing for every later message.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > u32::MAX as usize {
        return Err(ProtocolError::FrameTooLarge(payload.len()).into());
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one frame's payload, enforcing `max` on the length prefix.
pub fn read_frame(r: &mut dyn Read, max: usize) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > max {
        return Err(ProtocolError::FrameTooLarge(len).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        let end = self.pos + N;
        if end > self.buf.len() {
            return Err(ProtocolError::Malformed("truncated payload"));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take()?)))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(())
    }
}

impl Request {
    /// Serializes the request payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        match *self {
            Request::Knn { id, x, y, k } => {
                out.push(OP_KNN);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&x.to_bits().to_le_bytes());
                out.extend_from_slice(&y.to_bits().to_le_bytes());
            }
            Request::Radius { id, x, y, radius } => {
                out.push(OP_RADIUS);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&radius.to_bits().to_le_bytes());
                out.extend_from_slice(&x.to_bits().to_le_bytes());
                out.extend_from_slice(&y.to_bits().to_le_bytes());
            }
            Request::Ping { id } => {
                out.push(OP_PING);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Parses a request payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let req = match op {
            OP_KNN => {
                let id = c.u64()?;
                let k = c.u32()?;
                let x = c.f64()?;
                let y = c.f64()?;
                Request::Knn { id, x, y, k }
            }
            OP_RADIUS => {
                let id = c.u64()?;
                let radius = c.f64()?;
                let x = c.f64()?;
                let y = c.f64()?;
                Request::Radius { id, x, y, radius }
            }
            OP_PING => Request::Ping { id: c.u64()? },
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }

    /// The request's correlation id (`None` for [`Request::Shutdown`]).
    pub fn id(&self) -> Option<u64> {
        match *self {
            Request::Knn { id, .. } | Request::Radius { id, .. } | Request::Ping { id } => Some(id),
            Request::Shutdown => None,
        }
    }

    /// Validates query parameters before admission: coordinates must be
    /// finite (the Hilbert schedule orders by them), `k` must be in
    /// `1..=MAX_K` (the executor asserts `k > 0` and preallocates from
    /// `k`, so both bounds must hold before a request reaches it), and a
    /// radius must be finite and nonnegative. Returns the rejection
    /// message on failure.
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            Request::Knn { x, y, k, .. } => {
                if !(x.is_finite() && y.is_finite()) {
                    return Err("non-finite query coordinates");
                }
                if k == 0 {
                    return Err("k must be at least 1");
                }
                if k > MAX_K {
                    return Err("k exceeds the maximum response size");
                }
            }
            Request::Radius { x, y, radius, .. } => {
                if !(x.is_finite() && y.is_finite()) {
                    return Err("non-finite query coordinates");
                }
                if !radius.is_finite() || radius < 0.0 {
                    return Err("radius must be finite and nonnegative");
                }
            }
            Request::Ping { .. } | Request::Shutdown => {}
        }
        Ok(())
    }
}

impl Response {
    /// Serializes the response payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok {
                id,
                logical_reads,
                hits,
            } => {
                let mut out = Vec::with_capacity(21 + 16 * hits.len());
                out.push(OP_OK);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&logical_reads.to_le_bytes());
                out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                for h in hits {
                    out.extend_from_slice(&h.record.to_le_bytes());
                    out.extend_from_slice(&h.dist_sq.to_bits().to_le_bytes());
                }
                out
            }
            Response::Rejected {
                id,
                retry_after_us,
                shutting_down,
            } => {
                let mut out = Vec::with_capacity(13);
                out.push(if *shutting_down {
                    OP_REJECTED_SHUTDOWN
                } else {
                    OP_REJECTED
                });
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&retry_after_us.to_le_bytes());
                out
            }
            Response::Error { id, message } => {
                let msg = message.as_bytes();
                let mut out = Vec::with_capacity(13 + msg.len());
                out.push(OP_ERROR);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                out.extend_from_slice(msg);
                out
            }
            Response::Pong { id } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_PONG);
                out.extend_from_slice(&id.to_le_bytes());
                out
            }
            Response::Bye => vec![OP_BYE],
        }
    }

    /// Parses a response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let resp = match op {
            OP_OK => {
                let id = c.u64()?;
                let logical_reads = c.u64()?;
                let n = c.u32()? as usize;
                // Cheap sanity bound: each hit is 16 payload bytes.
                if n > payload.len() / 16 + 1 {
                    return Err(ProtocolError::Malformed("hit count exceeds payload"));
                }
                let mut hits = Vec::with_capacity(n);
                for _ in 0..n {
                    let record = c.u64()?;
                    let dist_sq = c.f64()?;
                    hits.push(Hit { record, dist_sq });
                }
                Response::Ok {
                    id,
                    logical_reads,
                    hits,
                }
            }
            OP_REJECTED | OP_REJECTED_SHUTDOWN => Response::Rejected {
                id: c.u64()?,
                retry_after_us: c.u32()?,
                shutting_down: op == OP_REJECTED_SHUTDOWN,
            },
            OP_ERROR => {
                let id = c.u64()?;
                let len = c.u32()? as usize;
                if c.pos + len != payload.len() {
                    return Err(ProtocolError::Malformed("error message length"));
                }
                let message = String::from_utf8(payload[c.pos..].to_vec())
                    .map_err(|_| ProtocolError::Malformed("error message not utf-8"))?;
                return Ok(Response::Error { id, message });
            }
            OP_PONG => Response::Pong { id: c.u64()? },
            OP_BYE => Response::Bye,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Knn {
                id: 7,
                x: 1.5,
                y: -2.25,
                k: 10,
            },
            Request::Radius {
                id: u64::MAX,
                x: 0.0,
                y: f64::MIN_POSITIVE,
                radius: 123.456,
            },
            Request::Ping { id: 0 },
            Request::Shutdown,
        ];
        for req in cases {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok {
                id: 3,
                logical_reads: 42,
                hits: vec![
                    Hit {
                        record: 9,
                        dist_sq: 0.0,
                    },
                    Hit {
                        record: 1,
                        dist_sq: 7.25,
                    },
                ],
            },
            Response::Ok {
                id: 4,
                logical_reads: 0,
                hits: vec![],
            },
            Response::Rejected {
                id: 5,
                retry_after_us: 200,
                shutting_down: false,
            },
            Response::Rejected {
                id: 6,
                retry_after_us: 0,
                shutting_down: true,
            },
            Response::Error {
                id: 7,
                message: "radius must be finite and nonnegative".into(),
            },
            Response::Pong { id: 8 },
            Response::Bye,
        ];
        for resp in cases {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn dist_sq_travels_bit_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let resp = Response::Ok {
                id: 1,
                logical_reads: 1,
                hits: vec![Hit {
                    record: 1,
                    dist_sq: v,
                }],
            };
            let Response::Ok { hits, .. } = Response::decode(&resp.encode()).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(hits[0].dist_sq.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Truncated.
        assert!(Request::decode(&[OP_KNN, 1, 2]).is_err());
        // Trailing garbage.
        let mut bytes = Request::Ping { id: 1 }.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x02]).is_err());
        // Empty payload.
        assert!(Request::decode(&[]).is_err());
        // Hit count larger than payload could hold.
        let mut ok = Response::Ok {
            id: 1,
            logical_reads: 1,
            hits: vec![],
        }
        .encode();
        let n = ok.len();
        ok[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&ok).is_err());
    }

    #[test]
    fn frame_io_round_trips_and_enforces_max() {
        let payload = Request::Knn {
            id: 1,
            x: 2.0,
            y: 3.0,
            k: 4,
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), 4 + payload.len());
        let got = read_frame(&mut wire.as_slice(), MAX_REQUEST_FRAME).unwrap();
        assert_eq!(got, payload);
        // A length prefix over the cap is refused before allocation.
        let huge = (MAX_REQUEST_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice(), MAX_REQUEST_FRAME).is_err());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(Request::Knn {
            id: 1,
            x: f64::NAN,
            y: 0.0,
            k: 1
        }
        .validate()
        .is_err());
        assert!(Request::Radius {
            id: 1,
            x: 0.0,
            y: 0.0,
            radius: -1.0
        }
        .validate()
        .is_err());
        assert!(Request::Radius {
            id: 1,
            x: 0.0,
            y: 0.0,
            radius: f64::INFINITY
        }
        .validate()
        .is_err());
        // k = 0 would trip the executor's `k > 0` assertion; k beyond
        // MAX_K could neither be framed nor safely preallocated. Both
        // must be turned into Error responses before admission.
        assert!(Request::Knn {
            id: 1,
            x: 1.0,
            y: 2.0,
            k: 0
        }
        .validate()
        .is_err());
        assert!(Request::Knn {
            id: 1,
            x: 1.0,
            y: 2.0,
            k: MAX_K + 1
        }
        .validate()
        .is_err());
        assert!(Request::Knn {
            id: 1,
            x: 1.0,
            y: 2.0,
            k: MAX_K
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn max_k_saturates_the_response_frame() {
        // MAX_K is exactly the largest hit count whose OK response still
        // fits: one more row would overflow MAX_RESPONSE_FRAME.
        let encoded = |hits: usize| OK_HEADER_BYTES + hits * HIT_BYTES;
        assert!(encoded(MAX_K as usize) <= MAX_RESPONSE_FRAME);
        assert!(encoded(MAX_K as usize + 1) > MAX_RESPONSE_FRAME);
        assert_eq!(MAX_K as usize, MAX_RESULT_HITS);
    }
}
