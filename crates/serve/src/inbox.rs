//! The admission-controlled request inbox and micro-batch trigger.
//!
//! Requests queue into a **bounded** FIFO. Admission never blocks: when
//! the queue is at capacity the caller gets [`Admit::Full`] immediately
//! and answers the client with a fast rejection carrying a retry-after
//! hint — overload surfaces as explicit, bounded-latency pushback instead
//! of an unbounded queue silently converting overload into tail latency.
//!
//! The single batcher thread drains in micro-batches on a
//! **deadline-or-size** trigger: a batch fires as soon as `max` requests
//! are queued, or when the *oldest queued request* has waited `deadline`,
//! whichever comes first. Draining preserves admission order exactly, so
//! responses to admitted requests never reorder.
//!
//! This module is deliberately free of sockets and queries (`Inbox<T>` is
//! generic over the queued item) so the trigger semantics are unit-tested
//! in isolation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of a non-blocking admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Queued; the request will be drained into a batch and answered.
    Admitted,
    /// The inbox is at capacity; nothing was queued. Fast-reject with a
    /// retry-after hint.
    Full,
    /// The inbox is closed (shutdown in progress); nothing was queued.
    Closed,
}

struct State<T> {
    queue: VecDeque<(Instant, T)>,
    closed: bool,
}

/// Bounded multi-producer single-consumer inbox with a deadline-or-size
/// drain trigger. See the module docs.
pub struct Inbox<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    cap: usize,
}

impl<T> Inbox<T> {
    /// Creates an inbox holding at most `cap` queued requests.
    ///
    /// # Panics
    /// Panics if `cap` is zero (an inbox that admits nothing can serve
    /// nothing).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "inbox capacity must be at least 1");
        Self {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Currently queued requests (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: queues `item` stamped with its arrival
    /// time, or reports why it cannot be queued. Never drops silently —
    /// the caller always learns the outcome.
    pub fn try_admit(&self, item: T) -> Admit {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Admit::Closed;
        }
        if s.queue.len() >= self.cap {
            return Admit::Full;
        }
        s.queue.push_back((Instant::now(), item));
        drop(s);
        self.cond.notify_one();
        Admit::Admitted
    }

    /// Closes the inbox: subsequent admissions return [`Admit::Closed`];
    /// already-queued requests remain drainable (the shutdown drain).
    /// Wakes the batcher so a pending deadline wait fires immediately.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    /// Whether [`close`](Inbox::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Blocks until a micro-batch is ready, then drains and returns it in
    /// admission order. Returns `None` when the inbox is closed and
    /// empty — the batcher's termination signal.
    ///
    /// Trigger: once at least one request is queued, the batch fires when
    /// `max` requests are queued **or** the oldest queued request has
    /// waited `deadline` since arrival, whichever comes first. A closed
    /// inbox fires immediately (shutdown drains promptly).
    pub fn drain_batch(&self, max: usize, deadline: Duration) -> Option<Vec<T>> {
        assert!(max > 0, "batch size must be at least 1");
        let mut s = self.state.lock().unwrap();
        // Phase 1: wait for the batch to open (first request, or close).
        loop {
            if !s.queue.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).unwrap();
        }
        // Phase 2: the batch is open; its deadline is anchored to the
        // arrival of the oldest queued request, so no admitted request
        // waits in the batcher longer than `deadline`.
        let fire_at = s.queue.front().map(|(t, _)| *t).unwrap() + deadline;
        while s.queue.len() < max && !s.closed {
            let now = Instant::now();
            let Some(remaining) = fire_at.checked_duration_since(now) else {
                break; // deadline reached
            };
            if remaining.is_zero() {
                break;
            }
            let (guard, timeout) = self.cond.wait_timeout(s, remaining).unwrap();
            s = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let n = s.queue.len().min(max);
        Some(s.queue.drain(..n).map(|(_, item)| item).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    const LONG: Duration = Duration::from_secs(30);
    const SHORT: Duration = Duration::from_millis(25);

    #[test]
    fn size_trigger_fires_without_waiting_for_the_deadline() {
        let inbox = Inbox::new(64);
        for i in 0..8 {
            assert_eq!(inbox.try_admit(i), Admit::Admitted);
        }
        let start = Instant::now();
        let batch = inbox.drain_batch(8, LONG).unwrap();
        assert_eq!(batch, (0..8).collect::<Vec<_>>());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "size-full batch should fire immediately, waited {:?}",
            start.elapsed()
        );
        // Leftovers stay queued for the next batch.
        assert!(inbox.is_empty());
    }

    #[test]
    fn oversize_queue_drains_in_max_sized_slices_in_order() {
        let inbox = Inbox::new(1024);
        for i in 0..10 {
            assert_eq!(inbox.try_admit(i), Admit::Admitted);
        }
        assert_eq!(inbox.drain_batch(4, LONG).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(inbox.drain_batch(4, LONG).unwrap(), vec![4, 5, 6, 7]);
        assert_eq!(inbox.len(), 2);
    }

    #[test]
    fn deadline_trigger_fires_a_partial_batch() {
        let inbox = Inbox::new(64);
        assert_eq!(inbox.try_admit(42), Admit::Admitted);
        let start = Instant::now();
        let batch = inbox.drain_batch(32, SHORT).unwrap();
        let waited = start.elapsed();
        assert_eq!(batch, vec![42]);
        // Fired by the deadline, not by size (the queue never filled) —
        // the wait is at least the deadline minus the time the request
        // had already been queued, and far less than a hang.
        assert!(waited < Duration::from_secs(10), "hung: {waited:?}");
    }

    #[test]
    fn deadline_is_anchored_to_oldest_arrival() {
        let inbox = Arc::new(Inbox::new(64));
        // Admit one request, let it age past the deadline, then drain:
        // the batch must fire immediately (its deadline already passed).
        assert_eq!(inbox.try_admit(1), Admit::Admitted);
        std::thread::sleep(SHORT + Duration::from_millis(5));
        let start = Instant::now();
        let batch = inbox.drain_batch(32, SHORT).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(
            start.elapsed() < SHORT,
            "aged request should fire at once, waited {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn admission_order_is_never_reordered_across_threads() {
        // Producers tag items with a global admission sequence taken
        // *inside* the admission path; the drained stream must be exactly
        // that sequence.
        let inbox = Arc::new(Inbox::new(100_000));
        let seq = Arc::new(Mutex::new(0u64));
        let mut drained = Vec::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inbox = Arc::clone(&inbox);
                let seq = Arc::clone(&seq);
                scope.spawn(move || {
                    for _ in 0..500 {
                        // Take the ticket and admit under one lock so the
                        // tag order IS the admission order.
                        let mut s = seq.lock().unwrap();
                        let tag = *s;
                        assert_eq!(inbox.try_admit(tag), Admit::Admitted);
                        *s += 1;
                    }
                });
            }
            // Drain concurrently with production.
            let mut got = 0;
            while got < 2000 {
                let batch = inbox.drain_batch(64, Duration::from_millis(1)).unwrap();
                got += batch.len();
                drained.extend(batch);
            }
        });
        assert_eq!(drained.len(), 2000);
        for (i, w) in drained.windows(2).enumerate() {
            assert!(w[0] < w[1], "reordered at {i}: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn fast_reject_at_capacity_is_deterministic_and_lossless() {
        let inbox = Inbox::new(4);
        let mut admitted = 0;
        let mut rejected = 0;
        for i in 0..10 {
            match inbox.try_admit(i) {
                Admit::Admitted => admitted += 1,
                Admit::Full => rejected += 1,
                Admit::Closed => panic!("not closed"),
            }
        }
        // Exactly the first `cap` get in; every caller learned its fate.
        assert_eq!((admitted, rejected), (4, 6));
        assert_eq!(inbox.drain_batch(16, LONG).unwrap(), vec![0, 1, 2, 3]);
        // Capacity freed: admission works again.
        assert_eq!(inbox.try_admit(99), Admit::Admitted);
    }

    #[test]
    fn close_stops_admission_but_drains_the_backlog() {
        let inbox = Inbox::new(8);
        assert_eq!(inbox.try_admit(1), Admit::Admitted);
        assert_eq!(inbox.try_admit(2), Admit::Admitted);
        inbox.close();
        assert_eq!(inbox.try_admit(3), Admit::Closed);
        // Backlog drains immediately (no deadline wait when closed) ...
        let start = Instant::now();
        assert_eq!(inbox.drain_batch(32, LONG).unwrap(), vec![1, 2]);
        assert!(start.elapsed() < Duration::from_secs(5));
        // ... and then the batcher sees the termination signal.
        assert_eq!(inbox.drain_batch(32, LONG), None);
    }

    #[test]
    fn close_wakes_a_blocked_drainer() {
        let inbox = Arc::new(Inbox::<u32>::new(8));
        let waiter = {
            let inbox = Arc::clone(&inbox);
            std::thread::spawn(move || inbox.drain_batch(32, LONG))
        };
        std::thread::sleep(Duration::from_millis(20));
        inbox.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Inbox::<u32>::new(0);
    }
}
