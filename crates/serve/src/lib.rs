//! `nnq-serve` — the serving layer: a long-running server that accepts
//! concurrent kNN / radius requests over a simple length-prefixed TCP
//! wire protocol and answers them through the repo's batch query engine.
//!
//! The design goal is the paper's cost model under concurrency **without
//! giving up the repo's accounting contract**: every response carries the
//! query's `logical_reads` (node accesses — the paper's "pages
//! accessed"), and results are bit-identical to a sequential
//! [`knn`](nnq_core) invocation regardless of batch size, worker count,
//! or interleaving across connections.
//!
//! Pieces:
//! - [`protocol`] — the framed wire format (requests, responses, limits);
//! - [`inbox`] — bounded admission queue + deadline-or-size micro-batch
//!   trigger (overload fast-rejects, it never queues unboundedly);
//! - [`server`] — the serve loop: framed readers, Hilbert-scheduled
//!   batch execution over a per-batch snapshot, graceful drain;
//! - [`client`] — a small blocking client for tests, the CLI, and the
//!   load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod inbox;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use inbox::{Admit, Inbox};
pub use protocol::{Hit, ProtocolError, Request, Response, MAX_K, MAX_RESULT_HITS};
pub use server::{serve, Engine, ServeConfig, ServeReport};
