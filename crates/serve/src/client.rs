//! A minimal blocking client for the wire protocol — used by the CLI,
//! the integration tests, and the load generator. One `Client` wraps one
//! TCP connection; requests may be pipelined (send several, then recv
//! each response) since the server answers admitted requests in
//! admission order and writes rejections immediately.

use crate::protocol::{read_frame, write_frame, Request, Response, MAX_RESPONSE_FRAME};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `nnq serve` server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request frame. Does not wait for the response — pair
    /// with [`recv`](Client::recv), or use [`call`](Client::call) for the
    /// one-outstanding pattern.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &req.encode())
    }

    /// Blocks for the next response frame.
    ///
    /// Responses to *admitted* requests arrive in the order the server
    /// admitted them, but rejections and errors are written immediately
    /// from the reader thread, so a pipelining caller must correlate by
    /// response id rather than assume strict send order.
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream, MAX_RESPONSE_FRAME)?;
        Ok(Response::decode(&payload)?)
    }

    /// One request, one response: send and block for the reply. With a
    /// single outstanding request there is nothing to correlate.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// The underlying stream (e.g. to set timeouts in tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
