//! The `nnq serve` server: thread-per-connection framed readers feeding a
//! bounded inbox, one batcher thread draining deadline-or-size
//! micro-batches through the work-stealing mixed-query executor, and
//! responses written back in admission order.
//!
//! Threading layout (all scoped, all joined before [`serve`] returns):
//!
//! ```text
//!            accept loop ──spawns──▶ reader (1 per connection)
//!                                      │ decode → validate → try_admit
//!                                      │   full/closed → fast-reject
//!                                      ▼
//!                              bounded Inbox<Job>
//!                                      │ deadline-or-size drain
//!                                      ▼
//!            batcher (caller's thread): tree.snapshot() per batch,
//!            Hilbert claim order over `threads` workers, responses
//!            written back in admission order, TuneController observes
//!            every drained batch
//! ```
//!
//! Shutdown protocol (graceful, drain-everything): a [`Request::Shutdown`]
//! frame closes the inbox — admission now fast-rejects with
//! `shutting_down` — the batcher drains every already-admitted request
//! (each still gets its response), signals the drain, quiesces every
//! pool's prefetch pipeline, flushes the WAL group-commit window (or the
//! plain dirty set), and [`serve`] returns its [`ServeReport`]. The
//! shutdown requester receives [`Response::Bye`] only after the drain, so
//! "my earlier request was answered" is ordered before "the server is
//! gone".

use crate::inbox::{Admit, Inbox};
use crate::protocol::{
    Hit, Request, Response, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME, MAX_RESULT_HITS,
};
use nnq_core::{
    hilbert_schedule, par_mixed_batch, partitioned_knn, partitioned_radius, BatchQuery, JoinOrder,
    KernelMode, Neighbor, NnOptions, PrefetchPolicy, Refiner, TuneController, TuneMode,
};
use nnq_geom::Point;
use nnq_rtree::{PartitionedTree, RTree};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Knobs for one [`serve`] run. All sizes are hard bounds: the inbox
/// never queues more than `inbox_cap`, a batch never exceeds `batch_max`,
/// and an admitted request never waits in the batcher longer than
/// `batch_deadline`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads the batch executor fans each micro-batch over.
    pub threads: usize,
    /// Micro-batch size trigger.
    pub batch_max: usize,
    /// Micro-batch deadline trigger, anchored to the oldest queued
    /// request's arrival.
    pub batch_deadline: Duration,
    /// Inbox capacity; admission fast-rejects beyond it.
    pub inbox_cap: usize,
    /// Distance-kernel mode for every query.
    pub kernel: KernelMode,
    /// Static prefetch policy (the tune controller may override).
    pub prefetch: PrefetchPolicy,
    /// Online self-tuning of backend knobs, observed per drained batch.
    pub tune: TuneMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch_max: 32,
            batch_deadline: Duration::from_micros(200),
            inbox_cap: 1024,
            kernel: KernelMode::default(),
            prefetch: PrefetchPolicy::Off,
            tune: TuneMode::Off,
        }
    }
}

/// What the server serves: one R-tree, or a Hilbert-range partitioned
/// forest behind scatter-gather.
pub enum Engine<'a> {
    /// A single paged R-tree. Each micro-batch runs against one
    /// [`snapshot`](RTree::snapshot), so reads proceed concurrently with
    /// the copy-on-write writer.
    Single(&'a RTree<2>),
    /// A partitioned tree; each request runs its own scatter-gather pass,
    /// requests fan out across the batch executor's workers.
    Partitioned(&'a PartitionedTree<2>),
}

/// Counters accumulated over one [`serve`] run, returned at shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Query responses successfully written.
    pub served: u64,
    /// Overload fast-rejections (inbox full).
    pub rejected: u64,
    /// Rejections after the shutdown gate closed.
    pub rejected_shutdown: u64,
    /// Error responses (malformed parameters or execution failure).
    pub errors: u64,
    /// Micro-batches drained.
    pub batches: u64,
    /// Requests drained into micro-batches (excludes pings and
    /// validation errors, which the readers answer directly).
    pub batched: u64,
    /// Largest micro-batch drained.
    pub max_batch: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Responses that could not be written (client went away, or its
    /// socket stayed unwritable past the write timeout); these requests
    /// were executed, not dropped by the server.
    pub write_errors: u64,
    /// Transient `accept(2)` failures (e.g. `ECONNABORTED`, fd
    /// exhaustion) the acceptor retried past instead of dying.
    pub accept_errors: u64,
    /// Final self-tuning report, when the controller was active.
    pub tune_report: Option<String>,
}

impl ServeReport {
    /// Average requests per drained batch.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched as f64 / self.batches as f64
        }
    }
}

/// One admitted request: what to run and where to write the answer.
struct Job {
    id: u64,
    query: BatchQuery<2>,
    conn: Arc<Conn>,
}

/// The write half of a connection. Both the reader thread (fast
/// rejections, pongs) and the batcher (query responses) write here; the
/// mutex keeps frames whole.
///
/// Writes carry a timeout (set at accept), and the first failed or
/// timed-out write marks the connection dead: a partial write tears the
/// framing, so nothing sent afterwards could be parsed — and more
/// importantly the single batcher thread must never pay the write
/// timeout again and again for one client that stopped reading.
struct Conn {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl Conn {
    fn send(&self, resp: &Response) -> io::Result<()> {
        let payload = resp.encode();
        if payload.len() > MAX_RESPONSE_FRAME {
            // Backstop: callers bound responses (validate caps k, the
            // batcher downgrades oversize radius answers), so an
            // overflowing frame here is a bug — but sending it would
            // desync the client, which is worse than dropping it.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response exceeds the maximum frame size",
            ));
        }
        let mut stream = self.stream.lock().unwrap();
        if self.dead.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection marked dead after an earlier write failure",
            ));
        }
        let res = crate::protocol::write_frame(&mut *stream, &payload);
        if res.is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
        res
    }
}

struct Shared {
    inbox: Inbox<Job>,
    /// Set once the drain has finished: acceptor and readers wind down.
    stop: AtomicBool,
    drained: Mutex<bool>,
    drained_cv: Condvar,
    served: AtomicU64,
    rejected: AtomicU64,
    rejected_shutdown: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    max_batch: AtomicU64,
    connections: AtomicU64,
    write_errors: AtomicU64,
    accept_errors: AtomicU64,
    retry_after_us: u32,
}

impl Shared {
    fn mark_drained(&self) {
        *self.drained.lock().unwrap() = true;
        self.drained_cv.notify_all();
    }

    fn wait_drained(&self) {
        let mut done = self.drained.lock().unwrap();
        while !*done {
            done = self.drained_cv.wait(done).unwrap();
        }
    }
}

/// How often blocked readers and the acceptor re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long a response write may block on a full socket buffer before
/// the connection is declared dead. The batcher writes responses
/// inline, so without this bound one client that stops reading stalls
/// every other connection's responses indefinitely.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Runs the server until a [`Request::Shutdown`] frame arrives, then
/// drains, quiesces, flushes, and returns the run's [`ServeReport`].
///
/// The caller supplies a bound listener (so it can report the ephemeral
/// port before the server blocks) and keeps ownership of the engine's
/// pools — print their stats after this returns for the shutdown line.
pub fn serve<R: Refiner<2> + Sync>(
    engine: &Engine<'_>,
    refiner: &R,
    listener: TcpListener,
    config: &ServeConfig,
) -> io::Result<ServeReport> {
    assert!(config.threads > 0, "need at least one worker thread");
    assert!(
        config.batch_max > 0,
        "batch size trigger must be at least 1"
    );
    listener.set_nonblocking(true)?;
    let shared = Shared {
        inbox: Inbox::new(config.inbox_cap),
        stop: AtomicBool::new(false),
        drained: Mutex::new(false),
        drained_cv: Condvar::new(),
        served: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        rejected_shutdown: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        batched: AtomicU64::new(0),
        max_batch: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        write_errors: AtomicU64::new(0),
        accept_errors: AtomicU64::new(0),
        retry_after_us: config.batch_deadline.as_micros().min(u128::from(u32::MAX)) as u32,
    };

    let tune_report = std::thread::scope(|scope| {
        let shared = &shared;
        scope.spawn(move || {
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nodelay(true);
                        // Readers poll with a timeout so shutdown never
                        // waits on an idle connection.
                        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                        let Ok(write_half) = stream.try_clone() else {
                            continue;
                        };
                        let _ = write_half.set_write_timeout(Some(WRITE_TIMEOUT));
                        let conn = Arc::new(Conn {
                            stream: Mutex::new(write_half),
                            dead: AtomicBool::new(false),
                        });
                        scope.spawn(move || reader_loop(stream, conn, shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        // Accept failures (ECONNABORTED, transient fd
                        // exhaustion, ...) are retryable: a server that
                        // silently stops accepting while appearing alive
                        // is worse than one that rides out the spike.
                        // The stop flag remains the only exit.
                        shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
        });
        batch_loop(engine, refiner, config, shared)
    });

    // Every reader and the acceptor joined: quiesce the I/O pipelines and
    // make the committed state durable before reporting.
    quiesce_and_flush(engine)?;

    Ok(ServeReport {
        served: shared.served.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        rejected_shutdown: shared.rejected_shutdown.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        batches: shared.batches.load(Ordering::Relaxed),
        batched: shared.batched.load(Ordering::Relaxed),
        max_batch: shared.max_batch.load(Ordering::Relaxed),
        connections: shared.connections.load(Ordering::Relaxed),
        write_errors: shared.write_errors.load(Ordering::Relaxed),
        accept_errors: shared.accept_errors.load(Ordering::Relaxed),
        tune_report,
    })
}

/// Shutdown's durability step: stop the background prefetchers (every
/// in-flight hint classified, nothing racing the flush) and push the
/// committed state down — through the WAL group-commit window when the
/// pool journals, a plain flush otherwise.
fn quiesce_and_flush(engine: &Engine<'_>) -> io::Result<()> {
    let flush = |pool: &nnq_storage::BufferPool| -> io::Result<()> {
        pool.prefetch_quiesce();
        let res = if pool.wal().is_some() {
            pool.checkpoint()
        } else {
            pool.flush_all()
        };
        res.map_err(|e| io::Error::other(e.to_string()))
    };
    match engine {
        Engine::Single(tree) => flush(tree.pool()),
        Engine::Partitioned(tree) => {
            for part in tree.partitions() {
                flush(part.pool())?;
            }
            Ok(())
        }
    }
}

/// Incremental frame parser over a read-timeout socket: partial reads
/// accumulate across poll attempts, so a frame split by a timeout
/// boundary is never torn.
struct FramedReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum Poll {
    Frame(Vec<u8>),
    Timeout,
    Closed,
}

impl FramedReader {
    fn poll_frame(&mut self) -> io::Result<Poll> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
                if len > MAX_REQUEST_FRAME {
                    return Err(crate::protocol::ProtocolError::FrameTooLarge(len).into());
                }
                if self.buf.len() >= 4 + len {
                    let frame = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Poll::Frame(frame));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Poll::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Poll::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn reader_loop(stream: TcpStream, conn: Arc<Conn>, shared: &Shared) {
    let mut reader = FramedReader {
        stream,
        buf: Vec::new(),
    };
    loop {
        let payload = match reader.poll_frame() {
            Ok(Poll::Frame(payload)) => payload,
            Ok(Poll::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            // Peer closed, transport error, or an unframeable byte
            // stream: nothing sensible can be answered.
            Ok(Poll::Closed) | Err(_) => return,
        };
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Can't know the id of a frame that didn't parse; answer
                // on id 0 and drop the connection (framing may be lost).
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let _ = conn.send(&Response::Error {
                    id: 0,
                    message: e.to_string(),
                });
                return;
            }
        };
        match req {
            Request::Ping { id } => {
                let _ = conn.send(&Response::Pong { id });
            }
            Request::Shutdown => {
                // Gate admission now; answer only after the drain so the
                // requester observes all of its earlier responses first.
                shared.inbox.close();
                shared.wait_drained();
                let _ = conn.send(&Response::Bye);
            }
            Request::Knn { .. } | Request::Radius { .. } => {
                let id = req.id().unwrap_or(0);
                if let Err(why) = req.validate() {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.send(&Response::Error {
                        id,
                        message: why.into(),
                    });
                    continue;
                }
                let query = match req {
                    Request::Knn { x, y, k, .. } => BatchQuery::Knn {
                        q: Point::new([x, y]),
                        k: k as usize,
                    },
                    Request::Radius { x, y, radius, .. } => BatchQuery::Radius {
                        q: Point::new([x, y]),
                        radius,
                    },
                    _ => unreachable!(),
                };
                let job = Job {
                    id,
                    query,
                    conn: Arc::clone(&conn),
                };
                match shared.inbox.try_admit(job) {
                    Admit::Admitted => {}
                    Admit::Full => {
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = conn.send(&Response::Rejected {
                            id,
                            retry_after_us: shared.retry_after_us.max(1),
                            shutting_down: false,
                        });
                    }
                    Admit::Closed => {
                        shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                        let _ = conn.send(&Response::Rejected {
                            id,
                            retry_after_us: 0,
                            shutting_down: true,
                        });
                    }
                }
            }
        }
    }
}

/// Drains micro-batches until the inbox closes and empties, executing
/// each through the mixed-query executor and writing responses back in
/// admission order. Runs on the caller's thread; returns the tune
/// controller's final report.
fn batch_loop<R: Refiner<2> + Sync>(
    engine: &Engine<'_>,
    refiner: &R,
    config: &ServeConfig,
    shared: &Shared,
) -> Option<String> {
    let mut controller = TuneController::new(config.tune);
    match engine {
        Engine::Single(tree) => controller.observe_tree(*tree),
        Engine::Partitioned(tree) => controller.observe_partitioned(tree),
    }
    while let Some(batch) = shared
        .inbox
        .drain_batch(config.batch_max, config.batch_deadline)
    {
        if batch.is_empty() {
            continue;
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .batched
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        let requests: Vec<BatchQuery<2>> = batch.iter().map(|j| j.query).collect();
        let opts = NnOptions {
            kernel: config.kernel,
            prefetch: controller.prefetch_policy().unwrap_or(config.prefetch),
            ..NnOptions::default()
        };
        // The batcher is the server's single drain: if it dies, admitted
        // requests are never answered and shutdown waiters block
        // forever. So a panicking worker (unexpected by construction —
        // validate() bounds every parameter — but fatal if it escapes)
        // is caught and converted into Error responses for the batch,
        // and the loop keeps draining.
        let outcome: Result<Vec<(Vec<Neighbor<2>>, u64)>, String> =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match engine {
                    Engine::Single(tree) => {
                        // One snapshot per micro-batch: every query in the
                        // batch sees the same committed root, and a
                        // concurrent COW writer can publish freely
                        // underneath.
                        let snap = tree.snapshot();
                        par_mixed_batch(
                            &snap,
                            &requests,
                            opts,
                            refiner,
                            config.threads,
                            JoinOrder::Hilbert,
                            controller.block_override(),
                        )
                        .map(|(results, bstats)| {
                            controller.observe_batch(&bstats);
                            results
                                .into_iter()
                                .map(|(hits, stats)| (hits, stats.nodes_visited))
                                .collect()
                        })
                    }
                    Engine::Partitioned(tree) => {
                        run_partitioned_batch(tree, &requests, opts, refiner, config.threads)
                    }
                }
                .map_err(|e| e.to_string())
            }))
            .unwrap_or_else(|panic| Err(panic_message(&panic)));
        match outcome {
            Ok(results) => {
                for (job, (hits, logical_reads)) in batch.iter().zip(results) {
                    if hits.len() > MAX_RESULT_HITS {
                        // An answer that cannot be framed (a radius query
                        // matching more than MAX_RESULT_HITS records) is
                        // reported as an error; sending the oversize
                        // frame would desync the client instead.
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = job.conn.send(&Response::Error {
                            id: job.id,
                            message: "result set exceeds the maximum response frame".into(),
                        });
                        continue;
                    }
                    let resp = Response::Ok {
                        id: job.id,
                        logical_reads,
                        hits: hits
                            .iter()
                            .map(|n| Hit {
                                record: n.record.0,
                                dist_sq: n.dist_sq,
                            })
                            .collect(),
                    };
                    if job.conn.send(&resp).is_ok() {
                        shared.served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.write_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(message) => {
                for job in &batch {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.conn.send(&Response::Error {
                        id: job.id,
                        message: message.clone(),
                    });
                }
            }
        }
        match engine {
            Engine::Single(tree) => controller.observe_tree(*tree),
            Engine::Partitioned(tree) => controller.observe_partitioned(tree),
        }
    }
    // Inbox closed and fully drained: release waiting shutdown
    // requesters, then stop the acceptor and readers.
    shared.mark_drained();
    shared.stop.store(true, Ordering::Release);
    controller.is_active().then(|| controller.report())
}

/// Renders a caught panic payload into an error message for the
/// affected batch's Error responses.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    let what = panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("unknown panic");
    format!("query execution panicked: {what}")
}

/// Mixed batch over a partitioned tree: requests fan out over `threads`
/// workers claiming from a shared cursor in Hilbert order, each request
/// running its own sequential scatter-gather pass (partition-level
/// parallelism would nest threads). Deterministic per request, so
/// results are bit-identical to a sequential loop.
fn run_partitioned_batch<R: Refiner<2> + Sync>(
    tree: &PartitionedTree<2>,
    requests: &[BatchQuery<2>],
    opts: NnOptions,
    refiner: &R,
    threads: usize,
) -> nnq_core::Result<Vec<(Vec<Neighbor<2>>, u64)>> {
    let points: Vec<Point<2>> = requests.iter().map(|r| *r.point()).collect();
    let schedule = hilbert_schedule(&points);
    let execute = |req: &BatchQuery<2>| -> nnq_core::Result<(Vec<Neighbor<2>>, u64)> {
        let (hits, pstats) = match *req {
            BatchQuery::Knn { q, k } => partitioned_knn(tree, &q, k, opts, refiner, 1)?,
            BatchQuery::Radius { q, radius } => {
                partitioned_radius(tree, &q, radius, opts, refiner, 1)?
            }
        };
        Ok((hits, pstats.search.nodes_visited))
    };
    let mut results: Vec<(Vec<Neighbor<2>>, u64)> = vec![(Vec::new(), 0); requests.len()];
    if threads == 1 || requests.len() == 1 {
        for &i in &schedule {
            results[i] = execute(&requests[i])?;
        }
        return Ok(results);
    }
    let next = AtomicUsize::new(0);
    type Out<'a> = nnq_core::Result<Vec<(usize, (Vec<Neighbor<2>>, u64))>>;
    let worker_outs: Vec<Out<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let schedule = &schedule;
                let execute = &execute;
                scope.spawn(move || -> Out<'_> {
                    let mut out = Vec::new();
                    loop {
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        if at >= schedule.len() {
                            break;
                        }
                        let i = schedule[at];
                        out.push((i, execute(&requests[i])?));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for worker_out in worker_outs {
        for (i, r) in worker_out? {
            results[i] = r;
        }
    }
    Ok(results)
}
