//! The serving layer's accounting contract, at the wire level: the
//! byte-for-byte encoded responses — neighbor records, exact distance
//! bits, and per-query logical reads — must be identical across every
//! (batch size, worker count) configuration, because micro-batching and
//! work-stealing are throughput knobs, not semantics.

use nnq_core::MbrRefiner;
use nnq_geom::Point;
use nnq_rtree::{BulkMethod, RTree, RTreeConfig};
use nnq_serve::{Client, Engine, Request, Response, ServeConfig};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use nnq_workloads::{default_bounds, points_to_items, uniform_points, zipf_cluster_queries};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Runs one server configuration over a fixed request sequence on a
/// single pipelined connection and returns each response's encoded
/// bytes, in request order.
fn serve_responses(tree: &RTree<2>, requests: &[Request], config: &ServeConfig) -> Vec<Vec<u8>> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(move || {
            nnq_serve::serve(&Engine::Single(tree), &MbrRefiner, listener, config).unwrap()
        });
        let mut client = Client::connect(addr).unwrap();
        for req in requests {
            client.send(req).unwrap();
        }
        let responses: Vec<Vec<u8>> = (0..requests.len())
            .map(|i| {
                let resp = client.recv().unwrap();
                assert!(
                    matches!(&resp, Response::Ok { id, .. } if *id == requests[i].id().unwrap()),
                    "request {i}: unexpected response {resp:?}"
                );
                resp.encode()
            })
            .collect();
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::Bye
        ));
        let report = server.join().unwrap();
        assert_eq!(report.served, requests.len() as u64);
        assert_eq!(report.rejected + report.errors + report.write_errors, 0);
        responses
    })
}

#[test]
fn responses_are_byte_identical_across_batch_sizes_and_threads() {
    let pts = uniform_points(15_000, &default_bounds(), 61);
    let items = points_to_items(&pts);
    let pool = Arc::new(BufferPool::new(Box::new(MemDisk::new(PAGE_SIZE)), 1 << 15));
    let tree = RTree::<2>::bulk_load(
        Arc::clone(&pool),
        RTreeConfig::default(),
        items,
        BulkMethod::Str,
        1.0,
    )
    .unwrap();

    // Zipf-clustered query points (hot neighborhoods make work stealing
    // uneven — the stress case for ordering bugs), mixed kNN and radius.
    let centers: Vec<Point<2>> = uniform_points(32, &default_bounds(), 62);
    let queries = zipf_cluster_queries(200, &centers, 0.9, 2_000.0, &default_bounds(), 63);
    let requests: Vec<Request> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let id = i as u64;
            if i % 3 == 2 {
                Request::Radius {
                    id,
                    x: q[0],
                    y: q[1],
                    radius: 800.0 + (i % 5) as f64 * 600.0,
                }
            } else {
                Request::Knn {
                    id,
                    x: q[0],
                    y: q[1],
                    k: 1 + (i % 8) as u32,
                }
            }
        })
        .collect();

    let mut baseline: Option<Vec<Vec<u8>>> = None;
    for batch_max in [1usize, 32] {
        for threads in [1usize, 8] {
            let config = ServeConfig {
                threads,
                batch_max,
                batch_deadline: Duration::from_micros(100),
                inbox_cap: 1024,
                ..ServeConfig::default()
            };
            let got = serve_responses(&tree, &requests, &config);
            match &baseline {
                None => baseline = Some(got),
                Some(want) => {
                    for (i, (g, w)) in got.iter().zip(want).enumerate() {
                        assert_eq!(
                            g, w,
                            "batch={batch_max} threads={threads}: response {i} \
                             not byte-identical to batch=1 threads=1"
                        );
                    }
                }
            }
        }
    }
}
