//! Reproduces experiment E16; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e16();
}
