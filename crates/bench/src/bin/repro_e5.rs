//! Reproduces experiment E5; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e5();
}
