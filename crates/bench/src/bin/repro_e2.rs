//! Reproduces experiment E2; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e2();
}
