//! Reproduces experiment E9; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e9();
}
