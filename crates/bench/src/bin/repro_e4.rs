//! Reproduces experiment E4; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e4();
}
