//! Reproduces experiment E13; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e13();
}
