//! Reproduces experiment E14; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e14();
}
