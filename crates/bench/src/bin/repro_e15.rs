//! Reproduces experiment E15; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e15();
}
