//! Reproduces experiment E7; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e7();
}
