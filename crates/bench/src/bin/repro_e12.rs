//! Reproduces experiment E12; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e12();
}
