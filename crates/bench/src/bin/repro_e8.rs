//! Reproduces experiment E8; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e8();
}
