//! Reproduces experiment E6; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e6();
}
