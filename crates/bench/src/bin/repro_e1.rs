//! Reproduces experiment E1; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e1();
}
