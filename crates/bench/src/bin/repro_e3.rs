//! Reproduces experiment E3; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e3();
}
