//! Runs all reproduction experiments E1–E8 in sequence.
//!
//! Use `NNQ_SCALE=0.1` for a quick smoke run.
fn main() {
    nnq_bench::experiments::run_all();
}
