//! Reproduces experiment E11; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e11();
}
