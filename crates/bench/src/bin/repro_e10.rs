//! Reproduces experiment E10; see DESIGN.md §5.
fn main() {
    nnq_bench::experiments::e10();
}
