//! The sixteen reproduction experiments (DESIGN.md §5).
//!
//! Each function prints one or more paper-style tables to stdout; the
//! recorded full-scale output lives in `experiments_full.txt` and is
//! analyzed in `EXPERIMENTS.md`. All page/node counters are deterministic
//! for a fixed `NNQ_SCALE`; only wall-clock columns vary run to run.

use crate::datasets::Dataset;
use crate::harness::{
    build_tree, default_build, measure, measure_knn, queries_for, BuildMethod, BuiltTree,
    SegmentRefiner, QUERY_POOL_FRAMES,
};
use crate::scaled;
use crate::table::{f, Table};
use nnq_core::{best_first_knn, AblOrdering, IncrementalNn, MbrRefiner, NnOptions, NnSearch};
use nnq_rtree::{BulkMethod, RTree, RTreeConfig};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xBEEF;

/// E1 — pages accessed vs k on the three standard datasets.
///
/// Claim: the branch-and-bound search touches a tiny, slowly-growing
/// fraction of the tree as k goes from 1 to 25.
pub fn e1() {
    let n = scaled(100_000);
    let queries = queries_for(200, SEED);
    let ks = [1usize, 2, 5, 10, 15, 20, 25];
    let mut table = Table::new(
        format!("E1: pages accessed per kNN query (N = {n})"),
        &[
            "dataset",
            "total pages",
            "k=1",
            "k=2",
            "k=5",
            "k=10",
            "k=15",
            "k=20",
            "k=25",
        ],
    );
    for d in Dataset::standard_trio(n, SEED) {
        let built = default_build(&d);
        let total = built.tree.stats().unwrap().nodes;
        let mut row = vec![d.name.to_string(), total.to_string()];
        for &k in &ks {
            let m = measure_knn(
                &built,
                &queries,
                k,
                NnOptions::default(),
                d.segments.as_deref(),
            );
            row.push(f(m.pages, 1));
        }
        table.row(row);
    }
    table.print();
}

/// E2 — MINDIST vs MINMAXDIST ABL ordering (the paper's central
/// comparison). Claim: MINDIST ordering accesses no more (usually fewer)
/// pages on average.
pub fn e2() {
    let n = scaled(100_000);
    let queries = queries_for(200, SEED + 1);
    let ks = [1usize, 5, 10, 25];
    let mut table = Table::new(
        format!("E2: pages per query by ABL ordering (N = {n})"),
        &["dataset", "k", "MINDIST", "MINMAXDIST", "ratio"],
    );
    for d in Dataset::standard_trio(n, SEED) {
        let built = default_build(&d);
        for &k in &ks {
            let md = measure_knn(
                &built,
                &queries,
                k,
                NnOptions::with_ordering(AblOrdering::MinDist),
                d.segments.as_deref(),
            );
            let mm = measure_knn(
                &built,
                &queries,
                k,
                NnOptions::with_ordering(AblOrdering::MinMaxDist),
                d.segments.as_deref(),
            );
            table.row(vec![
                d.name.to_string(),
                k.to_string(),
                f(md.pages, 1),
                f(mm.pages, 1),
                f(mm.pages / md.pages, 2),
            ]);
        }
    }
    table.print();
}

/// E3 — pruning-strategy ablation. Claim: each strategy reduces work;
/// upward pruning (S3) does the heavy lifting; S1/S2 help mostly before
/// the first k candidates are found.
pub fn e3() {
    let n = scaled(100_000);
    let queries = queries_for(200, SEED + 2);
    let variants: [(&str, NnOptions); 4] = [
        ("none", NnOptions::no_pruning()),
        (
            "S3",
            NnOptions {
                prune_downward: false,
                prune_object: false,
                ..NnOptions::default()
            },
        ),
        (
            "S1+S3",
            NnOptions {
                prune_object: false,
                ..NnOptions::default()
            },
        ),
        ("S1+S2+S3", NnOptions::default()),
    ];
    for d in [Dataset::uniform(n, SEED), Dataset::tiger(n, SEED + 2)] {
        let built = default_build(&d);
        let mut table = Table::new(
            format!("E3: pruning ablation on {} (N = {n})", d.name),
            &[
                "strategies",
                "k",
                "nodes",
                "pruned S1",
                "pruned S2",
                "pruned S3",
                "dist comps",
            ],
        );
        for &k in &[1usize, 10] {
            for (label, opts) in &variants {
                let m = measure_knn(&built, &queries, k, *opts, d.segments.as_deref());
                table.row(vec![
                    label.to_string(),
                    k.to_string(),
                    f(m.nodes, 1),
                    f(m.pruned_downward, 1),
                    f(m.pruned_object, 1),
                    f(m.pruned_upward, 1),
                    f(m.dist_computations, 1),
                ]);
            }
        }
        table.print();
    }
}

/// E4 — scalability: pages vs dataset size. Claim: logarithmic growth.
pub fn e4() {
    let queries = queries_for(200, SEED + 3);
    let mut table = Table::new(
        "E4: pages per query vs dataset size (uniform, k = 10, STR build)",
        &["N", "height", "total pages", "pages/query", "time [µs]"],
    );
    for exp in 12..=20u32 {
        let n = scaled(1usize << exp);
        let d = Dataset::uniform(n, SEED + u64::from(exp));
        let built = build_tree(
            &d.items,
            BuildMethod::Bulk(BulkMethod::Str),
            QUERY_POOL_FRAMES,
        );
        let m = measure_knn(&built, &queries, 10, NnOptions::default(), None);
        table.row(vec![
            n.to_string(),
            built.tree.height().to_string(),
            built.tree.stats().unwrap().nodes.to_string(),
            f(m.pages, 1),
            f(m.time_us, 1),
        ]);
    }
    table.print();
}

/// E5 — buffering: physical reads vs LRU buffer size. Claim: small
/// buffers already capture the locality of the depth-first search.
pub fn e5() {
    let n = scaled(100_000);
    let d = Dataset::tiger(n, SEED + 4);
    // Build once on a shared device, then re-open under pools of varying
    // size.
    let disk = Arc::new(MemDisk::new(PAGE_SIZE));
    let build_pool = Arc::new(BufferPool::new(
        Box::new(Arc::clone(&disk)),
        QUERY_POOL_FRAMES,
    ));
    let tree = RTree::<2>::create(Arc::clone(&build_pool), RTreeConfig::default()).unwrap();
    for (mbr, rid) in &d.items {
        tree.insert(mbr, *rid).unwrap();
    }
    build_pool.flush_all().unwrap();
    let meta_page = tree.meta_page();
    let total_pages = tree.stats().unwrap().nodes + 1;
    drop(tree);
    drop(build_pool);

    let queries = queries_for(500, SEED + 4);
    let segments = d.segments.as_deref().unwrap();
    let mut table = Table::new(
        format!("E5: physical reads vs buffer size (tiger-like, N = {n}, k = 10, tree = {total_pages} pages)"),
        &["buffer [pages]", "pages/query", "physical/query", "hit rate"],
    );
    for frames in [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let pool = Arc::new(BufferPool::new(Box::new(Arc::clone(&disk)), frames));
        let tree = RTree::<2>::open(Arc::clone(&pool), meta_page).unwrap();
        let search = NnSearch::new(&tree);
        let refiner = SegmentRefiner { segments };
        // Warm the cache with one pass, then measure the second.
        for q in &queries {
            let _ = search.query_refined(q, 10, &refiner).unwrap();
        }
        let m = measure(&pool, &queries, |q| {
            search.query_refined(q, 10, &refiner).unwrap().1
        });
        let stats = pool.stats();
        table.row(vec![
            frames.to_string(),
            f(m.pages, 1),
            f(m.physical, 1),
            f(stats.hit_rate(), 3),
        ]);
    }
    table.print();
}

/// E6 — index vs sequential scan (the motivating comparison). Claim: the
/// branch-and-bound search wins by orders of magnitude and the gap widens
/// with N.
pub fn e6() {
    let queries = queries_for(50, SEED + 5);
    let mut table = Table::new(
        "E6: branch-and-bound vs sequential scan (uniform, k = 10)",
        &[
            "N",
            "B&B pages",
            "scan pages",
            "B&B µs",
            "scan µs",
            "speedup",
        ],
    );
    for &n in &[scaled(10_000), scaled(50_000), scaled(200_000)] {
        let d = Dataset::uniform(n, SEED + n as u64);
        let built = default_build(&d);
        let m = measure_knn(&built, &queries, 10, NnOptions::default(), None);
        let scan = measure(&built.pool, &queries, |q| {
            nnq_core::linear_scan_knn(&built.tree, q, 10, &MbrRefiner)
                .unwrap()
                .1
        });
        table.row(vec![
            n.to_string(),
            f(m.pages, 1),
            f(scan.pages, 1),
            f(m.time_us, 1),
            f(scan.time_us, 1),
            f(scan.time_us / m.time_us, 1),
        ]);
    }
    table.print();
}

/// E7 — construction method vs query cost. Claim: packed trees answer NN
/// queries at least as cheaply as dynamically built ones; R* beats
/// Guttman's splits; linear is worst.
pub fn e7() {
    let n = scaled(100_000);
    let d = Dataset::tiger(n, SEED + 6);
    let queries = queries_for(200, SEED + 6);
    let mut table = Table::new(
        format!("E7: build method vs NN cost (tiger-like, N = {n}, k = 10)"),
        &[
            "build",
            "build [ms]",
            "pages total",
            "avg fill",
            "overlap",
            "pages/query",
        ],
    );
    for method in BuildMethod::all() {
        let built = build_tree(&d.items, method, QUERY_POOL_FRAMES);
        built.tree.validate().unwrap();
        let stats = built.tree.stats().unwrap();
        let m = measure_knn(
            &built,
            &queries,
            10,
            NnOptions::default(),
            d.segments.as_deref(),
        );
        table.row(vec![
            method.label().to_string(),
            f(built.build_time.as_secs_f64() * 1e3, 0),
            stats.nodes.to_string(),
            f(stats.avg_fill, 2),
            f(stats.overlap_per_level.iter().sum::<f64>() / 1e6, 1),
            f(m.pages, 1),
        ]);
    }
    table.print();
}

/// E8 — depth-first (the paper) vs best-first vs incremental
/// (later literature). Claim: best-first reads the fewest pages; ordered
/// DFS stays close on well-built trees.
pub fn e8() {
    let n = scaled(100_000);
    let d = Dataset::tiger(n, SEED + 7);
    let built = default_build(&d);
    let segments = d.segments.as_deref().unwrap();
    let queries = queries_for(200, SEED + 7);
    let refiner = SegmentRefiner { segments };
    let mut table = Table::new(
        format!("E8: pages per query by algorithm (tiger-like, N = {n})"),
        &["k", "DFS (RKV'95)", "best-first", "incremental", "DFS/BF"],
    );
    for &k in &[1usize, 2, 5, 10, 15, 20, 25] {
        let dfs = measure_knn(&built, &queries, k, NnOptions::default(), Some(segments));
        let bf = measure(&built.pool, &queries, |q| {
            best_first_knn(&built.tree, q, k, &refiner).unwrap().1
        });
        let inc = measure(&built.pool, &queries, |q| {
            let mut it = IncrementalNn::new(&built.tree, *q, &refiner);
            for _ in 0..k {
                if it.next().is_none() {
                    break;
                }
            }
            *it.stats()
        });
        table.row(vec![
            k.to_string(),
            f(dfs.pages, 1),
            f(bf.pages, 1),
            f(inc.pages, 1),
            f(dfs.pages / bf.pages, 2),
        ]);
    }
    table.print();
}

/// E9 — page-size sweep: the paper-era question of how node capacity
/// (page size) trades fanout against per-page cost. Claim: larger pages
/// mean fewer page accesses per query but more bytes moved; the page
/// count falls roughly linearly in the fanout.
pub fn e9() {
    let n = scaled(100_000);
    let d = Dataset::uniform(n, SEED + 8);
    let queries = queries_for(200, SEED + 8);
    let mut table = Table::new(
        format!("E9: page size vs query cost (uniform, N = {n}, k = 10)"),
        &[
            "page [B]",
            "fanout",
            "height",
            "total pages",
            "pages/query",
            "KiB/query",
        ],
    );
    for page_size in [1024usize, 2048, 4096, 8192, 16384] {
        let pool = Arc::new(BufferPool::new(
            Box::new(MemDisk::new(page_size)),
            QUERY_POOL_FRAMES,
        ));
        let tree = RTree::<2>::bulk_load(
            Arc::clone(&pool),
            RTreeConfig::default(),
            d.items.clone(),
            BulkMethod::Str,
            1.0,
        )
        .unwrap();
        let search = NnSearch::new(&tree);
        let m = measure(&pool, &queries, |q| {
            search.query_with_stats(q, 10).unwrap().1
        });
        table.row(vec![
            page_size.to_string(),
            tree.max_entries().to_string(),
            tree.height().to_string(),
            tree.stats().unwrap().nodes.to_string(),
            f(m.pages, 1),
            f(m.pages * page_size as f64 / 1024.0, 1),
        ]);
    }
    table.print();
}

/// E10 — query-distribution impact: queries uniform over the world vs
/// queries drawn near the data (mirrors the paper's discussion that
/// performance depends on how queries relate to data skew). The direction
/// is workload-dependent: on road networks, data-near queries sit inside
/// towns where many sibling MBRs overlap the kNN ball, while uniform
/// queries often land in empty countryside whose large ball intersects
/// few, well-separated nodes.
pub fn e10() {
    let n = scaled(100_000);
    let mut table = Table::new(
        format!("E10: query distribution vs cost (N = {n}, k = 10)"),
        &["dataset", "uniform q pages", "data-near q pages", "ratio"],
    );
    for d in [Dataset::clustered(n, SEED + 9), Dataset::tiger(n, SEED + 9)] {
        let built = default_build(&d);
        let uniform_q = queries_for(200, SEED + 9);
        let anchors: Vec<nnq_geom::Point<2>> =
            d.items.iter().map(|(mbr, _)| mbr.center()).collect();
        let near_q = nnq_workloads::data_queries(
            200,
            &anchors,
            500.0,
            &nnq_workloads::default_bounds(),
            SEED + 9,
        );
        let mu = measure_knn(
            &built,
            &uniform_q,
            10,
            NnOptions::default(),
            d.segments.as_deref(),
        );
        let mn = measure_knn(
            &built,
            &near_q,
            10,
            NnOptions::default(),
            d.segments.as_deref(),
        );
        table.row(vec![
            d.name.to_string(),
            f(mu.pages, 1),
            f(mn.pages, 1),
            f(mu.pages / mn.pages, 2),
        ]);
    }
    table.print();
}

/// E11 — backend comparison (extension): the paper's disk R-tree vs the
/// same algorithms on an in-memory R-tree vs the kd-tree ancestor (FBF).
/// Claim: identical answers; CPU time favors the memory-resident
/// structures; the R-tree's page discipline is the price of disk
/// residency.
pub fn e11() {
    let n = scaled(100_000);
    let d = Dataset::uniform(n, SEED + 10);
    let queries = queries_for(500, SEED + 10);

    let paged = default_build(&d);
    let mem = nnq_rtree::MemRTree::<2>::new();
    for (mbr, rid) in &d.items {
        mem.insert(mbr, *rid).unwrap();
    }
    let kd_points: Vec<(nnq_geom::Point<2>, nnq_rtree::RecordId)> = d
        .items
        .iter()
        .map(|(mbr, rid)| (mbr.center(), *rid))
        .collect();
    let kd = nnq_kdtree::KdTree::build(kd_points, 16);

    let mut table = Table::new(
        format!("E11: backend comparison (uniform, N = {n})"),
        &[
            "k",
            "paged µs",
            "mem-rtree µs",
            "kd-tree µs",
            "paged nodes",
            "kd nodes",
        ],
    );
    // Warm every structure (page cache, allocator, branch predictors) so
    // the timed passes compare steady states.
    for q in &queries {
        let _ = NnSearch::new(&paged.tree).query(q, 10).unwrap();
        let _ = NnSearch::new(&mem).query(q, 10).unwrap();
        let _ = kd.knn(q, 10);
    }
    for &k in &[1usize, 10, 25] {
        let mp = measure(&paged.pool, &queries, |q| {
            NnSearch::new(&paged.tree).query_with_stats(q, k).unwrap().1
        });
        let start = Instant::now();
        let mut mem_nodes = 0u64;
        for q in &queries {
            mem_nodes += NnSearch::new(&mem)
                .query_with_stats(q, k)
                .unwrap()
                .1
                .nodes_visited;
        }
        let mem_us = start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
        let start = Instant::now();
        let mut kd_nodes = 0u64;
        for q in &queries {
            kd_nodes += kd.knn(q, k).1.nodes_visited;
        }
        let kd_us = start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
        let _ = mem_nodes;
        table.row(vec![
            k.to_string(),
            f(mp.time_us, 1),
            f(mem_us, 1),
            f(kd_us, 1),
            f(mp.nodes, 1),
            f(kd_nodes as f64 / queries.len() as f64, 1),
        ]);
    }
    table.print();
}

/// E12 — kNN-join locality (extension): processing the outer set in
/// Hilbert order makes consecutive queries hit the same subtree, so a
/// small LRU buffer absorbs most node reads. Claim: same logical work,
/// far fewer physical reads under a constrained buffer.
pub fn e12() {
    let n = scaled(100_000);
    let n_outer = scaled(20_000);
    let d = Dataset::uniform(n, SEED + 11);
    let outer = nnq_workloads::uniform_points(n_outer, &nnq_workloads::default_bounds(), SEED + 11);

    // Build once on a shared device; join under small pools.
    let disk = Arc::new(MemDisk::new(PAGE_SIZE));
    let build_pool = Arc::new(BufferPool::new(
        Box::new(Arc::clone(&disk)),
        QUERY_POOL_FRAMES,
    ));
    let tree = RTree::<2>::bulk_load(
        Arc::clone(&build_pool),
        RTreeConfig::default(),
        d.items.clone(),
        BulkMethod::Str,
        1.0,
    )
    .unwrap();
    build_pool.flush_all().unwrap();
    let meta_page = tree.meta_page();
    let total_pages = tree.stats().unwrap().nodes;
    drop(tree);
    drop(build_pool);

    let mut table = Table::new(
        format!("E12: kNN-join outer ordering vs physical reads (N = {n}, outer = {n_outer}, k = 4, tree = {total_pages} pages)"),
        &["buffer [pages]", "order", "physical reads", "hit rate", "time [ms]"],
    );
    for frames in [16usize, 64, 256] {
        for (label, order) in [
            ("as-given", nnq_core::JoinOrder::AsGiven),
            ("hilbert", nnq_core::JoinOrder::Hilbert),
        ] {
            let pool = Arc::new(BufferPool::new(Box::new(Arc::clone(&disk)), frames));
            let tree = RTree::<2>::open(Arc::clone(&pool), meta_page).unwrap();
            pool.reset_stats();
            let start = Instant::now();
            let _ = nnq_core::knn_join(&tree, &outer, 4, NnOptions::default(), &MbrRefiner, order)
                .unwrap();
            let elapsed = start.elapsed();
            let s = pool.stats();
            table.row(vec![
                frames.to_string(),
                label.to_string(),
                s.physical_reads.to_string(),
                f(s.hit_rate(), 3),
                f(elapsed.as_secs_f64() * 1e3, 0),
            ]);
        }
    }
    table.print();
}

/// E13 — parallel batch scaling (extension; the paper's conclusion lists
/// parallel NN as future work). Claim: independent queries over a shared
/// tree scale near-linearly until memory bandwidth bites.
pub fn e13() {
    let n = scaled(200_000);
    let n_queries = scaled(20_000);
    let d = Dataset::uniform(n, SEED + 12);
    let tree = nnq_rtree::MemRTree::<2>::new();
    for (mbr, rid) in &d.items {
        tree.insert(mbr, *rid).unwrap();
    }
    let queries =
        nnq_workloads::uniform_queries(n_queries, &nnq_workloads::default_bounds(), SEED + 12);
    // Warm-up.
    let _ = nnq_core::par_knn_batch(
        &tree,
        &queries[..1000.min(queries.len())],
        10,
        NnOptions::default(),
        &MbrRefiner,
        2,
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        format!(
            "E13: parallel batch kNN scaling (mem R-tree, N = {n}, {n_queries} queries, k = 10, {cores} core(s) available)"
        ),
        &["threads", "total [ms]", "queries/s", "speedup"],
    );
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let out = nnq_core::par_knn_batch(
            &tree,
            &queries,
            10,
            NnOptions::default(),
            &MbrRefiner,
            threads,
        )
        .unwrap();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out.len(), queries.len());
        if threads == 1 {
            base = secs;
        }
        table.row(vec![
            threads.to_string(),
            f(secs * 1e3, 0),
            f(queries.len() as f64 / secs, 0),
            f(base / secs, 2),
        ]);
    }
    table.print();
}

/// E14 — disk-resident refinement (extension of the paper's filter-refine
/// setting): when object geometry lives in a heap file on the same
/// device, refinement pays page accesses too. Claim: refinement adds a
/// small, k-proportional number of heap-page reads on top of the index
/// pages.
pub fn e14() {
    let n = scaled(100_000);
    let segments = nnq_workloads::tiger_like_segments(&nnq_workloads::TigerParams {
        segments: n,
        seed: SEED + 13,
        ..nnq_workloads::TigerParams::default()
    });
    let pool = Arc::new(BufferPool::new(
        Box::new(MemDisk::new(PAGE_SIZE)),
        QUERY_POOL_FRAMES,
    ));
    let (heap, items) = nnq_workloads::segments_to_heap(Arc::clone(&pool), &segments).unwrap();
    let tree = RTree::<2>::create(Arc::clone(&pool), RTreeConfig::default()).unwrap();
    for (mbr, rid) in &items {
        tree.insert(mbr, *rid).unwrap();
    }
    let index_pages = tree.stats().unwrap().nodes;
    let heap_pages = heap.pages().len();
    let queries = queries_for(500, SEED + 13);
    let search = NnSearch::new(&tree);

    let mut table = Table::new(
        format!("E14: refinement I/O (tiger-like, N = {n}, index = {index_pages} pages, heap = {heap_pages} pages)"),
        &["k", "slice refine pages/query", "heap refine pages/query", "heap extra"],
    );
    // The tree's record ids are heap ids; map them back to slice indices
    // for the no-I/O baseline.
    let index_of: std::collections::HashMap<u64, usize> = items
        .iter()
        .enumerate()
        .map(|(i, (_, rid))| (rid.0, i))
        .collect();
    for &k in &[1usize, 4, 10] {
        // Baseline: geometry in a host slice (no I/O for refinement).
        let slice_refiner = nnq_core::FnRefiner::new(
            |rid: nnq_rtree::RecordId, _: &nnq_geom::Rect<2>, q: &nnq_geom::Point<2>| {
                segments[index_of[&rid.0]].dist_sq_to_point(q)
            },
        );
        pool.reset_stats();
        for q in &queries {
            let _ = search.query_refined(q, k, &slice_refiner).unwrap();
        }
        let slice_pages = pool.stats().logical_reads as f64 / queries.len() as f64;

        // Disk-resident geometry: each exact distance fetches a heap page.
        let heap_refiner = nnq_core::FnRefiner::new(
            |rid: nnq_rtree::RecordId, _: &nnq_geom::Rect<2>, q: &nnq_geom::Point<2>| {
                nnq_workloads::read_segment(&heap, nnq_storage::HeapRecordId(rid.0))
                    .unwrap()
                    .dist_sq_to_point(q)
            },
        );
        pool.reset_stats();
        for q in &queries {
            let _ = search.query_refined(q, k, &heap_refiner).unwrap();
        }
        let heap_pages_q = pool.stats().logical_reads as f64 / queries.len() as f64;

        table.row(vec![
            k.to_string(),
            f(slice_pages, 1),
            f(heap_pages_q, 1),
            f(heap_pages_q - slice_pages, 1),
        ]);
    }
    table.print();
}

/// E15 — (1+ε)-approximate kNN (extension): trading guaranteed accuracy
/// for page accesses. Claim: modest ε buys a meaningful reduction in
/// nodes visited while observed error stays far below the guarantee.
pub fn e15() {
    let n = scaled(100_000);
    let d = Dataset::clustered(n, SEED + 14);
    let built = default_build(&d);
    let queries = queries_for(300, SEED + 14);
    // Exact baseline distances for error measurement.
    let exact_search = NnSearch::new(&built.tree);
    let exact: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| {
            exact_search
                .query(q, 10)
                .unwrap()
                .iter()
                .map(nnq_core::Neighbor::dist)
                .collect()
        })
        .collect();
    let mut table = Table::new(
        format!("E15: (1+ε)-approximate kNN (clustered, N = {n}, k = 10)"),
        &[
            "epsilon",
            "pages/query",
            "vs exact",
            "max observed error",
            "guarantee",
        ],
    );
    let mut exact_pages = 0.0;
    for eps in [0.0f64, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let m = measure_knn(&built, &queries, 10, NnOptions::approximate(eps), None);
        if eps == 0.0 {
            exact_pages = m.pages;
        }
        // Observed worst-case rank-wise error ratio.
        let search = NnSearch::with_options(&built.tree, NnOptions::approximate(eps));
        let mut worst = 1.0f64;
        for (q, truth) in queries.iter().zip(&exact) {
            let got = search.query(q, 10).unwrap();
            for (g, t) in got.iter().zip(truth) {
                if *t > 0.0 {
                    worst = worst.max(g.dist() / t);
                }
            }
        }
        table.row(vec![
            f(eps, 2),
            f(m.pages, 1),
            f(m.pages / exact_pages, 2),
            f(worst, 3),
            f(1.0 + eps, 2),
        ]);
    }
    table.print();
}

/// E16 — spatial intersection join (extension; the companion operation
/// the paper's conclusion points at). Claim: synchronized traversal reads
/// orders of magnitude fewer nodes than an index-nested-loop join.
pub fn e16() {
    let mut table = Table::new(
        "E16: intersection join vs index-nested-loop (rect data)",
        &[
            "N per side",
            "pairs",
            "join node reads",
            "nested-loop reads",
            "ratio",
            "time [ms]",
        ],
    );
    for &n in &[scaled(10_000), scaled(40_000)] {
        let a = Dataset::clustered(n, SEED + 15);
        // Grow points into small rectangles so intersections exist.
        let to_rects = |items: &[(nnq_geom::Rect<2>, nnq_rtree::RecordId)], grow: f64| {
            items
                .iter()
                .map(|(r, id)| {
                    let c = r.center();
                    (
                        nnq_geom::Rect::new(
                            nnq_geom::Point::new([c[0] - grow, c[1] - grow]),
                            nnq_geom::Point::new([c[0] + grow, c[1] + grow]),
                        ),
                        *id,
                    )
                })
                .collect::<Vec<_>>()
        };
        let a_items = to_rects(&a.items, 30.0);
        let b_items = to_rects(&Dataset::clustered(n, SEED + 16).items, 30.0);
        let left = build_tree(
            &a_items,
            BuildMethod::Bulk(BulkMethod::Str),
            QUERY_POOL_FRAMES,
        );
        let right = build_tree(
            &b_items,
            BuildMethod::Bulk(BulkMethod::Str),
            QUERY_POOL_FRAMES,
        );
        let start = Instant::now();
        let (pairs, stats) = nnq_core::intersection_join(&left.tree, &right.tree).unwrap();
        let elapsed = start.elapsed();
        // An index-nested-loop join runs one window query per left record;
        // estimate its node reads by sampling 200 of them.
        let mut sampled = 0u64;
        let sample = a_items.iter().step_by((a_items.len() / 200).max(1));
        let mut sample_count = 0u64;
        for (r, _) in sample {
            let mut iter = right.tree.window_iter(*r);
            while iter.next().is_some() {}
            sampled += iter.nodes_read();
            sample_count += 1;
        }
        let nested = sampled as f64 / sample_count as f64 * a_items.len() as f64;
        let join_reads = (stats.nodes_left + stats.nodes_right) as f64;
        table.row(vec![
            n.to_string(),
            pairs.len().to_string(),
            f(join_reads, 0),
            f(nested, 0),
            f(nested / join_reads, 1),
            f(elapsed.as_secs_f64() * 1e3, 0),
        ]);
    }
    table.print();
}

/// Runs every experiment in sequence, printing total wall time.
pub fn run_all() {
    let start = Instant::now();
    let fns: [(&str, fn()); 16] = [
        ("E1", e1),
        ("E2", e2),
        ("E3", e3),
        ("E4", e4),
        ("E5", e5),
        ("E6", e6),
        ("E7", e7),
        ("E8", e8),
        ("E9", e9),
        ("E10", e10),
        ("E11", e11),
        ("E12", e12),
        ("E13", e13),
        ("E14", e14),
        ("E15", e15),
        ("E16", e16),
    ];
    for (name, run) in fns {
        let t = Instant::now();
        run();
        eprintln!("[{name} finished in {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "\nAll experiments finished in {:.1}s (NNQ_SCALE = {}).",
        start.elapsed().as_secs_f64(),
        crate::scale()
    );
}

/// Ensures an otherwise-unused helper stays exercised.
#[allow(dead_code)]
fn _use_built(_: &BuiltTree) {}
