//! Tree construction and query measurement.

use crate::datasets::Dataset;
use nnq_core::{NnOptions, NnSearch, Refiner, SearchStats};
use nnq_geom::{Point, Rect, Segment};
use nnq_rtree::{BulkMethod, RTree, RTreeConfig, RecordId, SplitStrategy};
use nnq_storage::{BufferPool, LatencyDisk, LatencyProfile, MemDisk, PAGE_SIZE};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to construct the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildMethod {
    /// One-at-a-time insertion with the given split strategy.
    Dynamic(SplitStrategy),
    /// Bottom-up packing.
    Bulk(BulkMethod),
}

impl BuildMethod {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            BuildMethod::Dynamic(SplitStrategy::Linear) => "linear",
            BuildMethod::Dynamic(SplitStrategy::Quadratic) => "quadratic",
            BuildMethod::Dynamic(SplitStrategy::RStar) => "R*",
            BuildMethod::Bulk(BulkMethod::Str) => "STR",
            BuildMethod::Bulk(BulkMethod::Hilbert) => "hilbert",
            BuildMethod::Bulk(BulkMethod::LowX) => "low-x '85",
        }
    }

    /// All six build methods, for experiment E7.
    pub fn all() -> [BuildMethod; 6] {
        [
            BuildMethod::Dynamic(SplitStrategy::Linear),
            BuildMethod::Dynamic(SplitStrategy::Quadratic),
            BuildMethod::Dynamic(SplitStrategy::RStar),
            BuildMethod::Bulk(BulkMethod::Str),
            BuildMethod::Bulk(BulkMethod::Hilbert),
            BuildMethod::Bulk(BulkMethod::LowX),
        ]
    }
}

/// A tree plus the pool it lives on and how long it took to build.
pub struct BuiltTree {
    /// The index.
    pub tree: RTree<2>,
    /// Its buffer pool (shared handle; reset stats between phases).
    pub pool: Arc<BufferPool>,
    /// Wall-clock build time.
    pub build_time: Duration,
}

/// Builds a tree over `items` on an in-memory disk with a pool of
/// `pool_frames` frames.
pub fn build_tree(
    items: &[(Rect<2>, RecordId)],
    method: BuildMethod,
    pool_frames: usize,
) -> BuiltTree {
    build_tree_sharded(items, method, pool_frames, 1)
}

/// [`build_tree`] over a pool split into `shards` sub-pools (the
/// concurrent-read configuration benchmarked by `benches/parallel.rs`).
/// The tree is identical regardless of shard count; only latch layout and
/// per-shard eviction differ.
pub fn build_tree_sharded(
    items: &[(Rect<2>, RecordId)],
    method: BuildMethod,
    pool_frames: usize,
    shards: usize,
) -> BuiltTree {
    let pool = Arc::new(BufferPool::with_shards(
        Box::new(MemDisk::new(PAGE_SIZE)),
        pool_frames,
        shards,
    ));
    build_on_pool(pool, items, method)
}

/// [`build_tree`] over a latency-injecting in-memory disk with the pool's
/// prefetch workers running (the I/O-pipeline configuration benchmarked by
/// `benches/prefetch.rs`). Returns the latency handle so callers can dial
/// the injected device latency per measurement phase; the build itself
/// runs at zero injected latency.
pub fn build_tree_with_latency(
    items: &[(Rect<2>, RecordId)],
    method: BuildMethod,
    pool_frames: usize,
    prefetch_workers: usize,
) -> (BuiltTree, Arc<LatencyDisk<MemDisk>>) {
    let latency = Arc::new(LatencyDisk::new(
        MemDisk::new(PAGE_SIZE),
        LatencyProfile::symmetric_us(0),
    ));
    let mut pool = BufferPool::with_shards(Box::new(Arc::clone(&latency)), pool_frames, 1);
    pool.start_prefetch(prefetch_workers, 64);
    let built = build_on_pool(Arc::new(pool), items, method);
    (built, latency)
}

fn build_on_pool(
    pool: Arc<BufferPool>,
    items: &[(Rect<2>, RecordId)],
    method: BuildMethod,
) -> BuiltTree {
    let start = Instant::now();
    let tree = match method {
        BuildMethod::Dynamic(split) => {
            let tree = RTree::create(Arc::clone(&pool), RTreeConfig::with_split(split)).unwrap();
            for (mbr, rid) in items {
                tree.insert(mbr, *rid).unwrap();
            }
            tree
        }
        BuildMethod::Bulk(bulk) => RTree::bulk_load(
            Arc::clone(&pool),
            RTreeConfig::default(),
            items.to_vec(),
            bulk,
            1.0,
        )
        .unwrap(),
    };
    let build_time = start.elapsed();
    BuiltTree {
        tree,
        pool,
        build_time,
    }
}

/// Default pool size for query experiments: large enough to hold any tree
/// we build, so `logical_reads` equals the paper's "pages accessed" with an
/// unbounded buffer.
pub const QUERY_POOL_FRAMES: usize = 1 << 17;

/// Averaged per-query measurements over a query batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryMeasurement {
    /// Mean logical page reads per query (the paper's "pages accessed").
    pub pages: f64,
    /// Mean physical device reads per query (buffer misses).
    pub physical: f64,
    /// Mean tree nodes visited.
    pub nodes: f64,
    /// Mean leaves visited.
    pub leaves: f64,
    /// Mean entries pruned by strategy 1 (downward).
    pub pruned_downward: f64,
    /// Mean objects pruned by strategy 2.
    pub pruned_object: f64,
    /// Mean entries pruned by strategy 3 (upward).
    pub pruned_upward: f64,
    /// Mean exact distance computations.
    pub dist_computations: f64,
    /// Mean wall-clock time per query, microseconds.
    pub time_us: f64,
}

/// Runs `f` once per query, averaging its [`SearchStats`] and the pool's
/// page counters.
pub fn measure<F>(pool: &BufferPool, queries: &[Point<2>], mut f: F) -> QueryMeasurement
where
    F: FnMut(&Point<2>) -> SearchStats,
{
    assert!(!queries.is_empty());
    pool.reset_stats();
    let mut acc = QueryMeasurement::default();
    let start = Instant::now();
    for q in queries {
        let s = f(q);
        acc.nodes += s.nodes_visited as f64;
        acc.leaves += s.leaves_visited as f64;
        acc.pruned_downward += s.pruned_downward as f64;
        acc.pruned_object += s.pruned_object as f64;
        acc.pruned_upward += s.pruned_upward as f64;
        acc.dist_computations += s.dist_computations as f64;
    }
    let elapsed = start.elapsed();
    let n = queries.len() as f64;
    let pstats = pool.stats();
    acc.pages = pstats.logical_reads as f64 / n;
    acc.physical = pstats.physical_reads as f64 / n;
    acc.nodes /= n;
    acc.leaves /= n;
    acc.pruned_downward /= n;
    acc.pruned_object /= n;
    acc.pruned_upward /= n;
    acc.dist_computations /= n;
    acc.time_us = elapsed.as_secs_f64() * 1e6 / n;
    acc
}

/// Measures the branch-and-bound search on a built tree.
pub fn measure_knn(
    built: &BuiltTree,
    queries: &[Point<2>],
    k: usize,
    opts: NnOptions,
    segments: Option<&[Segment]>,
) -> QueryMeasurement {
    let search = NnSearch::with_options(&built.tree, opts);
    match segments {
        None => measure(&built.pool, queries, |q| {
            search.query_with_stats(q, k).unwrap().1
        }),
        Some(segs) => {
            let refiner = SegmentRefiner { segments: segs };
            measure(&built.pool, queries, |q| {
                search.query_refined(q, k, &refiner).unwrap().1
            })
        }
    }
}

/// Exact point-to-segment refinement against a segment table (the map
/// workload's geometry store).
pub struct SegmentRefiner<'a> {
    /// Segment table indexed by record id.
    pub segments: &'a [Segment],
}

impl Refiner<2> for SegmentRefiner<'_> {
    fn dist_sq(&self, record: RecordId, _mbr: &Rect<2>, q: &Point<2>) -> f64 {
        self.segments[record.0 as usize].dist_sq_to_point(q)
    }
}

/// Hardware threads available to this process (1 on the single-core hosts
/// this repo's recorded trajectories come from).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Renders the shared `"config"` header object embedded in every
/// `BENCH_*.json` trajectory file. Caller-supplied fields come first
/// (values must already be valid JSON fragments — quote strings yourself),
/// followed by the host's hardware thread count; on a 1-thread host a
/// `host_note` is added so readers of the trajectory don't expect
/// thread-scaling or I/O-overlap speedups from those runs. Defining the
/// header in one place keeps every trajectory file's metadata identical
/// in shape and spelling.
pub fn config_header_json(fields: &[(&str, String)]) -> String {
    let mut lines: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    let threads = host_threads();
    lines.push(format!("\"host_hardware_threads\": {threads}"));
    if threads == 1 {
        lines.push(
            "\"host_note\": \"single hardware thread: thread-scaling and I/O-overlap speedups \
             are not expected on this host\""
                .into(),
        );
    }
    format!("{{\n    {}\n  }}", lines.join(",\n    "))
}

/// Convenience: query points for a dataset (uniform over the world).
pub fn queries_for(n: usize, seed: u64) -> Vec<Point<2>> {
    nnq_workloads::uniform_queries(n, &nnq_workloads::default_bounds(), seed)
}

/// Builds the default quadratic-split tree for a dataset with a
/// query-sized pool.
pub fn default_build(dataset: &Dataset) -> BuiltTree {
    build_tree(
        &dataset.items,
        BuildMethod::Dynamic(SplitStrategy::Quadratic),
        QUERY_POOL_FRAMES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnq_core::MbrRefiner;

    #[test]
    fn build_and_measure_roundtrip() {
        let d = Dataset::uniform(2000, 3);
        let built = default_build(&d);
        assert_eq!(built.tree.len(), 2000);
        let qs = queries_for(50, 1);
        let m = measure_knn(&built, &qs, 4, NnOptions::default(), None);
        assert!(m.pages > 0.0);
        assert!(m.nodes >= 1.0);
        assert!(m.time_us > 0.0);
        // Every visited node is one logical page read.
        assert!((m.pages - m.nodes).abs() < 1e-9);
    }

    #[test]
    fn all_build_methods_produce_equivalent_trees() {
        let d = Dataset::uniform(3000, 9);
        let qs = queries_for(20, 2);
        let reference: Vec<Vec<f64>> = {
            let built = default_build(&d);
            qs.iter()
                .map(|q| {
                    NnSearch::new(&built.tree)
                        .query(q, 5)
                        .unwrap()
                        .iter()
                        .map(|n| n.dist_sq)
                        .collect()
                })
                .collect()
        };
        for method in BuildMethod::all() {
            let built = build_tree(&d.items, method, QUERY_POOL_FRAMES);
            built.tree.validate().unwrap();
            for (q, want) in qs.iter().zip(&reference) {
                let got: Vec<f64> = NnSearch::new(&built.tree)
                    .query(q, 5)
                    .unwrap()
                    .iter()
                    .map(|n| n.dist_sq)
                    .collect();
                assert_eq!(&got, want, "{}", method.label());
            }
        }
    }

    #[test]
    fn segment_refiner_matches_direct_geometry() {
        let d = Dataset::tiger(500, 4);
        let segs = d.segments.as_ref().unwrap();
        let refiner = SegmentRefiner { segments: segs };
        let q = Point::new([50_000.0, 50_000.0]);
        let d0 = refiner.dist_sq(RecordId(0), &segs[0].mbr(), &q);
        assert_eq!(d0, segs[0].dist_sq_to_point(&q));
        let _ = MbrRefiner; // silence unused-import lint in cfg(test)
    }
}
