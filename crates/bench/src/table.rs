//! Fixed-width table printing for the repro binaries.

/// A simple right-aligned text table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as `a/b = r×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}×", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["k", "pages"]);
        t.row(vec!["1".into(), "12.5".into()]);
        t.row(vec!["25".into(), "7.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains(" k"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title line + leading blank.
        assert_eq!(lines.len(), 6);
        // Right alignment: "25" ends where "k" header column ends.
        assert!(lines[5].starts_with("25"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(ratio(10.0, 4.0), "2.50×");
        assert_eq!(ratio(1.0, 0.0), "∞");
    }
}
