//! Shared harness for the RKV'95 reproduction experiments (E1–E16).
//!
//! Each experiment has a `repro_eN` binary that prints the paper-style
//! table or series; this library holds everything they share — dataset
//! construction, tree building, query measurement, and table formatting.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p nnq-bench --release --bin repro_all
//! ```
//!
//! Set `NNQ_SCALE` (e.g. `NNQ_SCALE=0.1`) to shrink dataset sizes for a
//! quick smoke run; reported trends are the same, absolute numbers move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod table;

/// Global size multiplier from the `NNQ_SCALE` environment variable
/// (default 1.0, clamped to `[0.01, 10]`).
pub fn scale() -> f64 {
    std::env::var("NNQ_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 10.0)
}

/// Applies [`scale`] to a nominal dataset size, keeping at least 256 items.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(256)
}
