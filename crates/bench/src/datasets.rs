//! Experiment datasets: uniform points, clustered points, and the
//! TIGER-like road network (the stand-in for the paper's real map data).

use nnq_geom::{Rect, Segment};
use nnq_rtree::RecordId;
use nnq_workloads::{
    default_bounds, gaussian_clusters, points_to_items, segments_to_items, tiger_like_segments,
    uniform_points, TigerParams,
};

/// A named dataset of `(MBR, record)` items, plus the exact segment
/// geometry when the objects are road segments.
pub struct Dataset {
    /// Short name used in table headers.
    pub name: &'static str,
    /// Items to index.
    pub items: Vec<(Rect<2>, RecordId)>,
    /// Exact geometry for refinement (`None` for point data).
    pub segments: Option<Vec<Segment>>,
}

impl Dataset {
    /// `n` uniform random points over the default world.
    pub fn uniform(n: usize, seed: u64) -> Self {
        Self {
            name: "uniform",
            items: points_to_items(&uniform_points(n, &default_bounds(), seed)),
            segments: None,
        }
    }

    /// `n` points in Gaussian clusters (64 clusters, σ = 1.5 km on the
    /// 100 km world) — the skewed synthetic workload.
    pub fn clustered(n: usize, seed: u64) -> Self {
        Self {
            name: "clustered",
            items: points_to_items(&gaussian_clusters(n, 64, 1_500.0, &default_bounds(), seed)),
            segments: None,
        }
    }

    /// `n` TIGER-like road segments (see `nnq-workloads`); indexes segment
    /// MBRs and keeps exact geometry for refinement, as RKV'95 does with
    /// real TIGER data.
    pub fn tiger(n: usize, seed: u64) -> Self {
        let segments = tiger_like_segments(&TigerParams {
            segments: n,
            seed,
            ..TigerParams::default()
        });
        Self {
            name: "tiger-like",
            items: segments_to_items(&segments),
            segments: Some(segments),
        }
    }

    /// The standard trio used by experiments E1–E3.
    pub fn standard_trio(n: usize, seed: u64) -> Vec<Dataset> {
        vec![
            Self::uniform(n, seed),
            Self::clustered(n, seed + 1),
            Self::tiger(n, seed + 2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_requested_sizes() {
        for d in Dataset::standard_trio(1000, 5) {
            assert_eq!(d.items.len(), 1000, "{}", d.name);
        }
    }

    #[test]
    fn tiger_carries_geometry() {
        let d = Dataset::tiger(500, 1);
        let segs = d.segments.as_ref().unwrap();
        assert_eq!(segs.len(), d.items.len());
        // Record ids index the segment slice.
        for (mbr, rid) in &d.items {
            assert_eq!(segs[rid.0 as usize].mbr(), *mbr);
        }
    }
}
