//! Experiment-level kernel equivalence: the E1–E3-style measurement
//! pipeline must report the same page accesses, node visits, and pruning
//! counters regardless of `KernelMode` — the batch kernels may only change
//! `time_us`. This is the acceptance check that the paper's reproduced
//! figures are kernel-independent.

use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, measure_knn, queries_for, QueryMeasurement};
use nnq_core::{AblOrdering, KernelMode, NnOptions};

/// Every non-time field must match exactly (the counters come from integer
/// sums divided by the same query count, so `==` is the right comparison).
fn assert_counters_equal(a: &QueryMeasurement, b: &QueryMeasurement, what: &str) {
    assert_eq!(a.pages, b.pages, "{what}: pages");
    assert_eq!(a.physical, b.physical, "{what}: physical reads");
    assert_eq!(a.nodes, b.nodes, "{what}: nodes visited");
    assert_eq!(a.leaves, b.leaves, "{what}: leaves visited");
    assert_eq!(a.pruned_downward, b.pruned_downward, "{what}: S1 pruned");
    assert_eq!(a.pruned_object, b.pruned_object, "{what}: S2 pruned");
    assert_eq!(a.pruned_upward, b.pruned_upward, "{what}: S3 pruned");
    assert_eq!(
        a.dist_computations, b.dist_computations,
        "{what}: distance computations"
    );
}

fn with_kernel(opts: NnOptions, kernel: KernelMode) -> NnOptions {
    NnOptions { kernel, ..opts }
}

/// E1-style: pages accessed vs k, on the dataset trio.
#[test]
fn e1_page_accesses_are_kernel_independent() {
    let datasets = [
        ("uniform", Dataset::uniform(2_000, 7)),
        ("clustered", Dataset::clustered(2_000, 8)),
        ("tiger", Dataset::tiger(2_000, 9)),
    ];
    let queries = queries_for(25, 5);
    for (name, dataset) in &datasets {
        let built = default_build(dataset);
        for k in [1usize, 16] {
            let segs = dataset.segments.as_deref();
            let scalar = measure_knn(
                &built,
                &queries,
                k,
                with_kernel(NnOptions::default(), KernelMode::Scalar),
                segs,
            );
            let batch = measure_knn(
                &built,
                &queries,
                k,
                with_kernel(NnOptions::default(), KernelMode::Batch),
                segs,
            );
            assert_counters_equal(&scalar, &batch, &format!("E1 {name} k={k}"));
        }
    }
}

/// E2-style: both ABL orderings.
#[test]
fn e2_orderings_are_kernel_independent() {
    let dataset = Dataset::uniform(2_500, 17);
    let built = default_build(&dataset);
    let queries = queries_for(25, 6);
    for ordering in [AblOrdering::MinDist, AblOrdering::MinMaxDist] {
        let opts = NnOptions::with_ordering(ordering);
        let scalar = measure_knn(
            &built,
            &queries,
            10,
            with_kernel(opts, KernelMode::Scalar),
            None,
        );
        let batch = measure_knn(
            &built,
            &queries,
            10,
            with_kernel(opts, KernelMode::Batch),
            None,
        );
        assert_counters_equal(&scalar, &batch, &format!("E2 {ordering:?}"));
    }
}

/// E3-style: the pruning-strategy ablation grid.
#[test]
fn e3_ablation_is_kernel_independent() {
    let dataset = Dataset::clustered(2_500, 27);
    let built = default_build(&dataset);
    let queries = queries_for(25, 7);
    let variants: Vec<(&str, NnOptions)> = vec![
        ("full", NnOptions::default()),
        ("none", NnOptions::no_pruning()),
        (
            "s1-only",
            NnOptions {
                prune_object: false,
                prune_upward: false,
                ..NnOptions::default()
            },
        ),
        (
            "s2-only",
            NnOptions {
                prune_downward: false,
                prune_upward: false,
                ..NnOptions::default()
            },
        ),
        (
            "s3-only",
            NnOptions {
                prune_downward: false,
                prune_object: false,
                ..NnOptions::default()
            },
        ),
    ];
    for (name, opts) in &variants {
        let scalar = measure_knn(
            &built,
            &queries,
            10,
            with_kernel(*opts, KernelMode::Scalar),
            None,
        );
        let batch = measure_knn(
            &built,
            &queries,
            10,
            with_kernel(*opts, KernelMode::Batch),
            None,
        );
        assert_counters_equal(&scalar, &batch, &format!("E3 {name}"));
    }
}
