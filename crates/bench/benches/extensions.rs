//! Criterion bench for the extension queries: radius, metric kNN,
//! farthest, incremental, and the kNN join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, queries_for};
use nnq_core::{farthest_knn, metric_knn, within_radius, IncrementalNn, MbrRefiner};
use nnq_geom::Metric;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let dataset = Dataset::uniform(20_000, 19);
    let built = default_build(&dataset);
    let tree = &built.tree;
    let queries = queries_for(64, 21);
    let mut group = c.benchmark_group("extensions");

    group.bench_function("radius_2km", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(within_radius(tree, q, 2_000.0, &MbrRefiner).unwrap())
        })
    });

    for (name, metric) in [("l1", Metric::Manhattan), ("linf", Metric::Chebyshev)] {
        group.bench_with_input(BenchmarkId::new("metric_knn", name), &metric, |b, &m| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(metric_knn(tree, q, 10, m).unwrap())
            })
        });
    }

    group.bench_function("farthest_k3", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(farthest_knn(tree, q, 3, &MbrRefiner).unwrap())
        })
    });

    group.bench_function("incremental_take20", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            let items: Vec<_> = IncrementalNn::new(tree, q, MbrRefiner)
                .take(20)
                .collect::<nnq_core::Result<_>>()
                .unwrap();
            black_box(items)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
