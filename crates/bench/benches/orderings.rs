//! Criterion bench for experiment E2: MINDIST vs MINMAXDIST ABL ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, queries_for};
use nnq_core::{AblOrdering, NnOptions, NnSearch};
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let dataset = Dataset::clustered(20_000, 3);
    let built = default_build(&dataset);
    let queries = queries_for(64, 5);
    let mut group = c.benchmark_group("abl_ordering");
    for (name, ordering) in [
        ("mindist", AblOrdering::MinDist),
        ("minmaxdist", AblOrdering::MinMaxDist),
    ] {
        let search = NnSearch::with_options(&built.tree, NnOptions::with_ordering(ordering));
        for k in [1usize, 10] {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(search.query(q, k).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
