//! Hilbert-range partitioned multi-tree vs the single tree: build time
//! and page-access overhead at P ∈ {1, 4, 16, 64}.
//!
//! Builds one Hilbert bulk-loaded reference tree and, for each partition
//! count, a [`PartitionedTree`] over the same dataset. Every partitioned
//! configuration answers the same kNN batch through the scatter-gather
//! path (MINDIST-ordered partition schedule, one shared k-th-distance
//! bound) and must return results bit-identical to the single tree; at
//! P = 1 the summed logical reads must match the single tree's exactly.
//! For P > 1 the recorded `pages_overhead` is the price of partitioning:
//! every *visited* partition re-descends its own root path, while the
//! MINDIST schedule prunes partitions that cannot contribute. Writes the
//! sweep to `BENCH_PARTITION.json` at the repo root.
//!
//! Not a criterion harness: the measured unit is a whole batch and the
//! output is the JSON trajectory file.

use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{config_header_json, host_threads, queries_for, QUERY_POOL_FRAMES};
use nnq_core::{partitioned_knn, MbrRefiner, NnOptions, NnSearch, QueryCursor};
use nnq_rtree::{BulkMethod, PartitionedTree, RTree, RTreeConfig};
use nnq_storage::{BufferPool, MemDisk, PAGE_SIZE};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 20_000;
const N_QUERIES: usize = 500;
const K: usize = 10;
const PARTITIONS: [usize; 4] = [1, 4, 16, 64];

struct Cell {
    partitions: usize,
    build_ms: f64,
    pages_per_query: f64,
    pages_overhead: f64,
    visited_per_query: f64,
    pruned_per_query: f64,
    rounds_per_query: f64,
    time_us_per_query: f64,
}

fn main() {
    let dataset = Dataset::uniform(N, 11);
    let queries = queries_for(N_QUERIES, 7);

    // Single-tree reference: same Hilbert bulk load, same pool sizing.
    let ref_pool = Arc::new(BufferPool::new(
        Box::new(MemDisk::new(PAGE_SIZE)),
        QUERY_POOL_FRAMES,
    ));
    let ref_start = Instant::now();
    let reference = RTree::<2>::bulk_load(
        Arc::clone(&ref_pool),
        RTreeConfig::default(),
        dataset.items.clone(),
        BulkMethod::Hilbert,
        1.0,
    )
    .unwrap();
    let ref_build_ms = ref_start.elapsed().as_secs_f64() * 1e3;

    let search = NnSearch::new(&reference);
    let mut cursor = QueryCursor::new();
    ref_pool.reset_stats();
    let ref_results: Vec<Vec<(u64, u64)>> = queries
        .iter()
        .map(|q| {
            search
                .query_refined_with(&mut cursor, q, K, &MbrRefiner)
                .unwrap()
                .0
                .iter()
                .map(|n| (n.record.0, n.dist_sq.to_bits()))
                .collect()
        })
        .collect();
    let ref_pages = ref_pool.stats().logical_reads as f64 / N_QUERIES as f64;
    eprintln!("single tree: build {ref_build_ms:.0} ms, {ref_pages:.1} pages/query");

    let mut cells: Vec<Cell> = Vec::new();
    for &p in &PARTITIONS {
        // Same total frame budget as the single tree, split across the
        // partitions' pools; pool construction is outside the timed
        // window, mirroring the single-tree measurement above.
        let frames_per_part = (QUERY_POOL_FRAMES / p).max(1 << 10);
        let pools: Vec<Arc<BufferPool>> = (0..p)
            .map(|_| {
                Arc::new(BufferPool::new(
                    Box::new(MemDisk::new(PAGE_SIZE)),
                    frames_per_part,
                ))
            })
            .collect();
        let start = Instant::now();
        let tree = PartitionedTree::bulk_load_on(
            pools,
            RTreeConfig::default(),
            dataset.items.clone(),
            BulkMethod::Hilbert,
            1.0,
            host_threads(),
        )
        .unwrap();
        let build_ms = start.elapsed().as_secs_f64() * 1e3;

        tree.reset_stats();
        let mut visited = 0u64;
        let mut pruned = 0u64;
        let mut rounds = 0u64;
        let q_start = Instant::now();
        for (q, want) in queries.iter().zip(&ref_results) {
            let (found, stats) =
                partitioned_knn(&tree, q, K, NnOptions::default(), &MbrRefiner, 1).unwrap();
            let got: Vec<(u64, u64)> = found
                .iter()
                .map(|n| (n.record.0, n.dist_sq.to_bits()))
                .collect();
            assert_eq!(&got, want, "P={p}: results diverged from single tree");
            visited += stats.partitions_visited;
            pruned += stats.partitions_pruned;
            rounds += stats.rounds;
        }
        let time_us = q_start.elapsed().as_secs_f64() * 1e6 / N_QUERIES as f64;
        let pages = tree.pool_stats().logical_reads as f64 / N_QUERIES as f64;
        if p == 1 {
            // One partition in Hilbert order IS the single tree: the page
            // count must be bit-identical, not merely close.
            assert_eq!(
                pages * N_QUERIES as f64,
                ref_pages * N_QUERIES as f64,
                "P=1 logical reads diverged from the single tree"
            );
        }
        let overhead = pages / ref_pages;
        eprintln!(
            "P={p}: build {build_ms:.0} ms, {pages:.1} pages/query ({overhead:.2}x single), \
             {:.2} visited + {:.2} pruned /query",
            visited as f64 / N_QUERIES as f64,
            pruned as f64 / N_QUERIES as f64,
        );
        cells.push(Cell {
            partitions: p,
            build_ms,
            pages_per_query: pages,
            pages_overhead: overhead,
            visited_per_query: visited as f64 / N_QUERIES as f64,
            pruned_per_query: pruned as f64 / N_QUERIES as f64,
            rounds_per_query: rounds as f64 / N_QUERIES as f64,
            time_us_per_query: time_us,
        });
    }

    let json = render_json(&cells, ref_build_ms, ref_pages);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PARTITION.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
}

fn render_json(cells: &[Cell], ref_build_ms: f64, ref_pages: f64) -> String {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = write!(
            rows,
            r#"
    {{ "partitions": {}, "build_ms": {:.1}, "pages_per_query": {:.2}, "pages_overhead_vs_single": {:.3}, "partitions_visited_per_query": {:.2}, "partitions_pruned_per_query": {:.2}, "rounds_per_query": {:.2}, "time_us_per_query": {:.1} }}{sep}"#,
            c.partitions,
            c.build_ms,
            c.pages_per_query,
            c.pages_overhead,
            c.visited_per_query,
            c.pruned_per_query,
            c.rounds_per_query,
            c.time_us_per_query,
        );
    }
    let config = config_header_json(&[
        ("dataset", "\"uniform\"".into()),
        ("n", N.to_string()),
        ("queries", N_QUERIES.to_string()),
        ("k", K.to_string()),
        ("build", "\"bulk/hilbert\"".into()),
        ("pool_frames", QUERY_POOL_FRAMES.to_string()),
    ]);
    format!(
        r#"{{
  "bench": "partition",
  "description": "Hilbert-range partitioned multi-tree vs one tree (crates/bench/benches/partition.rs): P independent R-trees by Hilbert key range, scatter-gather kNN with a MINDIST-ordered partition schedule and one shared k-th-distance bound, sequential queries. Every cell's results are asserted bit-identical to the single tree, and P=1 must match its logical reads exactly. pages_overhead_vs_single is the partitioning tax: visited partitions re-descend their own root paths, pruned partitions cost nothing. The single tree's pool_frames budget is split evenly across the partitions' pools, and build_ms times the bulk load only (pool construction excluded, as for the single tree). Build parallelizes across partitions (bounded by host_hardware_threads).",
  "config": {config},
  "single_tree": {{ "build_ms": {ref_build_ms:.1}, "pages_per_query": {ref_pages:.2} }},
  "sweep": [{rows}
  ]
}}
"#
    )
}
