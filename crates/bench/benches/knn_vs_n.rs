//! Criterion bench for experiment E4: query latency vs dataset size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{build_tree, queries_for, BuildMethod, QUERY_POOL_FRAMES};
use nnq_core::NnSearch;
use nnq_rtree::BulkMethod;
use std::hint::black_box;

fn bench_knn_vs_n(c: &mut Criterion) {
    let queries = queries_for(64, 13);
    let mut group = c.benchmark_group("knn_vs_n");
    for exp in [12u32, 14, 16, 18] {
        let n = 1usize << exp;
        let dataset = Dataset::uniform(n, u64::from(exp));
        let built = build_tree(
            &dataset.items,
            BuildMethod::Bulk(BulkMethod::Str),
            QUERY_POOL_FRAMES,
        );
        let search = NnSearch::new(&built.tree);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(search.query(q, 10).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn_vs_n);
criterion_main!(benches);
