//! Cold vs warm decoded-node cache: the same kNN queries against the
//! paged backend, once with the cache dropped before every query and once
//! against a primed cache. The pool is query-sized in both runs, so every
//! page access is a buffer hit either way — the difference isolates the
//! decode + per-visit entry allocation that the node cache removes.
//!
//! The measured trajectory is recorded in BENCH_CACHE.json at the repo
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, queries_for};
use nnq_core::{MbrRefiner, NnSearch, QueryCursor};
use std::hint::black_box;

fn bench_node_cache(c: &mut Criterion) {
    let dataset = Dataset::uniform(20_000, 11);
    let built = default_build(&dataset);
    let queries = queries_for(64, 7);
    let k = 10;
    let search = NnSearch::new(&built.tree);
    let mut group = c.benchmark_group("node_cache");

    // Cold: every query decodes each node it visits from the pool frame.
    // The clear is timed, but dropping a few hundred cached Arcs is small
    // next to re-decoding every visited node's entry array.
    group.bench_function("cold", |b| {
        let mut cursor = QueryCursor::new();
        let mut i = 0;
        b.iter(|| {
            built.tree.store().clear_node_cache();
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(
                search
                    .query_refined_with(&mut cursor, q, k, &MbrRefiner)
                    .unwrap(),
            )
        })
    });

    // Warm: prime the cache with one pass, then the same queries are
    // served decode-free (zero allocations on the steady-state path).
    {
        let mut cursor = QueryCursor::new();
        for q in &queries {
            search
                .query_refined_with(&mut cursor, q, k, &MbrRefiner)
                .unwrap();
        }
    }
    group.bench_function("warm", |b| {
        let mut cursor = QueryCursor::new();
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(
                search
                    .query_refined_with(&mut cursor, q, k, &MbrRefiner)
                    .unwrap(),
            )
        })
    });

    group.finish();

    let stats = built.tree.store().cache_stats();
    println!(
        "warm-path cache: {} hits / {} reads ({:.1}% decode-free)",
        stats.hits,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0
    );
}

criterion_group!(benches, bench_node_cache);
criterion_main!(benches);
