//! Criterion bench for experiment E1: query latency as a function of k on
//! the three standard datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, queries_for, SegmentRefiner};
use nnq_core::NnSearch;
use std::hint::black_box;

fn bench_knn_vs_k(c: &mut Criterion) {
    let n = 20_000;
    let queries = queries_for(64, 7);
    let mut group = c.benchmark_group("knn_vs_k");
    for dataset in Dataset::standard_trio(n, 11) {
        let built = default_build(&dataset);
        let search = NnSearch::new(&built.tree);
        for k in [1usize, 5, 10, 25] {
            group.bench_with_input(BenchmarkId::new(dataset.name, k), &k, |b, &k| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    match dataset.segments.as_deref() {
                        Some(segs) => {
                            let refiner = SegmentRefiner { segments: segs };
                            black_box(search.query_refined(q, k, &refiner).unwrap())
                        }
                        None => black_box(search.query_with_stats(q, k).unwrap()),
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knn_vs_k);
criterion_main!(benches);
