//! Scalar vs batched SoA distance kernels.
//!
//! Two measurements:
//!
//! 1. `node_pass` — the isolated per-node cost: computing `MINDIST²` and
//!    `MINMAXDIST²` for every entry of one decoded node (fanout-sized
//!    entry array), as the branch-and-bound traversal does at each
//!    internal node. Scalar iterates entry-by-entry; batch runs one
//!    vectorizable pass per metric over the node's SoA view.
//! 2. `knn_kernel` — the end-to-end effect: warm-cache kNN queries on the
//!    paged backend under `KernelMode::Scalar` vs `KernelMode::Batch`
//!    (same dataset/queries/k as the `node_cache` bench, so the numbers
//!    are comparable).
//!
//! The measured trajectory is recorded in BENCH_KERNELS.json at the repo
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{default_build, queries_for};
use nnq_core::{KernelMode, MbrRefiner, NnOptions, NnSearch, QueryCursor};
use nnq_geom::{
    mindist_sq, mindist_sq_batch, minmaxdist_sq, minmaxdist_sq_batch, Point, Rect, SoaRects,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Entries per simulated node — a realistic internal-node fanout for the
/// 2-D entry encoding at the default page size.
const FANOUT: usize = 102;

fn bench_node_pass(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let rects: Vec<Rect<2>> = (0..FANOUT)
        .map(|_| {
            let x = rng.random_range(0.0..100.0);
            let y = rng.random_range(0.0..100.0);
            Rect::new(
                Point::new([x, y]),
                Point::new([
                    x + rng.random_range(0.0..5.0),
                    y + rng.random_range(0.0..5.0),
                ]),
            )
        })
        .collect();
    let soa = SoaRects::from_rects(rects.iter());
    let queries: Vec<Point<2>> = (0..16)
        .map(|_| Point::new([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
        .collect();

    let mut group = c.benchmark_group("node_pass");
    group.bench_function("scalar", |b| {
        let mut mindists: Vec<f64> = Vec::with_capacity(FANOUT);
        let mut minmaxes: Vec<f64> = Vec::with_capacity(FANOUT);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            mindists.clear();
            minmaxes.clear();
            for r in &rects {
                mindists.push(mindist_sq(q, r));
                minmaxes.push(minmaxdist_sq(q, r));
            }
            black_box((mindists.last().copied(), minmaxes.last().copied()))
        })
    });
    group.bench_function("batch", |b| {
        let mut mindists: Vec<f64> = Vec::with_capacity(FANOUT);
        let mut minmaxes: Vec<f64> = Vec::with_capacity(FANOUT);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            mindist_sq_batch(q, &soa, &mut mindists);
            minmaxdist_sq_batch(q, &soa, &mut minmaxes);
            black_box((mindists.last().copied(), minmaxes.last().copied()))
        })
    });
    group.finish();
}

fn bench_knn_kernel(c: &mut Criterion) {
    let dataset = Dataset::uniform(20_000, 11);
    let built = default_build(&dataset);
    let queries = queries_for(64, 7);
    let k = 10;

    // Prime the page pool and the decoded-node cache so both modes run
    // decode-free and the kernel cost is the only difference.
    {
        let search = NnSearch::new(&built.tree);
        let mut cursor = QueryCursor::new();
        for q in &queries {
            search
                .query_refined_with(&mut cursor, q, k, &MbrRefiner)
                .unwrap();
        }
    }

    let mut group = c.benchmark_group("knn_kernel");
    for kernel in [KernelMode::Scalar, KernelMode::Batch] {
        let search = NnSearch::with_options(&built.tree, NnOptions::with_kernel(kernel));
        group.bench_function(kernel.label(), |b| {
            let mut cursor = QueryCursor::new();
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(
                    search
                        .query_refined_with(&mut cursor, q, k, &MbrRefiner)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_pass, bench_knn_kernel);
criterion_main!(benches);
