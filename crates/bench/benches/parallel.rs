//! Concurrent batch-kNN throughput: threads × pool shards, warm and cold.
//!
//! Sweeps the work-stealing `par_knn_batch` scheduler over threads ∈
//! {1, 2, 4, 8} and buffer-pool shards ∈ {1, 8} on the paged backend,
//! warm (node cache + pool primed) and cold (both dropped before every
//! repetition). Reports queries/sec and the speedup curve relative to
//! one thread of the same shard configuration, and writes the whole grid
//! to `BENCH_PARALLEL.json` at the repo root.
//!
//! Not a criterion harness: the measured unit is a whole batch (seconds,
//! not nanoseconds) and the output is the JSON trajectory file.

use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{
    build_tree_sharded, config_header_json, queries_for, BuildMethod, QUERY_POOL_FRAMES,
};
use nnq_core::{par_knn_batch, MbrRefiner, NnOptions};
use nnq_rtree::SplitStrategy;
use std::fmt::Write as _;
use std::time::Instant;

const N: usize = 20_000;
const N_QUERIES: usize = 2_000;
const K: usize = 10;
const REPS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: [usize; 2] = [1, 8];

struct Cell {
    shards: usize,
    threads: usize,
    warm_qps: f64,
    cold_qps: f64,
}

fn main() {
    let dataset = Dataset::uniform(N, 11);
    let queries = queries_for(N_QUERIES, 7);
    let mut cells: Vec<Cell> = Vec::new();

    for &shards in &SHARDS {
        let built = build_tree_sharded(
            &dataset.items,
            BuildMethod::Dynamic(SplitStrategy::Quadratic),
            QUERY_POOL_FRAMES,
            shards,
        );
        // Reference results once per configuration: every cell must agree.
        let reference = par_knn_batch(
            &built.tree,
            &queries,
            K,
            NnOptions::default(),
            &MbrRefiner,
            1,
        )
        .unwrap();

        for &threads in &THREADS {
            // Warm: everything primed by the reference pass (and kept
            // warm by the repetitions themselves). Best of REPS.
            let mut warm_qps = 0f64;
            for _ in 0..REPS {
                let start = Instant::now();
                let out = par_knn_batch(
                    &built.tree,
                    &queries,
                    K,
                    NnOptions::default(),
                    &MbrRefiner,
                    threads,
                )
                .unwrap();
                let qps = N_QUERIES as f64 / start.elapsed().as_secs_f64();
                warm_qps = warm_qps.max(qps);
                assert_eq!(out.len(), reference.len());
                for (a, b) in out.iter().zip(&reference) {
                    assert!(
                        a.iter().map(|n| n.dist_sq).eq(b.iter().map(|n| n.dist_sq)),
                        "results diverged at shards={shards} threads={threads}"
                    );
                }
            }

            // Cold: decoded-node cache and pool frames dropped before
            // every repetition, so each traversal decodes and re-reads
            // from the (in-memory) device.
            let mut cold_qps = 0f64;
            for _ in 0..REPS {
                built.tree.store().clear_node_cache();
                built.pool.clear_cache().unwrap();
                let start = Instant::now();
                par_knn_batch(
                    &built.tree,
                    &queries,
                    K,
                    NnOptions::default(),
                    &MbrRefiner,
                    threads,
                )
                .unwrap();
                cold_qps = cold_qps.max(N_QUERIES as f64 / start.elapsed().as_secs_f64());
            }

            eprintln!(
                "shards={shards} threads={threads}: warm {warm_qps:.0} q/s, cold {cold_qps:.0} q/s"
            );
            cells.push(Cell {
                shards,
                threads,
                warm_qps,
                cold_qps,
            });
        }
    }

    let json = render_json(&cells);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PARALLEL.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
}

fn render_json(cells: &[Cell]) -> String {
    let base_qps = |shards: usize, warm: bool| -> f64 {
        cells
            .iter()
            .find(|c| c.shards == shards && c.threads == 1)
            .map(|c| if warm { c.warm_qps } else { c.cold_qps })
            .unwrap_or(1.0)
    };
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = write!(
            rows,
            r#"
    {{ "shards": {}, "threads": {}, "warm_qps": {:.0}, "cold_qps": {:.0}, "warm_speedup_vs_1t": {:.2}, "cold_speedup_vs_1t": {:.2} }}{sep}"#,
            c.shards,
            c.threads,
            c.warm_qps,
            c.cold_qps,
            c.warm_qps / base_qps(c.shards, true),
            c.cold_qps / base_qps(c.shards, false),
        );
    }
    let config = config_header_json(&[
        ("dataset", "\"uniform\"".into()),
        ("n", N.to_string()),
        ("queries", N_QUERIES.to_string()),
        ("k", K.to_string()),
        ("build", "\"dynamic/quadratic\"".into()),
        ("pool_frames", QUERY_POOL_FRAMES.to_string()),
    ]);
    format!(
        r#"{{
  "bench": "parallel",
  "description": "Work-stealing par_knn_batch over the paged backend (crates/bench/benches/parallel.rs): threads x buffer-pool shards, warm (node cache + pool primed) and cold (both dropped each repetition). queries/sec is the full-batch rate, best of {REPS} repetitions; speedups are relative to 1 thread of the same shard configuration. Thread-count speedup is bounded by the host's hardware parallelism recorded in host_hardware_threads.",
  "config": {config},
  "grid": [{rows}
  ]
}}
"#
    )
}
