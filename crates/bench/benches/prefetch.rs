//! ABL-guided prefetch under injected I/O latency: latency × hint depth,
//! warm and cold.
//!
//! Sweeps the asynchronous prefetch pipeline over injected device latency
//! ∈ {0, 50, 200 µs} and hint depth ∈ {0, 2, 8} on the paged backend with
//! a `LatencyDisk`-wrapped in-memory device, warm (pool + node cache
//! primed) and cold (both dropped before every repetition). Every cell is
//! checked bit-identical to the prefetch-off reference, and the cold cells
//! record the pipeline's own counters (issued / useful / wasted /
//! dropped). Writes the whole grid to `BENCH_PREFETCH.json` at the repo
//! root.
//!
//! The speedup assertion (depth-8 beats depth-0 cold at the highest
//! latency) only fires on hosts with ≥ 2 hardware threads: with a single
//! hardware thread the background I/O workers cannot overlap the demand
//! fetch, so the pipeline is correct but cannot be faster. The host's
//! parallelism is recorded in the JSON either way.
//!
//! Not a criterion harness: the measured unit is a whole batch (latencies
//! are milliseconds, not nanoseconds) and the output is the JSON file.

use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{
    build_tree_with_latency, config_header_json, host_threads, queries_for, BuildMethod,
    QUERY_POOL_FRAMES,
};
use nnq_core::{MbrRefiner, NnOptions, NnSearch, PrefetchPolicy, QueryCursor};
use nnq_rtree::SplitStrategy;
use nnq_storage::LatencyProfile;
use std::fmt::Write as _;
use std::time::Instant;

const N: usize = 20_000;
const N_QUERIES: usize = 200;
const K: usize = 10;
const REPS: usize = 2;
const PREFETCH_WORKERS: usize = 2;
const LAT_US: [u64; 3] = [0, 50, 200];
const DEPTHS: [usize; 3] = [0, 2, 8];

struct Cell {
    lat_us: u64,
    depth: usize,
    warm_ms: f64,
    cold_ms: f64,
    issued: u64,
    useful: u64,
    wasted: u64,
    dropped: u64,
}

fn main() {
    let dataset = Dataset::uniform(N, 11);
    let queries = queries_for(N_QUERIES, 7);
    let cores = host_threads();
    let (built, latency) = build_tree_with_latency(
        &dataset.items,
        BuildMethod::Dynamic(SplitStrategy::Quadratic),
        QUERY_POOL_FRAMES,
        PREFETCH_WORKERS,
    );

    // Reference distances at zero latency with prefetch off: every cell
    // must reproduce them exactly.
    let run_batch = |depth: usize| -> Vec<Vec<f64>> {
        let policy = if depth == 0 {
            PrefetchPolicy::Off
        } else {
            PrefetchPolicy::Depth(depth)
        };
        let search = NnSearch::with_options(&built.tree, NnOptions::with_prefetch(policy));
        let mut cursor = QueryCursor::new();
        queries
            .iter()
            .map(|q| {
                search
                    .query_refined_with(&mut cursor, q, K, &MbrRefiner)
                    .unwrap()
                    .0
                    .iter()
                    .map(|n| n.dist_sq)
                    .collect()
            })
            .collect()
    };
    let reference = run_batch(0);

    let drop_caches = || {
        built.tree.store().clear_node_cache();
        built.pool.clear_cache().unwrap();
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &lat_us in &LAT_US {
        latency.set_latency(LatencyProfile::symmetric_us(lat_us));
        for &depth in &DEPTHS {
            // Warm: everything resident, so the pipeline has nothing to
            // fetch and must cost (almost) nothing. Best of REPS.
            let mut warm_ms = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                let out = run_batch(depth);
                warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
                assert_eq!(out, reference, "warm lat={lat_us} depth={depth} diverged");
            }

            // Cold: node cache and pool frames dropped before every
            // repetition, so each traversal re-reads through the
            // latency-injecting device — the regime prefetch targets.
            // Settle and clear the pipeline state left by the warm phase
            // first, so frames it marked cannot be classified against the
            // reset counters.
            built.pool.prefetch_quiesce();
            drop_caches();
            built.pool.reset_stats();
            let mut cold_ms = f64::INFINITY;
            for _ in 0..REPS {
                drop_caches();
                let start = Instant::now();
                let out = run_batch(depth);
                cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
                assert_eq!(out, reference, "cold lat={lat_us} depth={depth} diverged");
            }
            // Quiesce so in-flight hints settle, then drop the caches so
            // prefetched-but-never-demanded frames get their `wasted`
            // verdict — only then do the counters balance.
            built.pool.prefetch_quiesce();
            drop_caches();
            let pf = built.pool.prefetch_stats();
            assert_eq!(
                pf.useful + pf.wasted + pf.dropped,
                pf.issued,
                "unbalanced prefetch counters at lat={lat_us} depth={depth}: {pf:?}"
            );

            eprintln!(
                "lat={lat_us}us depth={depth}: warm {warm_ms:.1} ms, cold {cold_ms:.1} ms, \
                 prefetch {}/{} useful",
                pf.useful, pf.issued
            );
            cells.push(Cell {
                lat_us,
                depth,
                warm_ms,
                cold_ms,
                issued: pf.issued,
                useful: pf.useful,
                wasted: pf.wasted,
                dropped: pf.dropped,
            });
        }
    }
    latency.set_latency(LatencyProfile::symmetric_us(0));

    // The headline claim: under heavy injected latency, deep prefetch must
    // measurably beat no prefetch from a cold cache — but only where the
    // host can actually run the I/O workers alongside the query thread.
    let cold_of = |lat_us: u64, depth: usize| -> f64 {
        cells
            .iter()
            .find(|c| c.lat_us == lat_us && c.depth == depth)
            .map(|c| c.cold_ms)
            .unwrap()
    };
    if cores >= 2 {
        let speedup = cold_of(200, 0) / cold_of(200, 8);
        assert!(
            speedup >= 1.05,
            "cold depth-8 prefetch at 200us should beat depth-0: speedup {speedup:.2}"
        );
    } else {
        eprintln!("single hardware thread: skipping the cold-speedup assertion");
    }

    let json = render_json(&cells);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PREFETCH.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
}

fn render_json(cells: &[Cell]) -> String {
    let cold_base = |lat_us: u64| -> f64 {
        cells
            .iter()
            .find(|c| c.lat_us == lat_us && c.depth == 0)
            .map(|c| c.cold_ms)
            .unwrap_or(1.0)
    };
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = write!(
            rows,
            r#"
    {{ "lat_us": {}, "depth": {}, "warm_ms": {:.2}, "cold_ms": {:.2}, "cold_speedup_vs_depth0": {:.2}, "prefetch_issued": {}, "prefetch_useful": {}, "prefetch_wasted": {}, "prefetch_dropped": {} }}{sep}"#,
            c.lat_us,
            c.depth,
            c.warm_ms,
            c.cold_ms,
            cold_base(c.lat_us) / c.cold_ms,
            c.issued,
            c.useful,
            c.wasted,
            c.dropped,
        );
    }
    let config = config_header_json(&[
        ("dataset", "\"uniform\"".into()),
        ("n", N.to_string()),
        ("queries", N_QUERIES.to_string()),
        ("k", K.to_string()),
        ("build", "\"dynamic/quadratic\"".into()),
        ("pool_frames", QUERY_POOL_FRAMES.to_string()),
        ("prefetch_workers", PREFETCH_WORKERS.to_string()),
    ]);
    format!(
        r#"{{
  "bench": "prefetch",
  "description": "ABL-guided asynchronous prefetch through a LatencyDisk-wrapped in-memory device (crates/bench/benches/prefetch.rs): injected device latency x hint depth, warm (pool + node cache primed) and cold (both dropped each repetition), sequential queries with {PREFETCH_WORKERS} background I/O workers. Batch wall-clock in milliseconds, best of {REPS} repetitions; cold speedups are relative to depth 0 at the same latency. Every cell is asserted bit-identical to the prefetch-off reference; the prefetch counters satisfy useful + wasted + dropped == issued. Overlap needs real parallelism: on hosts where host_hardware_threads is 1 the cold-speedup assertion is skipped and no speedup should be expected.",
  "config": {config},
  "grid": [{rows}
  ]
}}
"#
    )
}
