//! Criterion bench for experiment E7: index-construction cost of the five
//! build methods.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nnq_bench::datasets::Dataset;
use nnq_bench::harness::{build_tree, BuildMethod, QUERY_POOL_FRAMES};
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let dataset = Dataset::tiger(10_000, 23);
    let mut group = c.benchmark_group("builds");
    group.sample_size(10);
    for method in BuildMethod::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.label()),
            &method,
            |b, &method| {
                b.iter_batched(
                    || dataset.items.clone(),
                    |items| black_box(build_tree(&items, method, QUERY_POOL_FRAMES)),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
